//! PRISM — on-device semantic selection made low latency and memory
//! efficient with **monolithic forwarding**.
//!
//! This meta-crate re-exports every subsystem of the workspace under one
//! roof and anchors the top-level integration tests (`tests/`) and runnable
//! examples (`examples/`). See the repository's `README.md` for the crate
//! map and `ARCHITECTURE.md` for how each module implements the paper.
//!
//! The short version: a cross-encoder reranker scores all top-K candidates
//! in **one monolithic batch** that advances through transformer layers
//! together. Between layers, a dispersion gate clusters intermediate
//! scores and routes whole clusters — *selected* into the answer,
//! *dropped*, or *deferred* — so most candidates exit early (§4.1), while
//! layer weights stream from disk behind compute (§4.2), the batch runs in
//! memory-bounded chunks with optional hidden-state spill (§4.3), and hot
//! embedding rows are served from an LRU cache (§4.4).

pub use prism_api as api;
pub use prism_apps as apps;
pub use prism_baselines as baselines;
pub use prism_cluster as cluster;
pub use prism_core as core;
pub use prism_device as device;
pub use prism_metasim as metasim;
pub use prism_metrics as metrics;
pub use prism_model as model;
pub use prism_semcache as semcache;
pub use prism_serve as serve;
pub use prism_storage as storage;
pub use prism_tensor as tensor;
pub use prism_workload as workload;
