#!/usr/bin/env bash
# Profile a `repro` scenario with gprofng (ships with modern binutils).
#
#   scripts/profile.sh [scenario] [out-dir]
#
#   scenario  repro experiment to profile (default: perf; e.g. table3,
#             fig10, fig16 — see `repro --help` in crates/bench)
#   out-dir   where the experiment recording lands
#             (default: target/profile/<scenario>)
#
# Prints the hottest functions afterwards; drill in with
#   gprofng display text -calltree <out-dir>/experiment.er
# or interactively with `gprofng display gui` where available.
set -euo pipefail

scenario="${1:-perf}"
out="${2:-target/profile/${scenario}}"

if ! command -v gprofng >/dev/null 2>&1; then
  echo "error: gprofng not found (install binutils >= 2.39)" >&2
  exit 1
fi

cargo build --release -p prism-bench --bin repro

rm -rf "${out}"
mkdir -p "${out}"

# `collect app` forks the target and samples call stacks; `--fast` keeps
# the scenario short enough that the recording stays in the tens of MB.
gprofng collect app -o "${out}/experiment.er" \
  target/release/repro "${scenario}" --fast

echo
echo "=== hottest functions (exclusive CPU time) ==="
gprofng display text -limit 25 -functions "${out}/experiment.er"
echo
echo "recording: ${out}/experiment.er"
echo "call tree: gprofng display text -calltree ${out}/experiment.er"
