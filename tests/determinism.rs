//! Determinism: identical seeds and configurations must reproduce results
//! bit-for-bit across fresh engines, with and without the concurrency-
//! heavy techniques (streaming thread, spill I/O).

use prism_core::{EngineOptions, PrismEngine};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{dataset_catalog, WorkloadGenerator};

fn run_once(
    path: &std::path::Path,
    config: &ModelConfig,
    batch: &SequenceBatch,
) -> Vec<(usize, String)> {
    let options = EngineOptions {
        chunk_candidates: Some(3),
        hidden_offload: true,
        ..Default::default()
    };
    let engine = PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        options,
        MemoryMeter::new(),
    )
    .unwrap();
    engine
        .select_top_k(batch, 5)
        .unwrap()
        .ranked
        .iter()
        .map(|r| (r.id, format!("{:.6}", r.score)))
        .collect()
}

#[test]
fn selections_reproduce_across_fresh_engines() {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 8);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-det-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    let profile = dataset_catalog().into_iter().next().unwrap();
    let gen = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 1);
    let batch = SequenceBatch::new(&gen.request(0, 14).sequences()).unwrap();

    let a = run_once(&path, &config, &batch);
    let b = run_once(&path, &config, &batch);
    let c = run_once(&path, &config, &batch);
    assert_eq!(a, b);
    assert_eq!(b, c);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn workloads_and_weights_reproduce() {
    let config = ModelConfig::test_config(ModelArch::EncoderOnly, 4);
    let m1 = Model::generate(config.clone(), 9).unwrap();
    let m2 = Model::generate(config.clone(), 9).unwrap();
    assert_eq!(m1.weights, m2.weights);
    for profile in dataset_catalog().into_iter().take(3) {
        let g1 = WorkloadGenerator::new(profile.clone(), 512, 32, 77);
        let g2 = WorkloadGenerator::new(profile, 512, 32, 77);
        assert_eq!(g1.request(5, 10), g2.request(5, 10));
    }
}
