//! Cross-crate integration: the full PRISM stack — workload generation,
//! weight containers, engine, baselines, calibrator and applications —
//! exercised together at test scale.

use prism_baselines::{HfOffload, HfVanilla, Reranker};
use prism_core::{EngineOptions, PrismEngine, RequestOptions, ThresholdCalibrator};
use prism_metrics::{precision_at_k, MemCategory, MemoryMeter};
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::{Container, Throttle};
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (Model, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 8);
    let model = Model::generate(config, 42).expect("model");
    let mut path = std::env::temp_dir();
    path.push(format!("prism-e2e-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).expect("container");
    (model, path)
}

fn request(model: &Model, idx: u64, n: usize) -> (SequenceBatch, Vec<usize>) {
    let profile = dataset_by_name("wikipedia").expect("profile");
    let gen = WorkloadGenerator::new(profile, model.config.vocab_size, model.config.max_seq, 5);
    let req = gen.request(idx, n);
    (
        SequenceBatch::new(&req.sequences()).expect("batch"),
        req.relevant,
    )
}

#[test]
fn all_systems_agree_on_clear_winners() {
    let (model, path) = fixture("agree");
    let container = Container::open(&path).unwrap();
    let (batch, _) = request(&model, 0, 12);
    let k = 4;

    let mut hf = HfVanilla::new(&container, model.config.clone(), 6, MemoryMeter::new()).unwrap();
    let mut offload = HfOffload::new(
        &container,
        model.config.clone(),
        6,
        Throttle::unlimited(),
        MemoryMeter::new(),
    )
    .unwrap();
    let mut prism = PrismEngine::new(
        Container::open(&path).unwrap(),
        model.config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap();

    let truth = hf.rerank(&batch, k).unwrap();
    let off = offload.rerank(&batch, k).unwrap();
    assert_eq!(truth.scores, off.scores, "offload must be bit-exact");

    let fast = Reranker::rerank(&mut prism, &batch, k).unwrap();
    let mut t_ids = truth.top_ids();
    let mut f_ids = fast.top_ids();
    t_ids.sort_unstable();
    f_ids.sort_unstable();
    let overlap = f_ids
        .iter()
        .filter(|i| t_ids.binary_search(i).is_ok())
        .count();
    assert!(overlap >= k - 1, "PRISM top-{k} overlap {overlap} too low");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn calibrator_converges_against_live_engine() {
    let (model, path) = fixture("calib");
    let engine = PrismEngine::new(
        Container::open(&path).unwrap(),
        model.config.clone(),
        EngineOptions {
            dispersion_threshold: 0.02,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap();
    let oracle = PrismEngine::new(
        Container::open(&path).unwrap(),
        model.config.clone(),
        EngineOptions::all_off(),
        MemoryMeter::new(),
    )
    .unwrap();
    let mut calibrator = ThresholdCalibrator::new(0.85, 0.02);
    let k = 4;
    for round in 0..5_u64 {
        // Per-request override: the calibrator's actuator since the
        // engine became `Sync` (no `&mut` threshold setter).
        let options = RequestOptions::top_k(k).with_dispersion_threshold(calibrator.threshold());
        for r in 0..4 {
            let (batch, _) = request(&model, round * 4 + r, 12);
            let fast = engine.select_with(&batch, options.clone()).unwrap();
            let truth = oracle.select_top_k(&batch, k).unwrap();
            calibrator.record_sample(&fast.top_ids(), &truth.top_ids(), k);
        }
        calibrator.update();
    }
    // The loop must keep the threshold within its bounds and adapt it away
    // from the aggressive start when precision demands it.
    let t = calibrator.threshold();
    assert!((0.02..=2.0).contains(&t));
    // And the engine at the calibrated threshold meets the target.
    let calibrated = RequestOptions::top_k(k).with_dispersion_threshold(t);
    let mut total = 0.0;
    for r in 100..104 {
        let (batch, _) = request(&model, r, 12);
        let fast = engine.select_with(&batch, calibrated.clone()).unwrap();
        let truth = oracle.select_top_k(&batch, k).unwrap();
        total += precision_at_k(&fast.top_ids(), &truth.top_ids(), k);
    }
    assert!(
        total / 4.0 >= 0.6,
        "calibrated precision {:.2}",
        total / 4.0
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn precision_is_platform_and_technique_independent() {
    // The same request through four engine configurations with identical
    // pruning must produce identical top-K sets (memory techniques must
    // not affect results).
    let (model, path) = fixture("techniques");
    let (batch, _) = request(&model, 3, 10);
    let mut reference: Option<Vec<usize>> = None;
    for (streaming, chunking, cache) in [
        (false, false, false),
        (true, false, false),
        (false, true, true),
        (true, true, true),
    ] {
        let options = EngineOptions {
            streaming,
            chunking,
            chunk_candidates: chunking.then_some(3),
            embed_cache: cache,
            ..EngineOptions::default()
        };
        let engine = PrismEngine::new(
            Container::open(&path).unwrap(),
            model.config.clone(),
            options,
            MemoryMeter::new(),
        )
        .unwrap();
        let ids = engine.select_top_k(&batch, 4).unwrap().top_ids();
        match &reference {
            None => reference = Some(ids),
            Some(r) => assert_eq!(
                &ids, r,
                "streaming={streaming} chunking={chunking} cache={cache}"
            ),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn memory_categories_reconcile() {
    let (model, path) = fixture("memcat");
    let meter = MemoryMeter::new();
    let engine = PrismEngine::new(
        Container::open(&path).unwrap(),
        model.config.clone(),
        EngineOptions::default(),
        meter.clone(),
    )
    .unwrap();
    let (batch, _) = request(&model, 1, 10);
    engine.select_top_k(&batch, 3).unwrap();
    // After a request: transient categories are back to zero, persistent
    // ones (cache, head) remain.
    assert_eq!(meter.current(MemCategory::Intermediate), 0);
    assert_eq!(meter.current(MemCategory::HiddenStates), 0);
    assert!(meter.current(MemCategory::Embedding) > 0);
    assert!(meter.current(MemCategory::Head) > 0);
    assert!(
        meter.peak(MemCategory::LayerWeights) > 0,
        "streamed layers were tracked"
    );
    assert!(meter.peak_total() > meter.current_total());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn quantized_stack_end_to_end() {
    let (model, path) = fixture("quant");
    let qmodel = model.quantized().unwrap();
    let mut qpath = std::env::temp_dir();
    qpath.push(format!("prism-e2e-quant-q4-{}.prsm", std::process::id()));
    qmodel.write_container(&qpath).unwrap();

    let (batch, relevant) = request(&model, 2, 12);
    let engine = PrismEngine::new(
        Container::open(&qpath).unwrap(),
        qmodel.config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap();
    let sel = engine.select_top_k(&batch, 4).unwrap();
    assert_eq!(sel.ranked.len(), 4);
    let p = precision_at_k(&sel.top_ids(), &relevant, 4);
    assert!(p > 0.0, "quantized engine found no relevant docs");
    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&qpath).unwrap();
}
