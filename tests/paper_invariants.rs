//! The paper's headline claims as executable invariants, checked against
//! the calibrated device model and real mini-scale pruning schedules.

use prism_device::{
    simulate_hf, simulate_hf_offload, simulate_hf_quant, simulate_prism, BatchShape, DeviceSpec,
    PrismSimOptions, PruneSchedule,
};
use prism_model::ModelConfig;

fn shape() -> BatchShape {
    BatchShape {
        candidates: 20,
        seq_len: 500,
    }
}

/// A conservative mid-depth schedule (~45% of the layer-candidate work).
fn schedule(cfg: &ModelConfig) -> PruneSchedule {
    let l = cfg.num_layers;
    let active = (0..l)
        .map(|i| {
            let f = i as f64 / l as f64;
            if f < 0.4 {
                20
            } else if f < 0.7 {
                8
            } else {
                0
            }
        })
        .collect();
    PruneSchedule {
        active_per_layer: active,
    }
}

#[test]
fn claim_latency_reduction_band() {
    // Abstract: up to 89.2% latency reduction vs HF Offload. Shape claim:
    // PRISM is substantially faster than every baseline on every model
    // that fits, with the maximum reduction in the 60-95% band.
    let rtx = DeviceSpec::rtx5070_laptop();
    let mut max_reduction: f64 = 0.0;
    for cfg in ModelConfig::paper_catalog() {
        let sched = schedule(&cfg);
        let prism = simulate_prism(&cfg, &rtx, shape(), &sched, PrismSimOptions::default());
        let offload = simulate_hf_offload(&cfg, &rtx, shape());
        let reduction = 1.0 - prism.latency_s / offload.latency_s;
        assert!(
            reduction > 0.3,
            "{}: reduction {reduction:.2} too small",
            cfg.name
        );
        max_reduction = max_reduction.max(reduction);
    }
    assert!(
        (0.6..0.97).contains(&max_reduction),
        "max reduction {max_reduction:.2} outside the paper's band"
    );
}

#[test]
fn claim_peak_memory_reduction_band() {
    // Abstract: up to 91.3% peak-memory reduction. Fig. 9: 5.34x-11.45x vs
    // HF, 1.34x-3.83x vs offload, 2.77x-4.83x vs quant.
    let rtx = DeviceSpec::rtx5070_laptop();
    let a800 = DeviceSpec::a800();
    for cfg in ModelConfig::paper_catalog() {
        let sched = schedule(&cfg);
        let prism = simulate_prism(&cfg, &rtx, shape(), &sched, PrismSimOptions::default());
        let mut hf = simulate_hf(&cfg, &rtx, shape());
        if hf.oom {
            hf = simulate_hf(&cfg, &a800, shape());
        }
        let offload = simulate_hf_offload(&cfg, &rtx, shape());
        let quant = simulate_hf_quant(&cfg, &rtx, shape());
        let r_hf = hf.peak_bytes as f64 / prism.peak_bytes as f64;
        let r_off = offload.peak_bytes as f64 / prism.peak_bytes as f64;
        let r_quant = quant.peak_bytes as f64 / prism.peak_bytes as f64;
        assert!((3.0..16.0).contains(&r_hf), "{}: vs HF {r_hf:.2}", cfg.name);
        assert!(
            (1.2..5.0).contains(&r_off),
            "{}: vs offload {r_off:.2}",
            cfg.name
        );
        assert!(
            (2.0..6.5).contains(&r_quant),
            "{}: vs quant {r_quant:.2}",
            cfg.name
        );
    }
}

#[test]
fn claim_oom_matrix() {
    // Table 3: vanilla HF OOMs for Qwen3-4B/8B on both platforms; PRISM
    // runs everything everywhere.
    for device in [DeviceSpec::rtx5070_laptop(), DeviceSpec::apple_m2()] {
        for cfg in ModelConfig::paper_catalog() {
            let hf = simulate_hf(&cfg, &device, shape());
            let big = cfg.total_params() > 3_000_000_000;
            assert_eq!(
                hf.oom, big,
                "{} on {}: oom={}",
                cfg.name, device.name, hf.oom
            );
            let prism = simulate_prism(
                &cfg,
                &device,
                shape(),
                &schedule(&cfg),
                PrismSimOptions::default(),
            );
            assert!(
                !prism.oom,
                "{} must fit under PRISM on {}",
                cfg.name, device.name
            );
        }
    }
}

#[test]
fn claim_overlap_window() {
    // §3.2: per-layer compute time covers per-layer weight I/O on both
    // platforms, for every evaluated model.
    for device in [DeviceSpec::rtx5070_laptop(), DeviceSpec::apple_m2()] {
        for cfg in ModelConfig::paper_catalog() {
            let tokens = shape().total_tokens();
            let compute = device.compute_time_s(cfg.layer_macs(tokens, 500), tokens, false);
            let io = device.ssd_read_time_s(cfg.layer_bytes());
            assert!(
                compute > io,
                "{} on {}: compute {compute:.4}s < io {io:.4}s",
                cfg.name,
                device.name
            );
        }
    }
}

#[test]
fn claim_streaming_no_latency_penalty() {
    // §4.2: streaming weights costs (almost) no latency versus resident
    // weights once the pipeline is warm.
    let rtx = DeviceSpec::rtx5070_laptop();
    let cfg = ModelConfig::qwen3_0_6b();
    let sched = PruneSchedule::no_pruning(cfg.num_layers, 20);
    let streamed = simulate_prism(
        &cfg,
        &rtx,
        shape(),
        &sched,
        PrismSimOptions {
            embed_cache_fraction: None,
            gate_overhead_s: 0.0,
            ..Default::default()
        },
    );
    let resident = simulate_prism(
        &cfg,
        &rtx,
        shape(),
        &sched,
        PrismSimOptions {
            streaming: false,
            embed_cache_fraction: None,
            gate_overhead_s: 0.0,
            ..Default::default()
        },
    );
    assert!(streamed.latency_s <= resident.latency_s * 1.05);
}

#[test]
fn claim_fig16_ablation_shape() {
    // Fig. 16's signature: pruning cuts latency but inflates memory
    // (monolithic intermediates); chunking recovers the memory; streaming
    // and the embedding cache each cut deeper without big latency cost.
    let rtx = DeviceSpec::rtx5070_laptop();
    let cfg = ModelConfig::qwen3_0_6b();
    let big = BatchShape {
        candidates: 60,
        seq_len: 500,
    };
    let sched = schedule(&cfg);
    let sched60 = PruneSchedule {
        active_per_layer: sched.active_per_layer.iter().map(|a| a * 3).collect(),
    };
    let hf = simulate_hf(&cfg, &rtx, big);
    let pruned = simulate_prism(
        &cfg,
        &rtx,
        big,
        &sched60,
        PrismSimOptions {
            streaming: false,
            chunked: None,
            embed_cache_fraction: None,
            ..Default::default()
        },
    );
    let chunked = simulate_prism(
        &cfg,
        &rtx,
        big,
        &sched60,
        PrismSimOptions {
            streaming: false,
            chunked: Some(None),
            embed_cache_fraction: None,
            ..Default::default()
        },
    );
    let streamed = simulate_prism(
        &cfg,
        &rtx,
        big,
        &sched60,
        PrismSimOptions {
            chunked: Some(None),
            embed_cache_fraction: None,
            ..Default::default()
        },
    );
    let cached = simulate_prism(&cfg, &rtx, big, &sched60, PrismSimOptions::default());

    assert!(
        pruned.latency_s < hf.latency_s * 0.75,
        "pruning cuts latency"
    );
    assert!(
        pruned.peak_bytes > hf.peak_bytes,
        "monolithic batch inflates memory"
    );
    assert!(
        chunked.peak_bytes < pruned.peak_bytes,
        "chunking recovers memory"
    );
    assert!(
        streamed.peak_bytes < chunked.peak_bytes,
        "streaming cuts weights"
    );
    assert!(
        cached.peak_bytes < streamed.peak_bytes,
        "cache cuts embedding"
    );
    assert!(
        cached.peak_bytes * 3 < hf.peak_bytes,
        "combined reduction at least 3x (paper: 4.6x)"
    );
}
