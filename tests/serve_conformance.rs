//! Golden conformance suite for the serving path.
//!
//! Locks in two properties:
//!
//! 1. **Golden stability** — direct `select_top_k` results (ids +
//!    quantized scores) for a fixed seed corpus match the committed
//!    `tests/golden/serve_conformance.json`, so engine refactors cannot
//!    silently change selections. Scores are quantized to 1e-4 so the
//!    file is robust to sub-ulp kernel-dispatch differences across hosts;
//!    regenerate with
//!    `cargo test --test serve_conformance -- --ignored regenerate`.
//! 2. **Serving parity** — the `prism-serve` path (queue → scheduler →
//!    coalesced batch → worker) returns **bit-identical** selections to
//!    direct engine calls for the same requests, at every batch size
//!    1..=8 and across worker counts, with and without the session cache.

use prism::api::{SelectionService, ServiceError};
use prism::core::{EngineOptions, PrismEngine, RequestOptions, Selection, SpillPrecision};
use prism::metrics::MemoryMeter;
use prism::model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism::serve::{PrismServer, ServeConfig, ServeRequest, ShardSet};
use prism::storage::Container;
use prism::workload::{dataset_by_name, WorkloadGenerator};
use serde::Serialize;

const GOLDEN_PATH: &str = "tests/golden/serve_conformance.json";
const MODEL_SEED: u64 = 4242;
const WORKLOAD_SEED: u64 = 0x60D1;
const DATASET: &str = "wikipedia";
const NUM_REQUESTS: usize = 8;
const CANDIDATES: usize = 10;
const K: usize = 4;

#[derive(Serialize)]
struct GoldenRanked {
    id: usize,
    layer: usize,
    score_q: i64,
}

#[derive(Serialize)]
struct GoldenRequest {
    tag: u64,
    k: usize,
    candidates: usize,
    ranked: Vec<GoldenRanked>,
    last_scores_q: Vec<i64>,
}

#[derive(Serialize)]
struct GoldenFile {
    schema: String,
    model: String,
    model_seed: u64,
    dataset: String,
    workload_seed: u64,
    requests: Vec<GoldenRequest>,
}

fn quantize(score: f32) -> i64 {
    (f64::from(score) * 1e4).round() as i64
}

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf, Vec<SequenceBatch>) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), MODEL_SEED).unwrap();
    let mut path = std::env::temp_dir();
    // Per-test file: libtest runs these tests concurrently in one
    // process, so a shared path would race create/open/delete.
    path.push(format!("prism-golden-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    let profile = dataset_by_name(DATASET).unwrap();
    let generator =
        WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, WORKLOAD_SEED);
    let batches = (0..NUM_REQUESTS)
        .map(|i| SequenceBatch::new(&generator.request(i as u64, CANDIDATES).sequences()).unwrap())
        .collect();
    (config, path, batches)
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap()
}

/// The sequential reference: a fresh engine answering the requests in
/// order with pinned tags 1..=N.
fn reference_selections(
    config: &ModelConfig,
    path: &std::path::Path,
    batches: &[SequenceBatch],
) -> Vec<Selection> {
    let eng = engine(config, path);
    batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            eng.select_with(b, RequestOptions::tagged(K, i as u64 + 1))
                .unwrap()
        })
        .collect()
}

fn golden_encoding(selections: &[Selection]) -> String {
    let file = GoldenFile {
        schema: "prism-serve-golden-v1".into(),
        model: "test-6l-decoder".into(),
        model_seed: MODEL_SEED,
        dataset: DATASET.into(),
        workload_seed: WORKLOAD_SEED,
        requests: selections
            .iter()
            .enumerate()
            .map(|(i, sel)| GoldenRequest {
                tag: i as u64 + 1,
                k: K,
                candidates: CANDIDATES,
                ranked: sel
                    .ranked
                    .iter()
                    .map(|r| GoldenRanked {
                        id: r.id,
                        layer: r.decided_at_layer,
                        score_q: quantize(r.score),
                    })
                    .collect(),
                last_scores_q: sel.last_scores.iter().copied().map(quantize).collect(),
            })
            .collect(),
    };
    let mut text = serde_json::to_string_pretty(&file).unwrap();
    text.push('\n');
    text
}

fn exact_bits(sel: &Selection) -> (Vec<(usize, u32, usize)>, Vec<u32>) {
    (
        sel.ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
            .collect(),
        sel.last_scores.iter().map(|s| s.to_bits()).collect(),
    )
}

#[test]
fn direct_engine_matches_committed_golden() {
    let (config, path, batches) = fixture("golden");
    let reference = reference_selections(&config, &path, &batches);
    let encoded = golden_encoding(&reference);
    let committed = std::fs::read_to_string(GOLDEN_PATH)
        .expect("committed golden file (regenerate with `-- --ignored regenerate`)");
    assert_eq!(
        encoded.trim(),
        committed.trim(),
        "direct selections diverged from the golden file; if the change \
         is intentional, regenerate with \
         `cargo test --test serve_conformance -- --ignored regenerate`"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn serving_is_bit_identical_at_every_batch_size() {
    let (config, path, batches) = fixture("batch-sizes");
    let reference = reference_selections(&config, &path, &batches);

    for batch_size in 1..=NUM_REQUESTS {
        let server = PrismServer::start(
            engine(&config, &path),
            ServeConfig {
                workers: 1,
                max_batch_requests: batch_size,
                session_cache_capacity: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let handles: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                server
                    .submit(
                        ServeRequest::new("conformance", b.clone(), K)
                            .with_options(RequestOptions::tagged(K, i as u64 + 1)),
                    )
                    .unwrap()
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let resp = handle.wait().unwrap();
            assert_eq!(
                exact_bits(&resp.selection),
                exact_bits(&reference[i]),
                "request {i} diverged at batch size {batch_size}"
            );
        }
        server.shutdown();
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn serving_is_bit_identical_across_worker_counts_and_cache() {
    let (config, path, batches) = fixture("workers");
    let reference = reference_selections(&config, &path, &batches);

    for (workers, cache_sessions) in [(2, 0), (3, 0), (2, 16)] {
        let server = PrismServer::start(
            engine(&config, &path),
            ServeConfig {
                workers,
                max_batch_requests: 4,
                session_cache_capacity: cache_sessions,
                ..Default::default()
            },
        )
        .unwrap();
        // Two passes: with the cache on, the second pass replays
        // memoized selections and must still be bit-identical.
        for pass in 0..2 {
            let handles: Vec<_> = batches
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    server
                        .submit(
                            ServeRequest::new(format!("session-{i}"), b.clone(), K)
                                .with_options(RequestOptions::tagged(K, i as u64 + 1)),
                        )
                        .unwrap()
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let resp = handle.wait().unwrap();
                assert_eq!(
                    exact_bits(&resp.selection),
                    exact_bits(&reference[i]),
                    "request {i} diverged (workers {workers}, cache {cache_sessions}, pass {pass})"
                );
            }
        }
        if cache_sessions > 0 {
            let snap = server.stats().snapshot();
            assert!(
                snap.cache_selection_hits >= NUM_REQUESTS as u64,
                "second pass should replay from the session cache: {snap:?}"
            );
        }
        server.shutdown();
    }
    std::fs::remove_file(&path).unwrap();
}

/// Engine options for the §4.3 offload regime: hidden states spill to
/// disk in 2-candidate chunks (weights resident so the suite stays
/// fast). The regime where `SpillPrecision` becomes observable.
fn offload_engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions {
            streaming: false,
            embed_cache: false,
            hidden_offload: true,
            chunk_candidates: Some(2),
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap()
}

/// Serving must stay bit-identical to direct engine calls in *both*
/// spill-precision modes, at every batch size 1..=8, on an engine that
/// actually offloads hidden states.
#[test]
fn serving_is_bit_identical_in_both_spill_precisions() {
    let (config, path, batches) = fixture("spill-modes");
    for precision in [SpillPrecision::Int8, SpillPrecision::F32] {
        let opts =
            |i: usize| RequestOptions::tagged(K, i as u64 + 1).with_spill_precision(precision);
        let eng = offload_engine(&config, &path);
        let reference: Vec<Selection> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| eng.select_with(b, opts(i)).unwrap())
            .collect();
        for batch_size in 1..=NUM_REQUESTS {
            let server = PrismServer::start(
                offload_engine(&config, &path),
                ServeConfig {
                    workers: 1,
                    max_batch_requests: batch_size,
                    session_cache_capacity: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            let handles: Vec<_> = batches
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    server
                        .submit(ServeRequest::new("spill-conf", b.clone(), K).with_options(opts(i)))
                        .unwrap()
                })
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let resp = handle.wait().unwrap();
                assert_eq!(
                    exact_bits(&resp.selection),
                    exact_bits(&reference[i]),
                    "request {i} diverged ({precision:?}, batch size {batch_size})"
                );
            }
            server.shutdown();
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The acceptance gate on spill compression accuracy: int8-spill
/// selections match f32-spill selections on the golden corpus — same
/// top-K ids (exactly), scores within a tight absolute bound.
///
/// On the bound: one u8 quantization of these hidden states already
/// carries a half-step error of ~1.2e-3 at the state level, and the
/// int8-spill regime applies its rowq round-trip to **every** chunk at
/// each of the six layers (uniformly — resident chunks included — so
/// that result bits cannot depend on physical chunk layout, the property
/// the cross-shard conformance suite relies on). Per-mille score
/// agreement is therefore not physically reachable at 8 bits. Measured
/// max drift on this corpus is 4.3e-2; the assertion pins 6e-2 so a
/// codec regression (e.g. a lost rounding bit) still fails loudly while
/// the inherent quantization noise does not.
#[test]
fn int8_spill_matches_f32_spill_on_golden_corpus() {
    let (config, path, batches) = fixture("spill-parity");
    let eng = offload_engine(&config, &path);
    for (i, batch) in batches.iter().enumerate() {
        let tag = i as u64 + 1;
        let f32_sel = eng
            .select_with(
                batch,
                RequestOptions::tagged(K, tag).with_spill_precision(SpillPrecision::F32),
            )
            .unwrap();
        let int8_sel = eng
            .select_with(
                batch,
                RequestOptions::tagged(K, tag).with_spill_precision(SpillPrecision::Int8),
            )
            .unwrap();
        assert!(
            int8_sel.trace.spill_bytes > 0,
            "request {i}: the parity claim is empty unless spilling happened"
        );
        assert_eq!(
            int8_sel.top_ids(),
            f32_sel.top_ids(),
            "request {i}: int8 spill changed the top-K"
        );
        for (a, b) in int8_sel.last_scores.iter().zip(&f32_sel.last_scores) {
            assert!(
                (a - b).abs() < 6e-2,
                "request {i}: scores drifted past 6e-2 ({a} vs {b})"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The `prism-api` facade over the server must return the same bits as
/// both the legacy submission path and direct engine calls.
#[test]
fn facade_handles_are_bit_identical_to_direct_calls() {
    let (config, path, batches) = fixture("facade");
    let reference = reference_selections(&config, &path, &batches);
    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            workers: 2,
            max_batch_requests: 4,
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let service = server.service("facade");
    let handles: Vec<_> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            service
                .submit(b.clone(), RequestOptions::tagged(K, i as u64 + 1))
                .unwrap()
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.wait().unwrap();
        assert_eq!(
            exact_bits(&outcome.selection),
            exact_bits(&reference[i]),
            "facade request {i} diverged"
        );
    }
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Satellite conformance case: cancelled requests are answered with
/// `ServiceError::Cancelled`, counted on the `cancelled` gauge, and
/// never appear in `ServeStats` completions.
#[test]
fn cancelled_requests_never_appear_in_completions() {
    let (config, path, batches) = fixture("cancel-stats");
    // A slow streamed engine (emulated-SSD throttle) keeps the single
    // worker busy on the first request long enough for the cancellations
    // of the queued ones to land deterministically.
    let slow_engine = PrismEngine::new(
        Container::open(&path).unwrap(),
        config.clone(),
        EngineOptions {
            stream_throttle: Some(2_000_000),
            embed_cache: false,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap();
    let server = PrismServer::start(
        slow_engine,
        ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let service = server.service("cancel");

    // Occupy the worker, then queue the cancellation targets behind it.
    let running = service
        .submit(batches[0].clone(), RequestOptions::tagged(K, 1))
        .unwrap();
    let targets: Vec<_> = batches[1..5]
        .iter()
        .enumerate()
        .map(|(i, b)| {
            service
                .submit(b.clone(), RequestOptions::tagged(K, i as u64 + 2))
                .unwrap()
        })
        .collect();
    for t in &targets {
        t.cancel();
    }
    let mut cancelled = 0_u64;
    let mut finished = 1_u64; // the running request
    running.wait().unwrap();
    for t in targets {
        match t.wait() {
            Err(ServiceError::Cancelled) => cancelled += 1,
            Ok(_) => finished += 1,
            other => panic!("expected Cancelled or success, got {other:?}"),
        }
    }
    let snap = server.stats().snapshot();
    server.shutdown();
    assert!(cancelled > 0, "at least one queued request must cancel");
    assert_eq!(
        snap.completed, finished,
        "completions must count exactly the finished requests"
    );
    assert_eq!(
        snap.cancelled, cancelled,
        "every cancellation must land on the cancelled gauge"
    );
    assert_eq!(
        snap.completed + snap.cancelled,
        5,
        "all five submissions accounted for, disjointly"
    );
    std::fs::remove_file(&path).unwrap();
}

/// Expired deadlines are rejected at admission with the typed error and
/// counted separately from completions.
#[test]
fn expired_deadline_rejected_at_admission() {
    let (config, path, batches) = fixture("deadline-adm");
    let server = PrismServer::start(engine(&config, &path), ServeConfig::default()).unwrap();
    let service = server.service("deadline");
    let err = service
        .submit(
            batches[0].clone(),
            RequestOptions::top_k(K).with_deadline_us(0),
        )
        .unwrap_err();
    assert!(matches!(err, ServiceError::DeadlineExceeded));
    let snap = server.stats().snapshot();
    assert_eq!(snap.deadline_rejected, 1);
    assert_eq!(snap.submitted, 0, "rejected request was never admitted");
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

// ---------------------------------------------------------------------------
// Cross-shard conformance: scatter-gather over N engine shards must be
// bit-identical to the single-engine result. The shards run with local
// pruning off and layer weights resident; the coordinator's global gate
// replays the single engine's routing with the same seed derivation, so
// any divergence here means the sharded path broke the paper's selection
// semantics.
// ---------------------------------------------------------------------------

/// A shard engine: the full model resident (the stepping API's
/// requirement), embed cache off so shards share no hidden state.
fn resident_engine(config: &ModelConfig, path: &std::path::Path) -> std::sync::Arc<PrismEngine> {
    std::sync::Arc::new(
        PrismEngine::new(
            Container::open(path).unwrap(),
            config.clone(),
            EngineOptions {
                streaming: false,
                embed_cache: false,
                ..Default::default()
            },
            MemoryMeter::new(),
        )
        .unwrap(),
    )
}

fn shard_set(config: &ModelConfig, path: &std::path::Path, shards: usize) -> ShardSet {
    ShardSet::new((0..shards).map(|_| resident_engine(config, path)).collect()).unwrap()
}

/// Scatter-gather selection across shard counts {1, 2, 3, 5} is
/// bit-identical to the sequential single-engine reference (which runs
/// the default streamed configuration — residency must not change bits).
#[test]
fn sharded_selection_is_bit_identical_across_shard_counts() {
    let (config, path, batches) = fixture("sharded");
    let reference = reference_selections(&config, &path, &batches);
    for shards in [1_usize, 2, 3, 5] {
        let set = shard_set(&config, &path, shards);
        for (i, batch) in batches.iter().enumerate() {
            let sel = set
                .select_with(batch, RequestOptions::tagged(K, i as u64 + 1))
                .unwrap();
            assert_eq!(
                exact_bits(&sel),
                exact_bits(&reference[i]),
                "request {i} diverged at {shards} shards"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// Sharded selection with hidden-state offload active on every shard, in
/// both spill precisions, stays bit-identical to the single-engine
/// offload reference.
#[test]
fn sharded_selection_is_bit_identical_in_both_spill_precisions() {
    let (config, path, batches) = fixture("sharded-spill");
    let shard_offload = |_: usize| {
        std::sync::Arc::new(
            PrismEngine::new(
                Container::open(&path).unwrap(),
                config.clone(),
                EngineOptions {
                    streaming: false,
                    embed_cache: false,
                    hidden_offload: true,
                    chunk_candidates: Some(2),
                    ..Default::default()
                },
                MemoryMeter::new(),
            )
            .unwrap(),
        )
    };
    for precision in [SpillPrecision::Int8, SpillPrecision::F32] {
        let opts =
            |i: usize| RequestOptions::tagged(K, i as u64 + 1).with_spill_precision(precision);
        let eng = offload_engine(&config, &path);
        let reference: Vec<Selection> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| eng.select_with(b, opts(i)).unwrap())
            .collect();
        for shards in [2_usize, 3] {
            let set = ShardSet::new((0..shards).map(shard_offload).collect()).unwrap();
            for (i, batch) in batches.iter().enumerate() {
                let sel = set.select_with(batch, opts(i)).unwrap();
                assert_eq!(
                    exact_bits(&sel),
                    exact_bits(&reference[i]),
                    "request {i} diverged ({precision:?}, {shards} shards)"
                );
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// Sharded selection under the int8 compute path matches a single int8
/// engine bit-for-bit (integer GEMM is deterministic and per-candidate,
/// so scatter must not perturb it).
#[test]
fn sharded_selection_is_bit_identical_in_int8_compute() {
    use prism::core::ComputePrecision;
    let (config, path, batches) = fixture("sharded-int8");
    let opts = |i: usize| {
        RequestOptions::tagged(K, i as u64 + 1).with_compute_precision(ComputePrecision::Int8)
    };
    let eng = resident_engine(&config, &path);
    let reference: Vec<Selection> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| eng.select_with(b, opts(i)).unwrap())
        .collect();
    for shards in [2_usize, 5] {
        let set = shard_set(&config, &path, shards);
        for (i, batch) in batches.iter().enumerate() {
            let sel = set.select_with(batch, opts(i)).unwrap();
            assert_eq!(
                exact_bits(&sel),
                exact_bits(&reference[i]),
                "request {i} diverged (int8 compute, {shards} shards)"
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// The *served* sharded path — queue → scheduler → coalesced batch →
/// scatter-gather worker — stays bit-identical to the sequential
/// reference at every coalescing size 1..=8, mirroring the unsharded
/// serving-parity guarantee one layer further out.
#[test]
fn sharded_server_is_bit_identical_across_batch_sizes() {
    let (config, path, batches) = fixture("sharded-server");
    let reference = reference_selections(&config, &path, &batches);
    for max_batch in 1..=NUM_REQUESTS {
        let server = PrismServer::start_sharded(
            (0..2)
                .map(|_| {
                    PrismEngine::new(
                        Container::open(&path).unwrap(),
                        config.clone(),
                        EngineOptions {
                            streaming: false,
                            embed_cache: false,
                            ..Default::default()
                        },
                        MemoryMeter::new(),
                    )
                    .unwrap()
                })
                .collect(),
            ServeConfig {
                workers: 1,
                max_batch_requests: max_batch,
                session_cache_capacity: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let handles: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                server
                    .submit(
                        ServeRequest::new("tenant", b.clone(), K)
                            .with_options(RequestOptions::tagged(K, i as u64 + 1)),
                    )
                    .unwrap()
            })
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let resp = handle.wait().unwrap();
            assert_eq!(
                exact_bits(&resp.selection),
                exact_bits(&reference[i]),
                "request {i} diverged at coalescing size {max_batch}"
            );
        }
        server.shutdown();
    }
    std::fs::remove_file(&path).unwrap();
}

/// Regenerates `tests/golden/serve_conformance.json`. Run explicitly:
/// `cargo test --test serve_conformance -- --ignored regenerate`.
#[test]
#[ignore]
fn regenerate() {
    let (config, path, batches) = fixture("regen");
    let reference = reference_selections(&config, &path, &batches);
    std::fs::create_dir_all("tests/golden").unwrap();
    std::fs::write(GOLDEN_PATH, golden_encoding(&reference)).unwrap();
    std::fs::remove_file(&path).unwrap();
    println!("wrote {GOLDEN_PATH}");
}
