//! Concurrency stress: interleaved multi-client serving must reproduce
//! the sequential reference per request — results bit-identical, traces
//! never cross-wired between sessions (extends `tests/determinism.rs` to
//! the concurrent serving path).

use prism::core::{EngineOptions, EngineTrace, PrismEngine, PruneMode, RequestOptions, Selection};
use prism::metrics::MemoryMeter;
use prism::model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism::serve::{PrismServer, ServeConfig, ServeRequest};
use prism::storage::Container;
use prism::workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 99).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-stress-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    (config, path)
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap()
}

/// One synthetic client request with per-request option mix.
struct StressCase {
    client: usize,
    batch: SequenceBatch,
    options: RequestOptions,
}

/// Builds `clients x per_client` requests with mixed per-request options
/// (k, threshold, mode, pruning) and *distinct candidate counts per
/// client* so a cross-wired response is structurally detectable.
fn stress_cases(config: &ModelConfig, clients: usize, per_client: usize) -> Vec<StressCase> {
    let profile = dataset_by_name("msmarco").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 0xABCD);
    let mut cases = Vec::new();
    for client in 0..clients {
        for i in 0..per_client {
            let candidates = 8 + client; // Client-specific batch shape.
            let request_idx = (client * per_client + i) as u64;
            let batch = SequenceBatch::new(&generator.request(request_idx, candidates).sequences())
                .unwrap();
            let mut options = RequestOptions::tagged(2 + (i % 3), request_idx * 7 + 1);
            match i % 4 {
                0 => {}
                1 => options.dispersion_threshold = Some(0.12),
                2 => options.mode = Some(PruneMode::ExactOrder),
                _ => options.pruning = Some(false),
            }
            cases.push(StressCase {
                client,
                batch,
                options,
            });
        }
    }
    cases
}

fn trace_fingerprint(trace: &EngineTrace) -> (Vec<usize>, usize, String) {
    (
        trace.active_per_layer.clone(),
        trace.executed_layers,
        format!("{:?}", trace.routes),
    )
}

fn assert_matches_reference(case: &StressCase, got: &Selection, want: &Selection, label: &str) {
    assert_eq!(
        got.last_scores.len(),
        case.batch.num_sequences(),
        "{label}: response shape does not match the request's batch \
         (cross-wired sessions?)"
    );
    let bits = |sel: &Selection| {
        sel.ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(got), bits(want), "{label}: ranked diverged");
    assert_eq!(
        got.last_scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        want.last_scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        "{label}: last_scores diverged"
    );
    assert_eq!(
        trace_fingerprint(&got.trace),
        trace_fingerprint(&want.trace),
        "{label}: trace diverged (cross-wired events?)"
    );
}

fn run_stress(clients: usize, per_client: usize, workers: usize, tag: &str) {
    let (config, path) = fixture(tag);
    let cases = stress_cases(&config, clients, per_client);

    // Sequential reference, one fresh engine, submission order.
    let reference: Vec<Selection> = {
        let eng = engine(&config, &path);
        cases
            .iter()
            .map(|c| eng.select_with(&c.batch, c.options.clone()).unwrap())
            .collect()
    };

    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            workers,
            max_batch_requests: 4,
            queue_capacity: cases.len() + 8,
            ..Default::default()
        },
    )
    .unwrap();

    // Interleaved submission: one thread per client, each submitting its
    // own requests (distinct sessions) and validating its own replies.
    let cases = &cases;
    let reference = &reference;
    let server_ref = &server;
    std::thread::scope(|scope| {
        for client in 0..clients {
            let client_cases: Vec<usize> = cases
                .iter()
                .enumerate()
                .filter(|(_, c)| c.client == client)
                .map(|(i, _)| i)
                .collect();
            scope.spawn(move || {
                let mut handles = Vec::new();
                for &global_idx in &client_cases {
                    let case = &cases[global_idx];
                    let handle = server_ref
                        .submit(
                            ServeRequest::new(
                                format!("client-{client}"),
                                case.batch.clone(),
                                case.options.k,
                            )
                            .with_options(case.options.clone()),
                        )
                        .unwrap();
                    handles.push((global_idx, handle));
                }
                for (global_idx, handle) in handles {
                    let resp = handle.wait().unwrap();
                    assert_matches_reference(
                        &cases[global_idx],
                        &resp.selection,
                        &reference[global_idx],
                        &format!("client {client} request {global_idx}"),
                    );
                }
            });
        }
    });

    let snap = server.stats().snapshot();
    assert_eq!(snap.completed, cases.len() as u64);
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn interleaved_clients_match_sequential_reference() {
    run_stress(4, 5, 2, "short");
}

/// Nightly-scale soak: more clients, more requests, more workers. Gated
/// behind `--ignored` (CI runs it in the scheduled long-stress job).
#[test]
#[ignore]
fn long_interleaved_stress() {
    for round in 0..3 {
        run_stress(6, 12, 3, &format!("long-{round}"));
    }
}
