//! Concurrency stress: interleaved multi-client serving must reproduce
//! the sequential reference per request — results bit-identical, traces
//! never cross-wired between sessions (extends `tests/determinism.rs` to
//! the concurrent serving path).

use prism::core::{EngineOptions, EngineTrace, PrismEngine, PruneMode, RequestOptions, Selection};
use prism::metrics::MemoryMeter;
use prism::model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism::serve::{PrismServer, ServeConfig, ServeRequest};
use prism::storage::Container;
use prism::workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 99).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-stress-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    (config, path)
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap()
}

/// One synthetic client request with per-request option mix.
struct StressCase {
    client: usize,
    batch: SequenceBatch,
    options: RequestOptions,
}

/// Builds `clients x per_client` requests with mixed per-request options
/// (k, threshold, mode, pruning) and *distinct candidate counts per
/// client* so a cross-wired response is structurally detectable.
fn stress_cases(config: &ModelConfig, clients: usize, per_client: usize) -> Vec<StressCase> {
    let profile = dataset_by_name("msmarco").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 0xABCD);
    let mut cases = Vec::new();
    for client in 0..clients {
        for i in 0..per_client {
            let candidates = 8 + client; // Client-specific batch shape.
            let request_idx = (client * per_client + i) as u64;
            let batch = SequenceBatch::new(&generator.request(request_idx, candidates).sequences())
                .unwrap();
            let mut options = RequestOptions::tagged(2 + (i % 3), request_idx * 7 + 1);
            match i % 4 {
                0 => {}
                1 => options.dispersion_threshold = Some(0.12),
                2 => options.mode = Some(PruneMode::ExactOrder),
                _ => options.pruning = Some(false),
            }
            cases.push(StressCase {
                client,
                batch,
                options,
            });
        }
    }
    cases
}

fn trace_fingerprint(trace: &EngineTrace) -> (Vec<usize>, usize, String) {
    (
        trace.active_per_layer.clone(),
        trace.executed_layers,
        format!("{:?}", trace.routes),
    )
}

fn assert_matches_reference(case: &StressCase, got: &Selection, want: &Selection, label: &str) {
    assert_eq!(
        got.last_scores.len(),
        case.batch.num_sequences(),
        "{label}: response shape does not match the request's batch \
         (cross-wired sessions?)"
    );
    let bits = |sel: &Selection| {
        sel.ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(got), bits(want), "{label}: ranked diverged");
    assert_eq!(
        got.last_scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        want.last_scores
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        "{label}: last_scores diverged"
    );
    assert_eq!(
        trace_fingerprint(&got.trace),
        trace_fingerprint(&want.trace),
        "{label}: trace diverged (cross-wired events?)"
    );
}

fn run_stress(clients: usize, per_client: usize, workers: usize, tag: &str) {
    let (config, path) = fixture(tag);
    let cases = stress_cases(&config, clients, per_client);

    // Sequential reference, one fresh engine, submission order.
    let reference: Vec<Selection> = {
        let eng = engine(&config, &path);
        cases
            .iter()
            .map(|c| eng.select_with(&c.batch, c.options.clone()).unwrap())
            .collect()
    };

    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            workers,
            max_batch_requests: 4,
            queue_capacity: cases.len() + 8,
            ..Default::default()
        },
    )
    .unwrap();

    // Interleaved submission: one thread per client, each submitting its
    // own requests (distinct sessions) and validating its own replies.
    let cases = &cases;
    let reference = &reference;
    let server_ref = &server;
    std::thread::scope(|scope| {
        for client in 0..clients {
            let client_cases: Vec<usize> = cases
                .iter()
                .enumerate()
                .filter(|(_, c)| c.client == client)
                .map(|(i, _)| i)
                .collect();
            scope.spawn(move || {
                let mut handles = Vec::new();
                for &global_idx in &client_cases {
                    let case = &cases[global_idx];
                    let handle = server_ref
                        .submit(
                            ServeRequest::new(
                                format!("client-{client}"),
                                case.batch.clone(),
                                case.options.k,
                            )
                            .with_options(case.options.clone()),
                        )
                        .unwrap();
                    handles.push((global_idx, handle));
                }
                for (global_idx, handle) in handles {
                    let resp = handle.wait().unwrap();
                    assert_matches_reference(
                        &cases[global_idx],
                        &resp.selection,
                        &reference[global_idx],
                        &format!("client {client} request {global_idx}"),
                    );
                }
            });
        }
    });

    let snap = server.stats().snapshot();
    assert_eq!(snap.completed, cases.len() as u64);
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn interleaved_clients_match_sequential_reference() {
    run_stress(4, 5, 2, "short");
}

/// Scheduler edge traces: each scenario is first *predicted* by the
/// serving metasim (which drives the identical `BatchPlanner` at virtual
/// time) and then replayed, minimized, against the real server — the
/// simulator names the edge, the server confirms the same
/// `ServeStats` counter fires.
mod edge_traces {
    use super::*;
    use prism::core::Priority;
    use prism::metasim::{simulate_closed_loop, Calibration, ServiceModel};
    use prism::serve::{LoadSpec, ServeError};
    use std::time::Duration;

    /// A batch-size-independent flat service model: edge behaviour here
    /// is about *scheduling* decisions, not execution cost.
    fn flat(us: f64) -> ServiceModel {
        ServiceModel::calibrated(Calibration {
            batch_fixed_us: us,
            per_request_us: 0.0,
            per_token_us: 0.0,
        })
    }

    /// Pre-built request batches so submission threads stay trivial.
    fn batches(config: &ModelConfig, n: usize, candidates: usize, seed: u64) -> Vec<SequenceBatch> {
        let profile = dataset_by_name("msmarco").unwrap();
        let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, seed);
        (0..n)
            .map(|i| {
                SequenceBatch::new(&generator.request(i as u64, candidates).sequences()).unwrap()
            })
            .collect()
    }

    /// Backpressure burst: a single-slot queue behind a serial worker
    /// must reject concurrent submitters, and closed-loop retry must
    /// still land every request.
    #[test]
    fn backpressure_burst_sim_predicts_and_server_confirms() {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let serve = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        };

        // Simulated prediction: eight clients hammering a one-deep queue
        // trip admission rejections, yet the closed loop completes all.
        let spec = LoadSpec {
            requests: 32,
            clients: 8,
            ..Default::default()
        };
        let predicted = simulate_closed_loop(&model, &spec, &serve, flat(5_000.0), "burst");
        assert_eq!(predicted.completed, 32, "sim: retries must land everything");
        assert!(
            predicted.stats.rejected > 0,
            "sim: burst must trip backpressure, got {:?}",
            predicted.stats
        );
        assert_eq!(predicted.stats.rejected, predicted.backpressure_retries);

        // Real-server replay of the minimized scenario.
        let (config, path) = fixture("edge-backpressure");
        let cases = batches(&config, 32, 6, 0xB0B5);
        let server = PrismServer::start(engine(&config, &path), serve).unwrap();
        let rejections = std::sync::atomic::AtomicU64::new(0);
        let server_ref = &server;
        let cases_ref = &cases;
        let rejections_ref = &rejections;
        std::thread::scope(|scope| {
            for client in 0..8_usize {
                scope.spawn(move || {
                    let mut handles = Vec::new();
                    for i in 0..4 {
                        let batch = cases_ref[client * 4 + i].clone();
                        let request = ServeRequest::new(format!("burst-{client}"), batch, 2);
                        loop {
                            match server_ref.submit(request.clone()) {
                                Ok(h) => {
                                    handles.push(h);
                                    break;
                                }
                                Err(ServeError::Backpressure { retry_after, .. }) => {
                                    rejections_ref
                                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                    std::thread::sleep(retry_after.min(Duration::from_millis(2)));
                                }
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        }
                    }
                    for h in handles {
                        h.wait().expect("retried request must complete");
                    }
                });
            }
        });
        let snap = server.stats().snapshot();
        assert_eq!(snap.completed, 32);
        assert!(
            snap.rejected > 0,
            "server: burst must trip backpressure like the sim predicted"
        );
        assert_eq!(
            snap.rejected,
            rejections.load(std::sync::atomic::Ordering::Relaxed),
            "every rejection surfaced to a caller"
        );
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    /// Deadline shedding: requests whose budget expires while the serial
    /// worker is busy are shed at the next planning pass, never executed.
    #[test]
    fn deadline_shed_sim_predicts_and_server_confirms() {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let serve = ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        };

        // Simulated prediction: 1 ms budgets against 50 ms service on a
        // serial worker — queued requests die waiting.
        let spec = LoadSpec {
            requests: 16,
            clients: 8,
            deadline_us: Some(1_000),
            ..Default::default()
        };
        let predicted = simulate_closed_loop(&model, &spec, &serve, flat(50_000.0), "deadline");
        assert!(
            predicted.stats.deadline_missed > 0,
            "sim: tight deadlines behind a slow worker must shed, got {:?}",
            predicted.stats
        );
        assert_eq!(predicted.completed + predicted.errors, 16);

        // Real-server replay: fillers occupy the worker, then doomed
        // requests with a 1 us budget arrive — all must shed with
        // `DeadlineExceeded`, none may execute.
        let (config, path) = fixture("edge-deadline");
        let cases = batches(&config, 8, 10, 0xDEAD);
        let server = PrismServer::start(engine(&config, &path), serve).unwrap();
        let fillers: Vec<_> = (0..2)
            .map(|i| {
                server
                    .submit(ServeRequest::new("filler", cases[i].clone(), 2))
                    .unwrap()
            })
            .collect();
        let doomed: Vec<_> = (2..8)
            .map(|i| {
                server
                    .submit(
                        ServeRequest::new("doomed", cases[i].clone(), 2)
                            .with_options(RequestOptions::top_k(2).with_deadline_us(1)),
                    )
                    .unwrap()
            })
            .collect();
        for h in fillers {
            h.wait().expect("fillers have no deadline");
        }
        for h in doomed {
            match h.wait() {
                Err(ServeError::DeadlineExceeded) => {}
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        let snap = server.stats().snapshot();
        assert_eq!(snap.deadline_missed, 6, "all doomed requests shed");
        assert_eq!(snap.completed, 2, "only the fillers executed");
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }

    /// Starvation promotion: an aged bulk request must overtake waiting
    /// high-priority work once past the starvation bound, recorded as a
    /// priority inversion — and still complete.
    #[test]
    fn starvation_promotion_sim_predicts_and_server_confirms() {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let serve = ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            max_batch_wait: Duration::from_micros(100),
            starvation_age: Duration::from_micros(500),
            session_cache_capacity: 0,
            priority_scheduling: true,
            ..Default::default()
        };

        // Simulated prediction: a bulk/high mix on a serial worker with a
        // tight starvation bound promotes aged bulk over waiting high.
        let spec = LoadSpec {
            requests: 24,
            clients: 8,
            priority: Priority::Bulk,
            high_fraction: 0.5,
            high_deadline_us: Some(30_000_000),
            ..Default::default()
        };
        let predicted = simulate_closed_loop(&model, &spec, &serve, flat(3_000.0), "starve");
        assert_eq!(predicted.completed, 24, "sim: promotion must not drop work");
        assert!(
            predicted.stats.priority_inversions > 0,
            "sim: aged bulk must be promoted over waiting high, got {:?}",
            predicted.stats
        );

        // Real-server replay: occupy the worker, queue a wall of high
        // requests and one bulk request behind them. While the highs are
        // served one at a time the bulk ages past the 500 us bound and is
        // promoted ahead of the remaining highs.
        let (config, path) = fixture("edge-starvation");
        let cases = batches(&config, 14, 12, 0x57A2);
        let server = PrismServer::start(engine(&config, &path), serve).unwrap();
        let mut handles = Vec::new();
        for case in cases.iter().take(2) {
            handles.push(
                server
                    .submit(ServeRequest::new("filler", case.clone(), 2))
                    .unwrap(),
            );
        }
        for case in cases.iter().take(12).skip(2) {
            handles.push(
                server
                    .submit(
                        ServeRequest::new("high", case.clone(), 2)
                            .with_options(RequestOptions::top_k(2).with_priority(Priority::High)),
                    )
                    .unwrap(),
            );
        }
        handles.push(
            server
                .submit(
                    ServeRequest::new("bulk", cases[12].clone(), 2)
                        .with_options(RequestOptions::top_k(2).with_priority(Priority::Bulk)),
                )
                .unwrap(),
        );
        for h in handles {
            h.wait().expect("every request completes despite promotion");
        }
        let snap = server.stats().snapshot();
        assert_eq!(snap.completed, 13);
        assert!(
            snap.priority_inversions > 0,
            "server: starved bulk must be promoted like the sim predicted, got {snap:?}"
        );
        server.shutdown();
        std::fs::remove_file(&path).unwrap();
    }
}

/// Nightly-scale soak: more clients, more requests, more workers. Gated
/// behind `--ignored` (CI runs it in the scheduled long-stress job).
#[test]
#[ignore]
fn long_interleaved_stress() {
    for round in 0..3 {
        run_stress(6, 12, 3, &format!("long-{round}"));
    }
}
