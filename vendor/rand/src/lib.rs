//! Offline stand-in for the [`rand` 0.8](https://docs.rs/rand/0.8) subset
//! PRISM uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and
//! `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand's `SmallRng` family uses — so streams are of high
//! statistical quality and fully deterministic per seed, which the repo's
//! reproducibility tests rely on. It is *not* the same stream as the real
//! `StdRng` (ChaCha12); PRISM only requires determinism, not
//! cross-implementation stream equality.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from its type's standard distribution
    /// (`[0, 1)` for floats, uniform for integers and `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty, matching rand 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait SampleStandard {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer/float types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`; `hi` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as SampleStandard>::sample_standard(rng);
                // The scale-and-shift can round up to the excluded bound
                // (e.g. lo = 1e8, hi = 1e8 + 1 in f32); clamp to keep the
                // half-open contract.
                (lo + u * (hi - lo)).min(hi.next_down())
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as SampleStandard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn gen_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
