//! Offline stand-in for [`serde`](https://serde.rs), exposing exactly the
//! subset PRISM uses.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors minimal, API-compatible shims for its external dependencies.
//! This crate provides:
//!
//! - a self-describing JSON-style [`Value`] data model,
//! - a [`Serialize`] trait (`serialize_value(&self) -> Value`) with impls
//!   for the primitive, tuple, slice, vector, option and map types PRISM
//!   serializes,
//! - a marker [`Deserialize`] trait, and
//! - (behind the `derive` feature) `#[derive(Serialize, Deserialize)]`
//!   proc-macros that understand `#[serde(skip)]` on named-struct fields
//!   and unit-only enums.
//!
//! The real serde's serializer/visitor machinery is intentionally absent:
//! PRISM only ever serializes concrete report/config structs to JSON via
//! `serde_json::to_string_pretty`, and this data-model approach covers
//! that with two orders of magnitude less code.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-style self-describing value.
///
/// Object keys keep insertion order (a `Vec` of pairs, not a map) so that
/// derived struct serialization is stable and mirrors field declaration
/// order, which keeps report diffs readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer that does not fit `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn serialize_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// Nothing in PRISM parses JSON back into Rust yet; the derive exists so
/// that config structs can keep the idiomatic
/// `#[derive(Serialize, Deserialize)]` pair until a real reader lands.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn serialize_value(&self) -> Value {
        (*self as u64).serialize_value()
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        (*self as f64).serialize_value()
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_map_to_expected_variants() {
        assert_eq!(3_u32.serialize_value(), Value::Int(3));
        assert_eq!(u64::MAX.serialize_value(), Value::UInt(u64::MAX));
        assert_eq!(true.serialize_value(), Value::Bool(true));
        assert_eq!(f64::NAN.serialize_value(), Value::Null);
        assert_eq!("x".serialize_value(), Value::String("x".into()));
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1.5_f64, 2_u64)];
        assert_eq!(
            v.serialize_value(),
            Value::Array(vec![Value::Array(vec![Value::Float(1.5), Value::Int(2)])])
        );
        assert_eq!(Option::<u8>::None.serialize_value(), Value::Null);
    }
}
