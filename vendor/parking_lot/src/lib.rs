//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided. The API difference that matters to callers
//! is preserved: `lock()` returns the guard directly (no `Result`). Unlike
//! real parking_lot this inherits std's poisoning, which is surfaced as a
//! panic on lock-after-poison — acceptable for PRISM's metrics recorder,
//! whose critical sections never panic.

use std::sync::MutexGuard;

/// Mutual exclusion primitive with parking_lot's panic-free `lock()` shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}
