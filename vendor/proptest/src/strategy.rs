//! The [`Strategy`] trait and the combinators PRISM's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: strategies sample directly
/// and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to build a second-stage strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Length specification for [`vec()`]: an exact size or a range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Picks one element of `options` uniformly (cloned per case).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty options");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].clone()
    }
}
