//! Deterministic RNG and case outcome types for the proptest shim.

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner retries.
    Reject,
    /// `prop_assert!`-family failure with its message.
    Fail(String),
}

/// SplitMix64-based test RNG, seeded from the test name (or
/// `PROPTEST_SEED`) so every run of a given test sees the same stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let base = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
            Err(_) => 0x5EED_0000_0000_0000,
        };
        TestRng {
            state: base ^ fnv1a(name.as_bytes()),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi]` (inclusive); panics when `lo > hi`.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo + 1) as u128;
        lo + (self.next_u64() as u128 % span) as i128
    }

    /// Uniform index in `[0, len)`; panics on empty collections.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot sample from an empty collection");
        self.int_in(0, len as i128 - 1) as usize
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325_u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
