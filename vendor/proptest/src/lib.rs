//! Offline stand-in for [`proptest`](https://docs.rs/proptest), covering
//! the subset PRISM's property tests use.
//!
//! Provided: the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`], a [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, and `prop::sample::select`.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs via the assertion
//!   message and the deterministic case number instead of a minimized
//!   counterexample.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test function's name, so failures reproduce exactly across runs
//!   and machines. Set `PROPTEST_SEED=<u64>` to explore other streams.

use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;
pub use test_runner::{TestCaseError, TestRng};

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategy combinators namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }

    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            // Rejections (prop_assume!) retry with fresh inputs, but a
            // too-selective filter must fail loudly rather than spin.
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest {}: gave up after {} attempts ({} passed); \
                     prop_assume! rejects too much",
                    stringify!($name),
                    __attempts,
                    __passed
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __passed,
                            __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

// Strategy implementations for plain range expressions used directly in
// `proptest!` argument position (e.g. `k in 1_usize..6`).
macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // The scale-and-shift can round up to the excluded bound
                // (e.g. a unit draw of 1 - 2⁻⁵⁴ widened to f32); clamp to
                // keep the half-open contract.
                v.min(self.end.next_down())
            }
        }
    )*};
}

impl_strategy_for_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            x in 2_usize..9,
            v in prop::collection::vec(-1.0_f32..1.0, 1..12),
        ) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 12);
            prop_assert!(v.iter().all(|e| (-1.0..1.0).contains(e)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_and_combinators_work(
            t in (1_usize..4, 1_usize..4).prop_flat_map(|(r, c)| {
                prop::collection::vec(0_u8..255, r * c).prop_map(move |v| (r, c, v))
            }),
            pick in prop::sample::select(vec![10, 20, 30]),
        ) {
            let (r, c, v) = t;
            prop_assert_eq!(v.len(), r * c);
            prop_assume!(pick != 0);
            prop_assert!(pick % 10 == 0);
        }
    }
}
