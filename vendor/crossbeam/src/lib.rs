//! Offline stand-in for the `crossbeam` channel subset PRISM uses,
//! backed by `std::sync::mpsc::sync_channel`.
//!
//! Covers `channel::bounded` with blocking `send`/`recv` and `try_recv`.
//! Semantics PRISM relies on are preserved: a bounded channel blocks the
//! sender when full, and dropping either endpoint makes the peer's
//! operations return `Err`, which the layer streamer uses for clean
//! shutdown of its I/O thread.

/// Multi-producer single-consumer channels (crossbeam-channel shape).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side is gone.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders are gone.
        Disconnected,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates a channel holding at most `capacity` in-flight messages.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}
