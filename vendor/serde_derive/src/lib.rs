//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone — no `syn`, no `quote`. It hand-parses the
//! two shapes PRISM actually derives on:
//!
//! - structs with named fields (honoring `#[serde(skip)]` per field), and
//! - enums with unit-only variants (serialized as their variant name).
//!
//! Anything else (tuple structs, generics, data-carrying variants) is
//! rejected with a `compile_error!` pointing here, which is the signal to
//! extend the parser.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's data-model flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the marker trait `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => render(&item, mode).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

enum Item {
    /// Struct name + non-skipped field names, in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum name + unit variant names.
    Enum { name: String, variants: Vec<String> },
}

fn render(item: &Item, mode: Mode) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    if mode == Mode::Deserialize {
        return format!("impl ::serde::Deserialize for {name} {{}}");
    }
    match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                // Optional (crate)/(super) restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected struct/enum, got {other:?}"
            ))
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => {
            return Err(format!(
                "serde shim derive: expected type name, got {other:?}"
            ))
        }
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde shim derive: generic type {name} is not supported; \
                     extend vendor/serde_derive"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde shim derive: tuple struct {name} is not supported; \
                     extend vendor/serde_derive"
                ));
            }
            Some(_) => continue,
            None => return Err(format!("serde shim derive: no body found for {name}")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        other => Err(format!(
            "serde shim derive: unsupported item kind `{other}`"
        )),
    }
}

/// Parses `{ #[attr] pub name: Type, ... }`, returning non-skipped names.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    'fields: loop {
        let mut skip = false;
        // Field attributes (doc comments arrive as #[doc = ...] too).
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        if attr_is_serde_skip(g.stream()) {
                            skip = true;
                        }
                    }
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break 'fields,
            other => {
                return Err(format!(
                    "serde shim derive: expected field name, got {other:?}"
                ))
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        // Consume the type: angle-bracket depth is tracked because `<...>`
        // is not a token group and may contain commas (e.g. Vec<(f64, u64)>
        // groups its parens, but HashMap<String, f32> does not).
        let mut angle_depth = 0_i32;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => continue,
                None => {
                    if !skip {
                        fields.push(name);
                    }
                    break 'fields;
                }
            }
        }
        if !skip {
            fields.push(name);
        }
    }
    Ok(fields)
}

/// Parses `{ VariantA, VariantB, ... }` with optional per-variant attrs.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Variant attributes / doc comments.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => {
                return Err(format!(
                    "serde shim derive: expected variant, got {other:?}"
                ))
            }
        };
        match tokens.next() {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(name),
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde shim derive: variant {name} carries data; only unit \
                     variants are supported — extend vendor/serde_derive"
                ));
            }
            other => return Err(format!("serde shim derive: unexpected token {other:?}")),
        }
    }
    Ok(variants)
}

/// True when the attribute group body is exactly `serde(... skip ...)`.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}
