//! Offline stand-in for `serde_json`, covering the subset PRISM uses:
//! [`to_string`], [`to_string_pretty`], and the [`json!`] macro over the
//! shim's [`Value`] data model.
//!
//! Output is real JSON: strings are escaped, non-finite floats were
//! already mapped to `null` by the `serde` shim, and object key order is
//! the struct's field declaration order.

use std::fmt::Write as _;

use serde::Serialize;
pub use serde::Value;

/// Error type kept for API compatibility; serialization here cannot fail.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error (unreachable)")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-looking literal.
///
/// Supports nested objects (string-literal keys), arrays, `null`, and any
/// expression implementing the shim's `Serialize` as a leaf.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::json!($val)) ),* ])
    };
    ($other:expr) => { $crate::__private_serialize(&$other) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
pub fn __private_serialize<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            // `{}` prints integral floats without a dot; force one so the
            // value round-trips as a float.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, depth, b'[', items.iter(), |out, item, d| {
            write_value(out, item, indent, d)
        }),
        Value::Object(pairs) => {
            write_seq(out, indent, depth, b'{', pairs.iter(), |out, (k, v), d| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: u8,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    let (open, close) = if open == b'[' { ('[', ']') } else { ('{', '}') };
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = json!({"ok": true, "xs": [1, 2.5, null], "s": "a\"b"});
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"ok":true,"xs":[1,2.5,null],"s":"a\"b"}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"ok\": true"));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0_f64).unwrap(), "2.0");
    }
}
