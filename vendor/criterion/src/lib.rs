//! Offline stand-in for [`criterion`](https://docs.rs/criterion), covering
//! the subset PRISM's benches use: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros
//! (including the `name/config/targets` form).
//!
//! Measurement is intentionally simple: each benchmark warms up for
//! `warm_up_time`, then runs timed batches until `measurement_time`
//! elapses or `sample_size` samples are collected, and prints the median
//! per-iteration time with min/max. There is no statistical analysis, no
//! HTML report, and no baseline comparison — enough to spot order-of-
//! magnitude regressions while keeping `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration workload driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine` over inputs rebuilt by `setup` outside the timing
    /// window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }
        let run_start = Instant::now();
        while self.samples.len() < self.target_samples
            && run_start.elapsed() < self.measurement_time
        {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// Times `f`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
        }
        let run_start = Instant::now();
        while self.samples.len() < self.target_samples
            && run_start.elapsed() < self.measurement_time
        {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused:
/// the shim always times one input per sample).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Throughput annotation (recorded, currently not printed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            target_samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        let mut samples = b.samples;
        if samples.is_empty() {
            println!("{:<40} (no samples)", id.full);
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        println!(
            "{:<40} median {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            id.full,
            median,
            samples[0],
            samples[samples.len() - 1],
            samples.len()
        );
    }
}

/// A group of related benchmarks sharing overrides.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Records the group's throughput (accepted, not yet reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId {
            full: format!("{}/{}", self.name, id.into().full),
        };
        self.run(id, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = BenchmarkId {
            full: format!("{}/{}", self.name, id.full),
        };
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) {
        let saved = (self.criterion.sample_size, self.criterion.measurement_time);
        if let Some(n) = self.sample_size {
            self.criterion.sample_size = n;
        }
        if let Some(d) = self.measurement_time {
            self.criterion.measurement_time = d;
        }
        self.criterion.run(id, f);
        self.criterion.sample_size = saved.0;
        self.criterion.measurement_time = saved.1;
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
