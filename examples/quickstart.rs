//! Quickstart: build a reranker, open a PRISM engine over its weight
//! container, and select the top-5 of 20 candidates.
//!
//! ```text
//! cargo run --release -p prism-apps --example quickstart
//! ```

use prism_core::{EngineOptions, PrismEngine};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model. Real deployments load trained checkpoints; here we
    //    generate the mini-scale twin of Qwen3-Reranker-0.6B (28 layers)
    //    with planted semantics and write it into a PRSM container.
    let config = ModelConfig::qwen3_0_6b().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-quickstart.prsm");
    model.write_container(&path)?;
    println!(
        "model: {} ({} layers, container {} KiB)",
        config.name,
        config.num_layers,
        std::fs::metadata(&path)?.len() / 1024
    );

    // 2. The engine: streaming + chunking + embedding cache + pruning all
    //    on by default. The memory meter tracks live bytes by category.
    let meter = MemoryMeter::new();
    let container = Container::open(&path)?;
    // Throttle weight streaming to a realistic SSD speed so the overlap
    // window is visible even though the mini container sits in page cache.
    let options = EngineOptions {
        stream_throttle: Some(100 << 20), // 100 MiB/s
        ..Default::default()
    };
    let engine = PrismEngine::new(container, config.clone(), options, meter.clone())?;

    // 3. A request: 20 query-candidate pairs (planted-relevance workload).
    let profile = dataset_by_name("wikipedia").expect("catalog dataset");
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    let request = generator.request(0, 20);
    let batch = SequenceBatch::new(&request.sequences())?;

    // 4. Select the top-5.
    let selection = engine.select_top_k(&batch, 5)?;
    println!("\ntop-5 candidates (id, score, decided at layer):");
    for r in &selection.ranked {
        let marker = if request.relevant.contains(&r.id) {
            " <- relevant"
        } else {
            ""
        };
        println!(
            "  #{:<2} score {:.3} @L{}{}",
            r.id, r.score, r.decided_at_layer, marker
        );
    }

    // 5. What monolithic forwarding bought us.
    let t = &selection.trace;
    println!(
        "\nexecution: {} of {} layers, active per layer {:?}",
        t.executed_layers, config.num_layers, t.active_per_layer
    );
    // Overlap efficiency needs >1 CPU (compute and I/O threads run
    // concurrently); single-core CI machines will report ~0%.
    println!(
        "stream: {} sections / {} KiB, overlap efficiency {:.0}%",
        t.stream_stats.sections,
        t.stream_stats.bytes / 1024,
        t.stream_stats.overlap_efficiency() * 100.0
    );
    println!(
        "embedding cache hit rate {:.0}%",
        t.cache_stats.hit_rate() * 100.0
    );
    println!("peak tracked memory {} KiB", meter.peak_total() / 1024);

    std::fs::remove_file(&path)?;
    Ok(())
}
