//! The §4.1 feedback loop: give PRISM a precision target and let the
//! calibrator find the lowest dispersion threshold that meets it.
//!
//! ```text
//! cargo run --release -p prism-apps --example threshold_autotune
//! ```

use prism_core::{EngineOptions, PrismEngine, RequestOptions, ThresholdCalibrator};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::qwen3_0_6b().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-autotune.prsm");
    model.write_container(&path)?;
    let profile = dataset_by_name("wikipedia").expect("catalog dataset");
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 9);

    let engine = PrismEngine::new(
        Container::open(&path)?,
        config.clone(),
        EngineOptions {
            dispersion_threshold: 0.05,
            ..Default::default()
        },
        MemoryMeter::new(),
    )?;
    // Ground-truth engine: full inference, "re-executed when idle".
    let oracle = PrismEngine::new(
        Container::open(&path)?,
        config.clone(),
        EngineOptions::all_off(),
        MemoryMeter::new(),
    )?;

    let k = 5;
    let mut calibrator = ThresholdCalibrator::new(0.9, 0.05);
    println!("target precision 0.90 vs full inference; starting threshold 0.05");
    for round in 0..6 {
        // The calibrator's actuator is the per-request threshold
        // override: the engine is `Sync` (shared behind `Arc` when
        // serving), so calibration adjusts requests, not engine state.
        let options = RequestOptions::top_k(k).with_dispersion_threshold(calibrator.threshold());
        let mut work = 0.0;
        for r in 0..4 {
            let idx = round * 4 + r;
            let batch = SequenceBatch::new(&generator.request(idx, 20).sequences())?;
            let fast = engine.select_with(&batch, options.clone())?;
            let truth = oracle.select_top_k(&batch, k)?;
            work += fast.trace.active_per_layer.iter().sum::<usize>() as f64
                / (20 * config.num_layers) as f64;
            calibrator.record_sample(&fast.top_ids(), &truth.top_ids(), k);
        }
        let measured = calibrator.measured_precision().unwrap_or(1.0);
        let new_t = calibrator.update();
        println!(
            "round {round}: measured precision {measured:.3}  work fraction {:.2}  -> threshold {new_t:.3}",
            work / 4.0
        );
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
