//! The paper's agent-memory application (§6.3): a reranker-backed
//! trajectory cache that skips expensive VLM calls on cache hits.
//!
//! ```text
//! cargo run --release -p prism-apps --example agent_memory_cache
//! ```

use prism_apps::{AgentMemory, AgentScenario};
use prism_core::{EngineOptions, PrismEngine};
use prism_device::DeviceSpec;
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig};
use prism_storage::Container;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::qwen3_0_6b().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-agent.prsm");
    model.write_container(&path)?;

    for scenario in [AgentScenario::Video, AgentScenario::Community] {
        let engine = PrismEngine::new(
            Container::open(&path)?,
            config.clone(),
            EngineOptions::default(),
            MemoryMeter::new(),
        )?;
        let mut agent = AgentMemory::new(
            scenario,
            Some(engine),
            config.vocab_size,
            config.max_seq,
            DeviceSpec::a800(),
            3,
        );
        let tasks = 12;
        let mut hits = 0;
        let mut ok = 0;
        let mut total_s = 0.0;
        for t in 0..tasks {
            let r = agent.run_task(t)?;
            hits += r.cache_hit as usize;
            ok += r.success as usize;
            total_s += r.total_s();
        }
        println!(
            "{:<10} cache hits {hits}/{tasks}  success {ok}/{tasks}  avg task {:.2}s",
            scenario.name(),
            total_s / tasks as f64
        );
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
