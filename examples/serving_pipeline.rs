//! Multi-tenant serving: one `PrismServer` answering a RAG tenant and an
//! agent-memory tenant concurrently, with batched scheduling and the
//! per-session cache.
//!
//! ```text
//! cargo run --release --example serving_pipeline
//! ```

use prism::apps::corpus::CorpusSpec;
use prism::apps::{AgentMemory, AgentScenario, Corpus, RagPipeline};
use prism::core::{EngineOptions, PrismEngine};
use prism::device::DeviceSpec;
use prism::metrics::MemoryMeter;
use prism::model::{Model, ModelConfig};
use prism::serve::{PrismServer, ServeConfig};
use prism::storage::Container;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model container (mini twin of BGE-Reranker-v2-M3).
    let config = ModelConfig::bge_m3().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-serving-pipeline.prsm");
    model.write_container(&path)?;

    // 2. One engine, shared: `PrismEngine` is `Sync`, so the server's
    //    workers drive it concurrently behind an `Arc`.
    let engine = PrismEngine::new(
        Container::open(&path)?,
        config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )?;
    let server = PrismServer::start(
        engine,
        ServeConfig {
            workers: 2,
            max_batch_requests: 8,
            ..Default::default()
        },
    )?;
    println!("server up: 2 workers, batches of <= 8 requests\n");

    // 3. Tenant A: a RAG pipeline reranking hybrid-retrieval candidates.
    let corpus = Corpus::generate(CorpusSpec {
        vocab_size: config.vocab_size,
        doc_len: 24,
        docs_per_query: 24,
        queries: 3,
        gold_per_query: 4,
        seed: 3,
    });
    let mut rag = RagPipeline::new(
        corpus,
        model.weights.embedding.clone(),
        server.session("tenant-rag"),
        config.max_seq,
        ModelConfig::qwen3_8b(),
        DeviceSpec::a800(),
    )?;
    for q in 0..3 {
        let ans = rag.answer(q, 4)?;
        println!(
            "RAG query {q}: top docs {:?}, gold precision {:.2}, rerank {} us",
            ans.top_docs, ans.gold_precision, ans.stages.rerank_us
        );
    }

    // 4. Tenant B: an agent replaying cached GUI trajectories.
    let mut agent = AgentMemory::new(
        AgentScenario::Video,
        Some(server.session("tenant-agent")),
        config.vocab_size,
        config.max_seq,
        DeviceSpec::a800(),
        1,
    );
    for t in 0..3_u64 {
        let r = agent.run_task(t)?;
        println!(
            "agent task {t}: {}/{} actions from trajectory cache, success {}",
            r.cache_hits, r.steps, r.success
        );
    }

    // 5. Serving telemetry.
    let s = server.stats().snapshot();
    println!(
        "\nserved {} requests in {} batches (mean {:.2} req/batch); \
         queue depth peak {}; session cache hit rate {:.0}%",
        s.completed,
        s.batches,
        s.batch_size.mean,
        s.queue_depth_peak,
        s.cache_hit_rate * 100.0
    );
    server.shutdown();
    std::fs::remove_file(&path)?;
    Ok(())
}
