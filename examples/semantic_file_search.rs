//! The paper's Fig. 1 scenario: semantic file search — hybrid retrieval
//! over a personal corpus, cross-encoder reranking with PRISM, and the
//! per-stage cost breakdown.
//!
//! ```text
//! cargo run --release -p prism-apps --example semantic_file_search
//! ```

use prism_apps::corpus::{Corpus, CorpusSpec};
use prism_apps::RagPipeline;
use prism_core::{EngineOptions, PrismEngine};
use prism_device::DeviceSpec;
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig};
use prism_storage::Container;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::qwen3_0_6b().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-filesearch.prsm");
    model.write_container(&path)?;

    // A personal corpus: 6 recurring queries x 24 documents each.
    let corpus = Corpus::generate(CorpusSpec {
        vocab_size: config.vocab_size,
        doc_len: 32,
        docs_per_query: 24,
        queries: 6,
        gold_per_query: 5,
        seed: 11,
    });
    println!(
        "indexed {} documents (BM25 + IVF vector index)",
        corpus.docs.len()
    );

    let meter = MemoryMeter::new();
    let engine = PrismEngine::new(
        Container::open(&path)?,
        config.clone(),
        EngineOptions::default(),
        meter.clone(),
    )?;
    let mut search = RagPipeline::new(
        corpus,
        model.weights.embedding.clone(),
        engine,
        config.max_seq,
        ModelConfig::qwen3_8b(), // downstream LLM (costed)
        DeviceSpec::a800(),
    )?;

    for q in 0..3 {
        let answer = search.answer(q, 5)?;
        println!(
            "\nquery {q}: top docs {:?}  precision {:.2}",
            answer.top_docs, answer.gold_precision
        );
        println!(
            "  stages: sparse {}us + dense {}us + rerank {}us + first-token {:.2}s",
            answer.stages.sparse_us,
            answer.stages.dense_us,
            answer.stages.rerank_us,
            answer.stages.first_token_s
        );
    }
    println!(
        "\npeak tracked reranker memory: {} KiB",
        meter.peak_total() / 1024
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
