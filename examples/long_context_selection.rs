//! The paper's long-context selection application (§6.3): pick the most
//! relevant context segments with PRISM before feeding an LLM, versus
//! blindly truncating the context.
//!
//! ```text
//! cargo run --release -p prism-apps --example long_context_selection
//! ```

use prism_apps::LongContextSelector;
use prism_baselines::HfVanilla;
use prism_core::{EngineOptions, PrismEngine};
use prism_device::DeviceSpec;
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig};
use prism_storage::Container;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::qwen3_0_6b().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-lcs.prsm");
    model.write_container(&path)?;
    let gen_cfg = ModelConfig::qwen3_4b();
    let rtx = DeviceSpec::rtx5070_laptop();
    let (segments, gold, window) = (32, 5, 8);

    let questions = 6;
    let run = |name: &str, use_prism: Option<bool>| -> Result<(), Box<dyn std::error::Error>> {
        let mut precision = 0.0;
        let mut total_s = 0.0;
        match use_prism {
            Some(true) => {
                let engine = PrismEngine::new(
                    Container::open(&path)?,
                    config.clone(),
                    EngineOptions::default(),
                    MemoryMeter::new(),
                )?;
                let mut sel = LongContextSelector::new(
                    Some(engine),
                    config.vocab_size,
                    16,
                    segments,
                    gold,
                    window,
                    gen_cfg.clone(),
                    rtx.clone(),
                );
                for q in 0..questions {
                    let o = sel.run(q)?;
                    precision += o.segment_precision;
                    total_s += o.total_s();
                }
            }
            Some(false) => {
                let hf = HfVanilla::new(
                    &Container::open(&path)?,
                    config.clone(),
                    32,
                    MemoryMeter::new(),
                )?;
                let mut sel = LongContextSelector::new(
                    Some(hf),
                    config.vocab_size,
                    16,
                    segments,
                    gold,
                    window,
                    gen_cfg.clone(),
                    rtx.clone(),
                );
                for q in 0..questions {
                    let o = sel.run(q)?;
                    precision += o.segment_precision;
                    total_s += o.total_s();
                }
            }
            None => {
                let mut sel: LongContextSelector<HfVanilla> = LongContextSelector::new(
                    None,
                    config.vocab_size,
                    16,
                    segments,
                    gold,
                    window,
                    gen_cfg.clone(),
                    rtx.clone(),
                );
                for q in 0..questions {
                    let o = sel.run(q)?;
                    precision += o.segment_precision;
                    total_s += o.total_s();
                }
            }
        }
        println!(
            "{name:<12} segment precision {:.2}  avg end-to-end {:.2}s",
            precision / questions as f64,
            total_s / questions as f64
        );
        Ok(())
    };
    run("PRISM", Some(true))?;
    run("HF rerank", Some(false))?;
    run("truncate", None)?;
    std::fs::remove_file(&path)?;
    Ok(())
}
