//! The unified `SelectionService` facade: one API over the direct
//! engine and the multi-tenant server.
//!
//! ```text
//! cargo run --release --example unified_service
//! ```
//!
//! Demonstrates the full surface on both backends:
//! * non-blocking submit → `SelectionHandle` (`poll` / `wait` /
//!   `wait_timeout`),
//! * layer-granularity progress (layers forwarded, candidates pruned),
//! * per-request `Priority` and deadlines honoured by the server's
//!   priority-then-EDF scheduler,
//! * mid-flight cancellation releasing resources at a layer boundary,
//! * bit-identical results across backends for the same batch and tag.

use std::time::Duration;

use prism_api::{LocalService, Priority, RequestOptions, SelectionService, ServiceError};
use prism_core::{EngineOptions, PrismEngine};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_serve::{PrismServer, ServeConfig};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::qwen3_0_6b().mini_twin();
    let model = Model::generate(config.clone(), 42)?;
    let path = std::env::temp_dir().join("prism-unified-service.prsm");
    model.write_container(&path)?;
    let engine = |streaming: bool| -> Result<PrismEngine, Box<dyn std::error::Error>> {
        Ok(PrismEngine::new(
            Container::open(&path)?,
            config.clone(),
            EngineOptions {
                streaming,
                embed_cache: false,
                ..Default::default()
            },
            MemoryMeter::new(),
        )?)
    };
    let profile = dataset_by_name("wikipedia").expect("catalog dataset");
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 17);
    let batch = SequenceBatch::new(&generator.request(0, 20).sequences())?;

    // ---- LocalService: non-blocking handle + progress over a direct
    //      engine ----
    let local = LocalService::new(engine(false)?);
    let handle = local.submit(batch.clone(), RequestOptions::tagged(5, 1))?;
    let mut polls = 0_u32;
    let outcome = loop {
        if let Some(result) = handle.wait_timeout(Duration::from_millis(2)) {
            break result?;
        }
        polls += 1;
        let p = handle.progress();
        println!(
            "  in flight: {} layers forwarded, {} active / {} pruned",
            p.layers_forwarded, p.candidates_active, p.candidates_pruned
        );
    };
    let local_top = outcome.selection.top_ids();
    println!(
        "local   top-5 {:?} after {} layers ({} progress polls)",
        local_top, outcome.selection.trace.executed_layers, polls
    );

    // ---- RemoteService: the same facade over the batched server ----
    let server = PrismServer::start(
        engine(true)?,
        ServeConfig {
            workers: 2,
            max_batch_requests: 4,
            ..Default::default()
        },
    )?;
    let remote = server.service("example-tenant");

    // High priority with a generous deadline: scheduled ahead of bulk
    // work, aborted at a layer boundary if the deadline ever passed.
    let urgent = remote.submit(
        batch.clone(),
        RequestOptions::tagged(5, 1)
            .with_priority(Priority::High)
            .with_deadline_us(30_000_000),
    )?;
    // A bulk request we immediately regret: cancellation releases its
    // spill/scratch at the next layer boundary (or sheds it in-queue).
    let regretted = remote.submit(
        batch.clone(),
        RequestOptions::top_k(5).with_priority(Priority::Bulk),
    )?;
    regretted.cancel();

    let remote_outcome = urgent.wait()?;
    println!(
        "remote  top-5 {:?} (ticket {}, batched {}-wide)",
        remote_outcome.selection.top_ids(),
        remote_outcome.ticket,
        remote_outcome.batch_size
    );
    match regretted.wait() {
        Err(ServiceError::Cancelled) => println!("regretted request: cancelled, as asked"),
        Ok(_) => println!("regretted request: finished before the cancel landed"),
        Err(e) => return Err(e.into()),
    }

    // An already-expired deadline is rejected at admission with the
    // typed error (and a `retry_after` hint rides on backpressure).
    match remote.submit(batch.clone(), RequestOptions::top_k(5).with_deadline_us(0)) {
        Err(ServiceError::DeadlineExceeded) => {
            println!("expired deadline: rejected at admission")
        }
        other => println!("unexpected admission outcome: {other:?}"),
    }

    // ---- One facade, one answer: backends agree bit-for-bit ----
    assert_eq!(
        remote_outcome.selection.top_ids(),
        local_top,
        "backends must agree on the same batch and tag"
    );
    println!("local and remote backends returned identical selections");

    let snap = server.stats().snapshot();
    println!(
        "server: {} completed, {} cancelled, {} deadline-rejected, {} inversions",
        snap.completed, snap.cancelled, snap.deadline_rejected, snap.priority_inversions
    );
    server.shutdown();
    std::fs::remove_file(&path)?;
    Ok(())
}
