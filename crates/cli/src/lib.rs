//! `prsm`: operational tooling for PRISM deployments.
//!
//! ```text
//! prsm inspect <container.prsm>
//!     Section table of a weight container (names, kinds, sizes).
//!
//! prsm gen <out.prsm> --model <name> [--scale mini|test] [--seed N]
//!     Generate a planted-semantics model container. Model names:
//!     qwen3-0.6b qwen3-4b qwen3-8b bge-minicpm bge-m3.
//!
//! prsm quantize <in.prsm> <out.prsm> --model <name> [--scale mini|test]
//!     4-bit quantize every transformer layer of a container.
//!
//! prsm simulate --model <name> [--device rtx5070|m2|a800]
//!              [--candidates N] [--seq N] [--system hf|offload|quant|prism]
//!     Paper-scale latency/memory of one rerank request.
//!
//! prsm rerank <container.prsm> --model <name> [--scale mini|test]
//!            [--dataset wikipedia] [--candidates N] [--k N] [--threshold T]
//!     Run the PRISM engine on a synthetic request and print the top-K.
//! ```
//!
//! All commands return their output as a string (tested directly); the
//! binary prints it.

use std::fmt::Write as _;

use prism_core::{EngineOptions, PrismEngine};
use prism_device::{
    simulate_hf, simulate_hf_offload, simulate_hf_quant, simulate_prism, BatchShape, DeviceSpec,
    PrismSimOptions, PruneSchedule,
};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

/// Runs one CLI invocation and returns its stdout payload.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("inspect") => inspect(&collect(it)),
        Some("gen") => gen(&collect(it)),
        Some("quantize") => quantize(&collect(it)),
        Some("simulate") => simulate(&collect(it)),
        Some("rerank") => rerank(&collect(it)),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command `{other}`; try `prsm help`")),
    }
}

fn usage() -> String {
    "usage: prsm <inspect|gen|quantize|simulate|rerank|help> [args]\n\
     see `cargo doc -p prism-cli` or the crate docs for details\n"
        .to_string()
}

fn collect<'a>(it: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    it.collect()
}

/// Positional arguments and `--flag value` pairs.
struct Parsed<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
}

fn parse<'a>(args: &[&'a str]) -> Result<Parsed<'a>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, *value));
            i += 2;
        } else {
            positional.push(args[i]);
            i += 1;
        }
    }
    Ok(Parsed { positional, flags })
}

impl<'a> Parsed<'a> {
    fn flag(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{name}")),
        }
    }
}

/// Resolves a model name plus scale into a config.
pub fn resolve_config(name: &str, scale: &str) -> Result<ModelConfig, String> {
    let paper = match name.to_ascii_lowercase().as_str() {
        "qwen3-0.6b" | "qwen3-reranker-0.6b" => ModelConfig::qwen3_0_6b(),
        "qwen3-4b" | "qwen3-reranker-4b" => ModelConfig::qwen3_4b(),
        "qwen3-8b" | "qwen3-reranker-8b" => ModelConfig::qwen3_8b(),
        "bge-minicpm" | "bge-reranker-v2-minicpm" => ModelConfig::bge_minicpm(),
        "bge-m3" | "bge-reranker-v2-m3" => ModelConfig::bge_m3(),
        other => return Err(format!("unknown model `{other}`")),
    };
    match scale {
        "paper" => Ok(paper),
        "mini" => Ok(paper.mini_twin()),
        "test" => Ok(ModelConfig::test_config(paper.arch, 6)),
        other => Err(format!("unknown scale `{other}` (paper|mini|test)")),
    }
}

fn resolve_device(name: &str) -> Result<DeviceSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "rtx5070" | "nvidia" => Ok(DeviceSpec::rtx5070_laptop()),
        "m2" | "apple" => Ok(DeviceSpec::apple_m2()),
        "a800" | "server" => Ok(DeviceSpec::a800()),
        other => Err(format!("unknown device `{other}` (rtx5070|m2|a800)")),
    }
}

fn inspect(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p
        .positional
        .first()
        .ok_or("inspect needs a container path")?;
    let container = Container::open(path).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>8} {:>8} {:>12}",
        "section", "kind", "rows", "cols", "bytes"
    );
    let mut total = 0_u64;
    for s in container.sections() {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>8} {:>8} {:>12}",
            s.name,
            format!("{:?}", s.kind),
            s.rows,
            s.cols,
            s.len
        );
        total += s.len;
    }
    let _ = writeln!(
        out,
        "total payload: {total} bytes in {} sections",
        container.sections().len()
    );
    Ok(out)
}

fn gen(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p.positional.first().ok_or("gen needs an output path")?;
    let name = p.flag("model").ok_or("gen needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let seed: u64 = p.flag_parse("seed", 42)?;
    let config = resolve_config(name, scale)?;
    let model = Model::generate(config.clone(), seed).map_err(|e| e.to_string())?;
    model.write_container(path).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} layers, hidden {}, vocab {}) to {path}\n",
        config.name, config.num_layers, config.hidden_dim, config.vocab_size
    ))
}

fn quantize(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let [input, output] = p.positional[..] else {
        return Err("quantize needs <in.prsm> <out.prsm>".into());
    };
    let name = p.flag("model").ok_or("quantize needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let container = Container::open(input).map_err(|e| e.to_string())?;
    let model = Model::load_container(config, &container).map_err(|e| e.to_string())?;
    let quant = model.quantized().map_err(|e| e.to_string())?;
    quant.write_container(output).map_err(|e| e.to_string())?;
    let before = std::fs::metadata(input).map_err(|e| e.to_string())?.len();
    let after = std::fs::metadata(output).map_err(|e| e.to_string())?.len();
    Ok(format!(
        "quantized {input} -> {output}: {before} -> {after} bytes ({:.2}x)\n",
        before as f64 / after as f64
    ))
}

fn simulate(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let name = p.flag("model").ok_or("simulate needs --model <name>")?;
    let config = resolve_config(name, "paper")?;
    let device = resolve_device(p.flag("device").unwrap_or("rtx5070"))?;
    let candidates: usize = p.flag_parse("candidates", 20)?;
    let seq_len: usize = p.flag_parse("seq", 500)?;
    let system = p.flag("system").unwrap_or("prism");
    let shape = BatchShape {
        candidates,
        seq_len,
    };
    let outcome = match system {
        "hf" => simulate_hf(&config, &device, shape),
        "offload" => simulate_hf_offload(&config, &device, shape),
        "quant" => simulate_hf_quant(&config, &device, shape),
        "prism" => {
            // A representative mid-depth schedule (prune to 40% at 1/3
            // depth, terminate at 2/3) when no trace is supplied.
            let l = config.num_layers;
            let schedule = PruneSchedule {
                active_per_layer: (0..l)
                    .map(|i| {
                        let f = i as f64 / l as f64;
                        if f < 0.33 {
                            candidates
                        } else if f < 0.66 {
                            (candidates as f64 * 0.4).ceil() as usize
                        } else {
                            0
                        }
                    })
                    .collect(),
            };
            simulate_prism(
                &config,
                &device,
                shape,
                &schedule,
                PrismSimOptions::default(),
            )
        }
        other => return Err(format!("unknown system `{other}` (hf|offload|quant|prism)")),
    };
    Ok(format!(
        "{} | {} | {} candidates x {} tokens\nlatency: {:.3} s\npeak memory: {:.1} MiB\navg memory: {:.1} MiB\noom: {}\n",
        config.name,
        device.name,
        candidates,
        seq_len,
        outcome.latency_s,
        outcome.peak_bytes as f64 / (1 << 20) as f64,
        outcome.avg_bytes as f64 / (1 << 20) as f64,
        outcome.oom
    ))
}

fn rerank(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p
        .positional
        .first()
        .ok_or("rerank needs a container path")?;
    let name = p.flag("model").ok_or("rerank needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let dataset = p.flag("dataset").unwrap_or("wikipedia");
    let candidates: usize = p.flag_parse("candidates", 20)?;
    let k: usize = p.flag_parse("k", 5)?;
    let threshold: f32 = p.flag_parse("threshold", 0.25)?;

    let profile = dataset_by_name(dataset).ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 0xC11);
    let request = generator.request(0, candidates);
    let batch = SequenceBatch::new(&request.sequences()).map_err(|e| e.to_string())?;

    let container = Container::open(path).map_err(|e| e.to_string())?;
    let options = EngineOptions {
        dispersion_threshold: threshold,
        ..Default::default()
    };
    let mut engine = PrismEngine::new(container, config.clone(), options, MemoryMeter::new())
        .map_err(|e| e.to_string())?;
    let selection = engine.select_top_k(&batch, k).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "top-{k} of {candidates} ({dataset}, threshold {threshold}):"
    );
    for r in &selection.ranked {
        let gold = if request.relevant.contains(&r.id) {
            " [gold]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  #{:<3} score {:.3} decided@L{}{gold}",
            r.id, r.score, r.decided_at_layer
        );
    }
    let t = &selection.trace;
    let _ = writeln!(
        out,
        "executed {}/{} layers; active per layer {:?}",
        t.executed_layers, config.num_layers, t.active_per_layer
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("prsm-cli-{tag}-{}.prsm", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn run_strs(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_strs(&[]).unwrap().contains("usage"));
        assert!(run_strs(&["help"]).unwrap().contains("usage"));
        assert!(run_strs(&["frobnicate"]).is_err());
    }

    #[test]
    fn gen_inspect_quantize_rerank_round_trip() {
        let dense = tmp("dense");
        let out = run_strs(&[
            "gen",
            &dense,
            "--model",
            "qwen3-0.6b",
            "--scale",
            "test",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");

        let out = run_strs(&["inspect", &dense]).unwrap();
        assert!(out.contains("embedding"));
        assert!(out.contains("layer.0"));
        assert!(out.contains("total payload"));

        let quant = tmp("quant");
        let out = run_strs(&[
            "quantize",
            &dense,
            &quant,
            "--model",
            "qwen3-0.6b",
            "--scale",
            "test",
        ])
        .unwrap();
        assert!(out.contains("quantized"), "{out}");
        let shrink: f64 = out
            .split('(')
            .nth(1)
            .and_then(|s| s.strip_suffix("x)\n"))
            .and_then(|s| s.parse().ok())
            .expect("shrink factor in output");
        assert!(
            shrink > 1.5,
            "quantized container should be much smaller: {shrink}"
        );

        let out = run_strs(&[
            "rerank",
            &dense,
            "--model",
            "qwen3-0.6b",
            "--scale",
            "test",
            "--k",
            "3",
            "--candidates",
            "10",
        ])
        .unwrap();
        assert!(out.contains("top-3 of 10"), "{out}");
        assert!(out.contains("executed"));

        std::fs::remove_file(&dense).unwrap();
        std::fs::remove_file(&quant).unwrap();
    }

    #[test]
    fn simulate_all_systems() {
        for system in ["hf", "offload", "quant", "prism"] {
            let out = run_strs(&[
                "simulate", "--model", "bge-m3", "--device", "m2", "--system", system,
            ])
            .unwrap();
            assert!(out.contains("latency"), "{system}: {out}");
            assert!(out.contains("peak memory"));
        }
        // OOM flagged for 8B on the laptop.
        let out = run_strs(&["simulate", "--model", "qwen3-8b", "--system", "hf"]).unwrap();
        assert!(out.contains("oom: true"));
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(
            run_strs(&["gen", "/tmp/x.prsm"]).is_err(),
            "missing --model"
        );
        assert!(run_strs(&["simulate", "--model", "nope"]).is_err());
        assert!(run_strs(&["simulate", "--model", "bge-m3", "--device", "np"]).is_err());
        assert!(run_strs(&["simulate", "--model", "bge-m3", "--candidates", "abc"]).is_err());
        assert!(run_strs(&["gen"]).is_err(), "missing path");
        assert!(run_strs(&["inspect", "/nonexistent/file.prsm"]).is_err());
        assert!(
            run_strs(&["gen", "/tmp/x.prsm", "--model"]).is_err(),
            "flag without value"
        );
    }

    #[test]
    fn resolve_config_names_and_scales() {
        for name in [
            "qwen3-0.6b",
            "qwen3-4b",
            "qwen3-8b",
            "bge-minicpm",
            "bge-m3",
        ] {
            let paper = resolve_config(name, "paper").unwrap();
            let mini = resolve_config(name, "mini").unwrap();
            assert_eq!(paper.num_layers, mini.num_layers);
            assert!(mini.hidden_dim < paper.hidden_dim);
        }
        assert!(resolve_config("gpt-5", "paper").is_err());
        assert!(resolve_config("bge-m3", "huge").is_err());
    }
}
