//! `prsm`: operational tooling for PRISM deployments.
//!
//! ```text
//! prsm inspect <container.prsm>
//!     Section table of a weight container (names, kinds, sizes).
//!
//! prsm gen <out.prsm> --model <name> [--scale mini|test] [--seed N]
//!     Generate a planted-semantics model container. Model names:
//!     qwen3-0.6b qwen3-4b qwen3-8b bge-minicpm bge-m3.
//!
//! prsm quantize <in.prsm> <out.prsm> --model <name> [--scale mini|test]
//!     4-bit quantize every transformer layer of a container.
//!
//! prsm simulate --model <name> [--device rtx5070|m2|a800]
//!              [--candidates N] [--seq N] [--system hf|offload|quant|prism]
//!     Paper-scale latency/memory of one rerank request.
//!
//! prsm rerank <container.prsm> --model <name> [--scale mini|test]
//!            [--dataset wikipedia] [--candidates N] [--k N] [--threshold T]
//!     Run the PRISM engine on a synthetic request and print the top-K.
//!
//! prsm serve <container.prsm> --model <name> [--scale mini|test]
//!           [--workers N] [--batch N] [--batch-tokens N] [--wait-us N]
//!           [--cache-sessions N] [--throttle BYTES_PER_S]
//!           [--offload on|off] [--spill int8|f32] [--compute f32|int8]
//!           [--semcache off|verify|aggressive] [--dup-frac F]
//!           [--shards N] [--replicas R] [--hedge-ms N]
//!           [--on-partial fail|partial] [--tenant-quota N] [--listen ADDR]
//!           [--requests N] [--clients N] [--candidates N] [--k N]
//!           [--sessions N] [--repeat N] [--dataset wikipedia]
//!           [--starvation-ms N] [--priority high|normal|bulk] [--deadline-ms N]
//!           [--high-frac F]
//!     Start the serving front-end over a container, drive a closed-loop
//!     synthetic workload through it, and print latency percentiles plus
//!     queue/batch/cache telemetry. `--throttle` caps weight-streaming
//!     bandwidth to emulate a device SSD (default 0 = native);
//!     `--priority` sets the scheduling class of the generated load,
//!     `--deadline-ms` attaches a per-request deadline, and
//!     `--high-frac` promotes that fraction of the stream to High
//!     priority (per-class percentiles are reported). `--shards N`
//!     partitions each request's candidates across N engine shards
//!     behind the consistent-hash forward map (weights pinned resident,
//!     so `--throttle` does not apply); `--tenant-quota N` caps in-flight
//!     requests per tenant session; `--listen ADDR` additionally binds
//!     the length-prefixed TCP wire front-end on ADDR (port 0 picks a
//!     free port) and drives the same closed loop through out-of-process
//!     wire clients instead of in-process submission. `--semcache`
//!     stamps the semantic-cache mode on every generated request (any
//!     mode but `off` also pins requests to full depth, the replay
//!     soundness requirement) and `--dup-frac F` draws that fraction of
//!     the stream from a cross-session duplicate corpus pool, the
//!     overlap the semantic cache exists to exploit. `--replicas R`
//!     places every candidate on R shards (rendezvous rank order) so a
//!     dead or stalled shard fails over bit-identically; `--hedge-ms N`
//!     hedges a shard stalled longer than N ms onto its next replica
//!     (0 = off); `--on-partial partial` serves a degraded best-effort
//!     selection (coverage < 1) when every replica of a candidate is
//!     down instead of failing the request. Summaries always include
//!     the resilience counters (failovers, hedges, retries, quarantined
//!     spill slots, partial results).
//!
//! prsm connect <addr> --model <name> [--scale mini|test]
//!             [--requests N] [--clients N] [--candidates N] [--k N]
//!             [--dataset wikipedia] [--seed N]
//!             [--spill int8|f32] [--compute f32|int8]
//!             [--semcache off|verify|aggressive]
//!     Out-of-process client: connect to a running `prsm serve --listen`
//!     endpoint, ping it, drive the synthetic workload through wire
//!     clients, and print latency percentiles. `--model`/`--scale` must
//!     match the served container (they shape the generated workload).
//!
//! prsm bench-serve <container.prsm> --model <name> [--scale mini|test]
//!                 [--requests N] [--clients N] [--candidates N] [--k N]
//!                 [--batch N] [--workers N] [--repeat N]
//!                 [--throttle BYTES_PER_S] [--high-frac F]
//!                 [--deadline-ms N] [--mixed-batch N]
//!     Closed-loop load comparison: the 1-worker/no-batching reference vs
//!     the batched scheduler, reporting p50/p95/p99 and the throughput
//!     gain from cross-request coalescing, plus a mixed-priority scenario
//!     (`--high-frac`, default 10% High with deadlines) comparing the
//!     FIFO and priority-then-EDF schedulers on high-priority p99.
//!     Streaming runs against an emulated 16 MB/s SSD by default
//!     (`--throttle 0` = native disk).
//!
//! prsm simulate-serve --model <name> [--scale mini|test]
//!                    [--device rtx5070|m2|a800]
//!                    [--profile steady|diurnal|burst] [--rps F] [--events N]
//!                    [--mode trace|closed] [--seed N]
//!                    [--workers N] [--batch N] [--batch-tokens N] [--wait-us N]
//!                    [--cache-sessions N] [--starvation-ms N]
//!                    [--fixed-us F] [--per-request-us F] [--per-token-us F]
//!                    [--shards N] [--parallel-shards on|off]
//!                    [--replicas R] [--fault-per-mille N]
//!                    [--tune on]
//!     Deterministic discrete-event simulation of the serving stack: the
//!     real batch planner and session-cache model driven at virtual time,
//!     so a simulated day of traffic costs seconds. `--mode trace`
//!     (default) replays an open-loop arrival trace (`--profile`,
//!     `--rps`, `--events`); `--mode closed` drives the same closed-loop
//!     workload flags as `serve`. Service times come from the analytic
//!     `--device` cost model unless `--fixed-us`/`--per-token-us` pin a
//!     calibrated affine model (e.g. fitted by `repro sim-validate`).
//!     `--tune on` sweeps the scheduling knobs through the simulator and
//!     prints the best configuration for the device instead. `--shards N`
//!     prices batches through the analytic scatter-gather model instead
//!     (`--parallel-shards on` = one device per shard, off = colocated
//!     loopback shards on one device). `--fault-per-mille N` draws a
//!     shard fault on N of every 1000 simulated batches; with
//!     `--replicas 2+` faults cost latency (failover replays), with the
//!     default R=1 they cost requests (typed shard errors).
//! ```
//!
//! All commands return their output as a string (tested directly); the
//! binary prints it.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use prism_api::SelectionService;
use prism_core::{
    ComputePrecision, EngineOptions, PartialMode, Priority, PrismEngine, RequestOptions,
    SemCacheMode, SpillPrecision,
};
use prism_device::{
    simulate_hf, simulate_hf_offload, simulate_hf_quant, simulate_prism, BatchShape, DeviceSpec,
    PrismSimOptions, PruneSchedule, ScatterGatherCost, ServeBatchCost,
};
use prism_metasim::{
    simulate_closed_loop_with, tune_for_device, Calibration, ServiceModel, SimFaults, SimReport,
    Simulation,
};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelConfig, SequenceBatch};
use prism_serve::{run_closed_loop, LoadReport, LoadSpec, PrismServer, ServeConfig};
use prism_storage::Container;
use prism_wire::{WireClient, WireServer};
use prism_workload::{dataset_by_name, trace_profile_by_name, TraceGenerator, WorkloadGenerator};

/// Runs one CLI invocation and returns its stdout payload.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("inspect") => inspect(&collect(it)),
        Some("gen") => gen(&collect(it)),
        Some("quantize") => quantize(&collect(it)),
        Some("simulate") => simulate(&collect(it)),
        Some("rerank") => rerank(&collect(it)),
        Some("serve") => serve(&collect(it)),
        Some("connect") => connect(&collect(it)),
        Some("bench-serve") => bench_serve(&collect(it)),
        Some("simulate-serve") => simulate_serve(&collect(it)),
        Some("help") | None => Ok(usage()),
        Some(other) => Err(format!("unknown command `{other}`; try `prsm help`")),
    }
}

fn usage() -> String {
    "usage: prsm <inspect|gen|quantize|simulate|rerank|serve|connect|bench-serve|simulate-serve|help> [args]\n\
     see `cargo doc -p prism-cli` or the crate docs for details\n"
        .to_string()
}

fn collect<'a>(it: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    it.collect()
}

/// Positional arguments and `--flag value` pairs.
struct Parsed<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, &'a str)>,
}

fn parse<'a>(args: &[&'a str]) -> Result<Parsed<'a>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, *value));
            i += 2;
        } else {
            positional.push(args[i]);
            i += 1;
        }
    }
    Ok(Parsed { positional, flags })
}

impl<'a> Parsed<'a> {
    fn flag(&self, name: &str) -> Option<&'a str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    fn flag_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{name}")),
        }
    }
}

/// Resolves a model name plus scale into a config.
pub fn resolve_config(name: &str, scale: &str) -> Result<ModelConfig, String> {
    let paper = match name.to_ascii_lowercase().as_str() {
        "qwen3-0.6b" | "qwen3-reranker-0.6b" => ModelConfig::qwen3_0_6b(),
        "qwen3-4b" | "qwen3-reranker-4b" => ModelConfig::qwen3_4b(),
        "qwen3-8b" | "qwen3-reranker-8b" => ModelConfig::qwen3_8b(),
        "bge-minicpm" | "bge-reranker-v2-minicpm" => ModelConfig::bge_minicpm(),
        "bge-m3" | "bge-reranker-v2-m3" => ModelConfig::bge_m3(),
        other => return Err(format!("unknown model `{other}`")),
    };
    match scale {
        "paper" => Ok(paper),
        "mini" => Ok(paper.mini_twin()),
        "test" => Ok(ModelConfig::test_config(paper.arch, 6)),
        other => Err(format!("unknown scale `{other}` (paper|mini|test)")),
    }
}

fn resolve_device(name: &str) -> Result<DeviceSpec, String> {
    match name.to_ascii_lowercase().as_str() {
        "rtx5070" | "nvidia" => Ok(DeviceSpec::rtx5070_laptop()),
        "m2" | "apple" => Ok(DeviceSpec::apple_m2()),
        "a800" | "server" => Ok(DeviceSpec::a800()),
        other => Err(format!("unknown device `{other}` (rtx5070|m2|a800)")),
    }
}

fn inspect(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p
        .positional
        .first()
        .ok_or("inspect needs a container path")?;
    let container = Container::open(path).map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>8} {:>8} {:>12}",
        "section", "kind", "rows", "cols", "bytes"
    );
    let mut total = 0_u64;
    for s in container.sections() {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>8} {:>8} {:>12}",
            s.name,
            format!("{:?}", s.kind),
            s.rows,
            s.cols,
            s.len
        );
        total += s.len;
    }
    let _ = writeln!(
        out,
        "total payload: {total} bytes in {} sections",
        container.sections().len()
    );
    Ok(out)
}

fn gen(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p.positional.first().ok_or("gen needs an output path")?;
    let name = p.flag("model").ok_or("gen needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let seed: u64 = p.flag_parse("seed", 42)?;
    let config = resolve_config(name, scale)?;
    let model = Model::generate(config.clone(), seed).map_err(|e| e.to_string())?;
    model.write_container(path).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} layers, hidden {}, vocab {}) to {path}\n",
        config.name, config.num_layers, config.hidden_dim, config.vocab_size
    ))
}

fn quantize(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let [input, output] = p.positional[..] else {
        return Err("quantize needs <in.prsm> <out.prsm>".into());
    };
    let name = p.flag("model").ok_or("quantize needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let container = Container::open(input).map_err(|e| e.to_string())?;
    let model = Model::load_container(config, &container).map_err(|e| e.to_string())?;
    let quant = model.quantized().map_err(|e| e.to_string())?;
    quant.write_container(output).map_err(|e| e.to_string())?;
    let before = std::fs::metadata(input).map_err(|e| e.to_string())?.len();
    let after = std::fs::metadata(output).map_err(|e| e.to_string())?.len();
    Ok(format!(
        "quantized {input} -> {output}: {before} -> {after} bytes ({:.2}x)\n",
        before as f64 / after as f64
    ))
}

fn simulate(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let name = p.flag("model").ok_or("simulate needs --model <name>")?;
    let config = resolve_config(name, "paper")?;
    let device = resolve_device(p.flag("device").unwrap_or("rtx5070"))?;
    let candidates: usize = p.flag_parse("candidates", 20)?;
    let seq_len: usize = p.flag_parse("seq", 500)?;
    let system = p.flag("system").unwrap_or("prism");
    let shape = BatchShape {
        candidates,
        seq_len,
    };
    let outcome = match system {
        "hf" => simulate_hf(&config, &device, shape),
        "offload" => simulate_hf_offload(&config, &device, shape),
        "quant" => simulate_hf_quant(&config, &device, shape),
        "prism" => {
            // A representative mid-depth schedule (prune to 40% at 1/3
            // depth, terminate at 2/3) when no trace is supplied.
            let l = config.num_layers;
            let schedule = PruneSchedule {
                active_per_layer: (0..l)
                    .map(|i| {
                        let f = i as f64 / l as f64;
                        if f < 0.33 {
                            candidates
                        } else if f < 0.66 {
                            (candidates as f64 * 0.4).ceil() as usize
                        } else {
                            0
                        }
                    })
                    .collect(),
            };
            simulate_prism(
                &config,
                &device,
                shape,
                &schedule,
                PrismSimOptions::default(),
            )
        }
        other => return Err(format!("unknown system `{other}` (hf|offload|quant|prism)")),
    };
    Ok(format!(
        "{} | {} | {} candidates x {} tokens\nlatency: {:.3} s\npeak memory: {:.1} MiB\navg memory: {:.1} MiB\noom: {}\n",
        config.name,
        device.name,
        candidates,
        seq_len,
        outcome.latency_s,
        outcome.peak_bytes as f64 / (1 << 20) as f64,
        outcome.avg_bytes as f64 / (1 << 20) as f64,
        outcome.oom
    ))
}

fn rerank(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p
        .positional
        .first()
        .ok_or("rerank needs a container path")?;
    let name = p.flag("model").ok_or("rerank needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let dataset = p.flag("dataset").unwrap_or("wikipedia");
    let candidates: usize = p.flag_parse("candidates", 20)?;
    let k: usize = p.flag_parse("k", 5)?;
    let threshold: f32 = p.flag_parse("threshold", 0.25)?;

    let profile = dataset_by_name(dataset).ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 0xC11);
    let request = generator.request(0, candidates);
    let batch = SequenceBatch::new(&request.sequences()).map_err(|e| e.to_string())?;

    let container = Container::open(path).map_err(|e| e.to_string())?;
    let options = EngineOptions {
        dispersion_threshold: threshold,
        ..Default::default()
    };
    let engine = PrismEngine::new(container, config.clone(), options, MemoryMeter::new())
        .map_err(|e| e.to_string())?;
    let selection = engine.select_top_k(&batch, k).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "top-{k} of {candidates} ({dataset}, threshold {threshold}):"
    );
    for r in &selection.ranked {
        let gold = if request.relevant.contains(&r.id) {
            " [gold]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  #{:<3} score {:.3} decided@L{}{gold}",
            r.id, r.score, r.decided_at_layer
        );
    }
    let t = &selection.trace;
    let _ = writeln!(
        out,
        "executed {}/{} layers; active per layer {:?}",
        t.executed_layers, config.num_layers, t.active_per_layer
    );
    Ok(out)
}

/// Opens a serving engine over a container path (shared by `serve` and
/// `bench-serve`). `throttle` caps streaming bandwidth in bytes/s to
/// emulate a device SSD (`0` = native speed); `offload` additionally
/// spills non-active chunk hidden states to disk (the §4.3 extreme
/// memory-pressure regime, where the per-request `--spill` precision
/// becomes observable).
fn serving_engine(
    path: &str,
    config: &ModelConfig,
    throttle: u64,
    offload: bool,
) -> Result<PrismEngine, String> {
    let container = Container::open(path).map_err(|e| e.to_string())?;
    let options = EngineOptions {
        stream_throttle: (throttle > 0).then_some(throttle),
        // A serving deployment pins the embedding table in memory (the
        // §4.4 disk-backed cache targets one-shot on-device flows);
        // layer weights still stream per batch.
        embed_cache: false,
        hidden_offload: offload,
        ..Default::default()
    };
    PrismEngine::new(container, config.clone(), options, MemoryMeter::new())
        .map_err(|e| e.to_string())
}

fn resolve_priority(name: &str) -> Result<Priority, String> {
    match name.to_ascii_lowercase().as_str() {
        "high" => Ok(Priority::High),
        "normal" => Ok(Priority::Normal),
        "bulk" | "low" => Ok(Priority::Bulk),
        other => Err(format!("unknown priority `{other}` (high|normal|bulk)")),
    }
}

fn resolve_spill(name: &str) -> Result<SpillPrecision, String> {
    match name.to_ascii_lowercase().as_str() {
        "int8" => Ok(SpillPrecision::Int8),
        "f32" => Ok(SpillPrecision::F32),
        other => Err(format!("unknown spill precision `{other}` (int8|f32)")),
    }
}

fn resolve_compute(name: &str) -> Result<ComputePrecision, String> {
    match name.to_ascii_lowercase().as_str() {
        "int8" => Ok(ComputePrecision::Int8),
        "f32" => Ok(ComputePrecision::F32),
        other => Err(format!("unknown compute precision `{other}` (f32|int8)")),
    }
}

fn resolve_semcache(name: &str) -> Result<SemCacheMode, String> {
    match name.to_ascii_lowercase().as_str() {
        "off" => Ok(SemCacheMode::Off),
        "verify" => Ok(SemCacheMode::VerifyAndFallback),
        "aggressive" => Ok(SemCacheMode::Aggressive),
        other => Err(format!(
            "unknown semcache mode `{other}` (off|verify|aggressive)"
        )),
    }
}

fn resolve_partial(name: &str) -> Result<PartialMode, String> {
    match name.to_ascii_lowercase().as_str() {
        "fail" => Ok(PartialMode::Fail),
        "partial" => Ok(PartialMode::Partial),
        other => Err(format!("unknown partial mode `{other}` (fail|partial)")),
    }
}

/// Parses an `--NAME on|off` switch (absent = off).
fn resolve_switch(p: &Parsed<'_>, name: &str) -> Result<bool, String> {
    match p.flag(name) {
        None => Ok(false),
        Some(v) => match v.to_ascii_lowercase().as_str() {
            "on" | "true" | "1" => Ok(true),
            "off" | "false" | "0" => Ok(false),
            other => Err(format!("--{name} takes on|off, got `{other}`")),
        },
    }
}

fn load_spec_from(p: &Parsed<'_>) -> Result<LoadSpec, String> {
    let defaults = LoadSpec::default();
    let dataset = p.flag("dataset").unwrap_or("wikipedia");
    dataset_by_name(dataset).ok_or_else(|| format!("unknown dataset `{dataset}`"))?;
    let priority = resolve_priority(p.flag("priority").unwrap_or("normal"))?;
    // `--deadline-ms` puts a deadline on every generated request;
    // `--high-frac` additionally promotes that fraction of the stream to
    // High priority (spread evenly).
    let deadline_ms: u64 = p.flag_parse("deadline-ms", 0)?;
    let deadline_us = (deadline_ms > 0).then_some(deadline_ms * 1_000);
    Ok(LoadSpec {
        requests: p.flag_parse("requests", defaults.requests)?,
        clients: p.flag_parse("clients", defaults.clients)?,
        candidates: p.flag_parse("candidates", defaults.candidates)?,
        k: p.flag_parse("k", defaults.k)?,
        dataset: dataset.to_string(),
        seed: p.flag_parse("seed", defaults.seed)?,
        sessions: p.flag_parse("sessions", defaults.sessions)?,
        corpus_repeat: p.flag_parse("repeat", defaults.corpus_repeat)?,
        priority,
        high_fraction: p.flag_parse("high-frac", 0.0_f64)?,
        high_deadline_us: deadline_us,
        deadline_us,
        spill_precision: resolve_spill(p.flag("spill").unwrap_or("int8"))?,
        compute_precision: resolve_compute(p.flag("compute").unwrap_or("f32"))?,
        semcache: resolve_semcache(p.flag("semcache").unwrap_or("off"))?,
        dup_fraction: p.flag_parse("dup-frac", 0.0_f64)?,
        on_partial: resolve_partial(p.flag("on-partial").unwrap_or("fail"))?,
    })
}

fn write_load_report(out: &mut String, report: &LoadReport) {
    let _ = writeln!(
        out,
        "completed {} requests in {:.3} s -> {:.1} req/s ({} errors, {} backpressure retries)",
        report.completed,
        report.elapsed_s,
        report.throughput_rps,
        report.errors,
        report.backpressure_retries
    );
    let _ = writeln!(
        out,
        "latency us: p50 {}  p95 {}  p99 {}  max {}  mean {:.0}",
        report.p50_us, report.p95_us, report.p99_us, report.max_us, report.mean_us
    );
    let s = &report.stats;
    let _ = writeln!(
        out,
        "queue depth peak {}; {} batches (mean {:.2} requests / {:.0} tokens)",
        s.queue_depth_peak, s.batches, s.batch_size.mean, s.batch_tokens.mean
    );
    let _ = writeln!(
        out,
        "session cache: {} selection hits, {} embed hits, {} misses (hit rate {:.1}%)",
        s.cache_selection_hits,
        s.cache_embed_hits,
        s.cache_misses,
        s.cache_hit_rate * 100.0
    );
    if s.semcache_hits + s.semcache_misses + s.semcache_fallbacks > 0 {
        let probed = s.semcache_hits + s.semcache_misses;
        let _ = writeln!(
            out,
            "semantic cache: {} hits, {} misses, {} fallbacks, {} bytes (hit rate {:.1}%)",
            s.semcache_hits,
            s.semcache_misses,
            s.semcache_fallbacks,
            s.semcache_bytes,
            if probed > 0 {
                s.semcache_hits as f64 / probed as f64 * 100.0
            } else {
                0.0
            }
        );
    }
    if s.cancelled + s.deadline_rejected + s.deadline_missed + s.priority_inversions > 0 {
        let _ = writeln!(
            out,
            "lifecycle: {} cancelled, {} deadline-rejected, {} deadline-missed, {} priority inversions",
            s.cancelled, s.deadline_rejected, s.deadline_missed, s.priority_inversions
        );
    }
    write_resilience_summary(out, s);
    for c in &report.classes {
        let _ = writeln!(
            out,
            "  class {:<6} {:>4} ok / {:>3} err  p50 {:>7} us  p95 {:>7} us  p99 {:>7} us",
            c.label, c.completed, c.errors, c.p50_us, c.p95_us, c.p99_us
        );
    }
}

/// The resilience-layer counters every serve summary surfaces:
/// failovers and hedges from the replicated scatter path, client-side
/// backpressure retries, quarantined spill slots, and degraded partial
/// results.
fn write_resilience_summary(out: &mut String, s: &prism_serve::ServeStatsSnapshot) {
    let _ = writeln!(
        out,
        "resilience: {} failovers, {} hedges fired / {} won, {} retried, \
         {} slots quarantined, {} partial results",
        s.failovers,
        s.hedges_fired,
        s.hedges_won,
        s.retried,
        s.slots_quarantined,
        s.partial_results
    );
}

/// Builds a `ServeConfig` from the shared scheduling flags (`serve` and
/// `simulate-serve` accept the same knobs).
fn serve_config_from(p: &Parsed<'_>) -> Result<ServeConfig, String> {
    let serve_defaults = ServeConfig::default();
    let max_batch_wait = std::time::Duration::from_micros(
        p.flag_parse("wait-us", serve_defaults.max_batch_wait.as_micros() as u64)?,
    );
    // The starvation bound must sit at or above the batch wait
    // (`ServeConfig::validate`); follow a raised `--wait-us` unless
    // `--starvation-ms` pins it explicitly.
    let starvation_age = match p.flag("starvation-ms") {
        Some(_) => std::time::Duration::from_millis(p.flag_parse("starvation-ms", 0_u64)?),
        None => serve_defaults.starvation_age.max(max_batch_wait),
    };
    Ok(ServeConfig {
        workers: p.flag_parse("workers", serve_defaults.workers)?,
        max_batch_requests: p.flag_parse("batch", serve_defaults.max_batch_requests)?,
        max_batch_tokens: p.flag_parse("batch-tokens", serve_defaults.max_batch_tokens)?,
        max_batch_wait,
        session_cache_capacity: p
            .flag_parse("cache-sessions", serve_defaults.session_cache_capacity)?,
        starvation_age,
        tenant_max_inflight: p.flag_parse("tenant-quota", serve_defaults.tenant_max_inflight)?,
        replicas: p.flag_parse("replicas", serve_defaults.replicas)?,
        // `--hedge-ms 0` (or absent) disables hedging rather than
        // configuring a zero delay, which `validate` rejects.
        hedge: match p.flag_parse("hedge-ms", 0_u64)? {
            0 => serve_defaults.hedge,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
        ..serve_defaults
    })
}

/// Opens one *resident* engine per shard over the same container.
/// Sharded serving pins layer weights in memory (`ShardSet` rejects
/// streaming engines), so the `--throttle` SSD emulation does not apply.
fn sharded_engines(
    path: &str,
    config: &ModelConfig,
    shards: usize,
    offload: bool,
) -> Result<Vec<PrismEngine>, String> {
    (0..shards)
        .map(|_| {
            let container = Container::open(path).map_err(|e| e.to_string())?;
            let options = EngineOptions {
                streaming: false,
                embed_cache: false,
                hidden_offload: offload,
                ..Default::default()
            };
            PrismEngine::new(container, config.clone(), options, MemoryMeter::new())
                .map_err(|e| e.to_string())
        })
        .collect()
}

fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives the closed-loop workload through out-of-process [`WireClient`]
/// connections, so measured latencies include frame encode/decode and
/// the socket hop. Returns `(sorted latencies us, errors, ping RTT)`.
fn run_wire_loop(
    addr: &str,
    config: &ModelConfig,
    spec: &LoadSpec,
) -> Result<(Vec<u64>, usize, Duration), String> {
    let profile = dataset_by_name(&spec.dataset)
        .ok_or_else(|| format!("unknown dataset `{}`", spec.dataset))?;
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, spec.seed);
    let clients = spec.clients.max(1).min(spec.requests.max(1));

    // Probe connection first: a typed handshake/ping failure beats N
    // client threads all reporting the same refused connect.
    let probe =
        WireClient::connect(addr, "wire-probe").map_err(|e| format!("connect {addr}: {e}"))?;
    let rtt = probe
        .ping(Duration::from_secs(10))
        .map_err(|e| format!("ping {addr}: {e}"))?;
    drop(probe);

    let mut latencies: Vec<u64> = Vec::with_capacity(spec.requests);
    let mut errors = 0_usize;
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::with_capacity(clients);
        for c in 0..clients {
            let generator = &generator;
            handles.push(scope.spawn(move || -> Result<(Vec<u64>, usize), String> {
                let client = WireClient::connect(addr, format!("wire-{c}"))
                    .map_err(|e| format!("connect {addr}: {e}"))?;
                let mut lat = Vec::new();
                let mut errs = 0_usize;
                let mut i = c;
                while i < spec.requests {
                    let request = generator.request(i as u64, spec.candidates);
                    let batch =
                        SequenceBatch::new(&request.sequences()).map_err(|e| e.to_string())?;
                    // Tag by request index so results are independent of
                    // arrival interleaving (same rule as the in-process
                    // loop).
                    let mut options = RequestOptions::tagged(spec.k, i as u64 + 1)
                        .with_spill_precision(spec.spill_precision)
                        .with_compute_precision(spec.compute_precision)
                        .with_semcache(spec.semcache)
                        .with_on_partial(spec.on_partial);
                    if spec.semcache != SemCacheMode::Off {
                        // Same rule as the in-process loop: semantic
                        // replay is only sound at full depth.
                        options.pruning = Some(false);
                    }
                    let t0 = Instant::now();
                    match client.submit(batch, options).map(|h| h.wait()) {
                        Ok(Ok(_)) => lat.push(t0.elapsed().as_micros() as u64),
                        _ => errs += 1,
                    }
                    i += clients;
                }
                Ok((lat, errs))
            }));
        }
        for h in handles {
            let (lat, errs) = h.join().expect("wire client thread panicked")?;
            latencies.extend(lat);
            errors += errs;
        }
        Ok(())
    })?;
    latencies.sort_unstable();
    Ok((latencies, errors, rtt))
}

fn write_wire_summary(
    out: &mut String,
    latencies: &[u64],
    errors: usize,
    rtt: Duration,
    elapsed_s: f64,
) {
    let completed = latencies.len();
    let mean_us = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / completed as f64
    };
    let _ = writeln!(out, "ping RTT {} us", rtt.as_micros());
    let _ = writeln!(
        out,
        "completed {completed} requests in {elapsed_s:.3} s -> {:.1} req/s ({errors} errors)",
        if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        }
    );
    let _ = writeln!(
        out,
        "latency us: p50 {}  p95 {}  p99 {}  max {}  mean {mean_us:.0}",
        exact_percentile(latencies, 0.50),
        exact_percentile(latencies, 0.95),
        exact_percentile(latencies, 0.99),
        latencies.last().copied().unwrap_or(0),
    );
}

fn serve(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p.positional.first().ok_or("serve needs a container path")?;
    let name = p.flag("model").ok_or("serve needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let serve_config = serve_config_from(&p)?;
    let spec = load_spec_from(&p)?;
    let throttle: u64 = p.flag_parse("throttle", 0)?;
    let offload = resolve_switch(&p, "offload")?;
    let shards: usize = p.flag_parse("shards", 1)?;
    if shards == 0 {
        return Err("--shards needs at least 1".into());
    }
    if shards > 1 && throttle > 0 {
        return Err("--throttle streams weights; --shards pins them resident (pick one)".into());
    }

    let server = if shards > 1 {
        let engines = sharded_engines(path, &config, shards, offload)?;
        PrismServer::start_sharded(engines, serve_config.clone()).map_err(|e| e.to_string())?
    } else {
        let engine = serving_engine(path, &config, throttle, offload)?;
        PrismServer::start(engine, serve_config.clone()).map_err(|e| e.to_string())?
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "serving {} from {path}: {} workers, batches <= {} requests / {} tokens, wait {} us",
        config.name,
        serve_config.workers,
        serve_config.max_batch_requests,
        serve_config.max_batch_tokens,
        serve_config.max_batch_wait.as_micros()
    );
    if shards > 1 {
        let _ = writeln!(
            out,
            "sharded: candidates scatter-gathered across {shards} resident engine shards"
        );
        let _ = writeln!(
            out,
            "resilience: {} replica(s) per candidate, hedge {}, on-partial {:?}",
            serve_config.replicas,
            match serve_config.hedge {
                Some(h) => format!("{} us", h.as_micros()),
                None => "off".into(),
            },
            spec.on_partial
        );
    }
    if serve_config.tenant_max_inflight > 0 {
        let _ = writeln!(
            out,
            "tenant quota: <= {} in-flight requests per session",
            serve_config.tenant_max_inflight
        );
    }
    let _ = writeln!(
        out,
        "load: {} requests x {} candidates (top-{}), {} clients, {} sessions, corpus repeat {}",
        spec.requests, spec.candidates, spec.k, spec.clients, spec.sessions, spec.corpus_repeat
    );
    if spec.semcache != SemCacheMode::Off {
        let _ = writeln!(
            out,
            "semantic cache: mode {:?}, {} KiB budget, {:.0}% cross-session duplicate stream",
            spec.semcache,
            serve_config.semcache_capacity_bytes >> 10,
            spec.dup_fraction * 100.0
        );
    }

    match p.flag("listen") {
        // Wire mode: bind the TCP front-end and drive the closed loop
        // through out-of-process wire clients on the loopback address.
        Some(listen) => {
            let server = Arc::new(server);
            let wire = WireServer::start(Arc::clone(&server), listen).map_err(|e| e.to_string())?;
            let addr = wire.local_addr().to_string();
            let _ = writeln!(
                out,
                "wire: listening on {addr}, driving load through {} wire clients",
                spec.clients.max(1).min(spec.requests.max(1))
            );
            let started = Instant::now();
            let result = run_wire_loop(&addr, &config, &spec);
            let elapsed_s = started.elapsed().as_secs_f64();
            let snapshot = server.stats().snapshot();
            wire.shutdown();
            let (latencies, errors, rtt) = result?;
            write_wire_summary(&mut out, &latencies, errors, rtt, elapsed_s);
            let _ = writeln!(
                out,
                "server: {} batches (mean {:.2} requests), {} backpressure, {} quota rejections",
                snapshot.batches,
                snapshot.batch_size.mean,
                snapshot.rejected,
                snapshot.quota_rejected
            );
            write_resilience_summary(&mut out, &snapshot);
        }
        None => {
            let report = run_closed_loop(&server, &spec);
            server.shutdown();
            write_load_report(&mut out, &report);
        }
    }
    Ok(out)
}

fn connect(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let addr = p
        .positional
        .first()
        .ok_or("connect needs a server address (host:port)")?;
    let name = p.flag("model").ok_or("connect needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let spec = load_spec_from(&p)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "connect {addr}: {} requests x {} candidates (top-{}), {} clients",
        spec.requests, spec.candidates, spec.k, spec.clients
    );
    let started = Instant::now();
    let (latencies, errors, rtt) = run_wire_loop(addr, &config, &spec)?;
    write_wire_summary(
        &mut out,
        &latencies,
        errors,
        rtt,
        started.elapsed().as_secs_f64(),
    );
    Ok(out)
}

fn bench_serve(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let path = p
        .positional
        .first()
        .ok_or("bench-serve needs a container path")?;
    let name = p.flag("model").ok_or("bench-serve needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    // Default to 8 closed-loop clients (enough concurrency to fill
    // batches) while still honouring an explicit --clients.
    let mut spec = load_spec_from(&p)?;
    if p.flag("clients").is_none() {
        spec.clients = 8;
    }
    // `--high-frac` / `--deadline-ms` parameterize only the mixed-
    // priority scenario below; the serial-vs-batched headline must stay
    // a uniform, deadline-free load or a tight deadline would shed most
    // of the slow serial reference and inflate the batching gain.
    spec.high_fraction = 0.0;
    spec.deadline_us = None;
    spec.high_deadline_us = None;
    let batch: usize = p.flag_parse("batch", 8)?;
    let workers: usize = p.flag_parse("workers", 1)?;
    // Weight streaming runs against an emulated device SSD by default —
    // that is the regime cross-request batching amortizes; `--throttle 0`
    // measures native disk speed instead.
    let throttle: u64 = p.flag_parse("throttle", 16_000_000)?;
    let offload = resolve_switch(&p, "offload")?;

    // Reference: one worker, no coalescing, no cache.
    let serial_server = PrismServer::start(
        serving_engine(path, &config, throttle, offload)?,
        ServeConfig::serial(),
    )
    .map_err(|e| e.to_string())?;
    let serial = run_closed_loop(&serial_server, &spec);
    serial_server.shutdown();

    // Batched: same worker count budget, coalescing + session cache on.
    let batched_config = ServeConfig {
        workers,
        max_batch_requests: batch,
        ..Default::default()
    };
    let batched_server = PrismServer::start(
        serving_engine(path, &config, throttle, offload)?,
        batched_config.clone(),
    )
    .map_err(|e| e.to_string())?;
    let batched = run_closed_loop(&batched_server, &spec);
    batched_server.shutdown();

    let gain = if serial.throughput_rps > 0.0 {
        batched.throughput_rps / serial.throughput_rps
    } else {
        0.0
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-serve {} ({} requests x {} candidates, top-{}, {} clients, throttle {})",
        config.name,
        spec.requests,
        spec.candidates,
        spec.k,
        spec.clients,
        if throttle > 0 {
            format!("{:.0} MB/s", throttle as f64 / 1e6)
        } else {
            "native".into()
        }
    );
    let _ = writeln!(out, "--- serial reference (1 worker, no batching) ---");
    write_load_report(&mut out, &serial);
    let _ = writeln!(
        out,
        "--- batched ({} workers, <= {} requests/batch) ---",
        batched_config.workers, batched_config.max_batch_requests
    );
    write_load_report(&mut out, &batched);
    let _ = writeln!(out, "batching throughput gain: {gain:.2}x");

    // ---- Mixed-priority scenario: FIFO vs priority-then-EDF ----
    // `--high-frac 0` skips it; by default 10% of the stream runs High
    // with a generous deadline, and the same workload is measured under
    // both schedulers at a small batch cap (so the queue stays deep
    // enough for admission order to matter).
    let high_frac: f64 = p.flag_parse("high-frac", 0.1)?;
    if high_frac > 0.0 {
        let mixed_spec = LoadSpec {
            high_fraction: high_frac,
            high_deadline_us: Some(p.flag_parse("deadline-ms", 2_000_u64)? * 1_000),
            ..spec.clone()
        };
        let mixed_batch: usize = p.flag_parse("mixed-batch", 2)?;
        let mut results = Vec::new();
        for (label, priority_scheduling) in [("fifo", false), ("priority", true)] {
            let serve_cfg = ServeConfig {
                workers,
                max_batch_requests: mixed_batch,
                session_cache_capacity: 0,
                priority_scheduling,
                // Throttled queues drain slowly; a starvation bound above
                // the drain time keeps the comparison about priority, not
                // the anti-starvation fallback.
                starvation_age: std::time::Duration::from_millis(
                    p.flag_parse("starvation-ms", 2_000_u64)?,
                ),
                ..Default::default()
            };
            let server =
                PrismServer::start(serving_engine(path, &config, throttle, offload)?, serve_cfg)
                    .map_err(|e| e.to_string())?;
            let report = run_closed_loop(&server, &mixed_spec);
            server.shutdown();
            let _ = writeln!(
                out,
                "--- mixed priority, {label} scheduler ({} workers, <= {mixed_batch} requests/batch) ---",
                workers
            );
            write_load_report(&mut out, &report);
            results.push(report);
        }
        let (fifo, priority) = (&results[0], &results[1]);
        if let (Some(f), Some(p)) = (fifo.class("high"), priority.class("high")) {
            let improvement = if p.p99_us > 0 {
                f.p99_us as f64 / p.p99_us as f64
            } else {
                0.0
            };
            let throughput_ratio = if fifo.throughput_rps > 0.0 {
                priority.throughput_rps / fifo.throughput_rps
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "high-priority p99 improvement: {improvement:.2}x (throughput ratio {throughput_ratio:.2})"
            );
        }
    }
    Ok(out)
}

fn write_sim_report(out: &mut String, report: &SimReport) {
    let _ = writeln!(
        out,
        "completed {} of {} requests in {:.3} virtual s -> {:.1} req/s ({} errors, {} backpressure retries)",
        report.completed,
        report.requests,
        report.virtual_elapsed_s,
        report.throughput_rps,
        report.errors,
        report.backpressure_retries
    );
    let _ = writeln!(
        out,
        "latency us: p50 {}  p95 {}  p99 {}  max {}  mean {:.0}",
        report.p50_us, report.p95_us, report.p99_us, report.max_us, report.mean_us
    );
    let s = &report.stats;
    let _ = writeln!(
        out,
        "queue depth peak {}; {} batches (mean {:.2} requests / {:.0} tokens)",
        s.queue_depth_peak, s.batches, s.batch_size.mean, s.batch_tokens.mean
    );
    let _ = writeln!(
        out,
        "session cache: {} selection hits, {} misses (hit rate {:.1}%)",
        s.cache_selection_hits,
        s.cache_misses,
        s.cache_hit_rate * 100.0
    );
    if s.failovers > 0 {
        let _ = writeln!(
            out,
            "resilience: {} failovers absorbed by replication",
            s.failovers
        );
    }
    if s.cancelled + s.deadline_rejected + s.deadline_missed + s.priority_inversions + s.rejected
        > 0
    {
        let _ = writeln!(
            out,
            "lifecycle: {} rejected, {} cancelled, {} deadline-rejected, {} deadline-missed, {} priority inversions",
            s.rejected, s.cancelled, s.deadline_rejected, s.deadline_missed, s.priority_inversions
        );
    }
    for c in &report.classes {
        let _ = writeln!(
            out,
            "  class {:<6} {:>4} ok / {:>3} err  p50 {:>7} us  p95 {:>7} us  p99 {:>7} us",
            c.label, c.completed, c.errors, c.p50_us, c.p95_us, c.p99_us
        );
    }
    let _ = writeln!(
        out,
        "{} events, digest {:016x}",
        report.events, report.digest
    );
}

fn simulate_serve(args: &[&str]) -> Result<String, String> {
    let p = parse(args)?;
    let name = p
        .flag("model")
        .ok_or("simulate-serve needs --model <name>")?;
    let scale = p.flag("scale").unwrap_or("mini");
    let config = resolve_config(name, scale)?;
    let device = resolve_device(p.flag("device").unwrap_or("m2"))?;
    let serve_config = serve_config_from(&p)?;

    // Service times: the device's analytic batch-cost model unless a
    // calibrated affine model is pinned on the command line (the shape
    // `repro sim-validate` fits from measured runs).
    let calibrated = ["fixed-us", "per-request-us", "per-token-us"]
        .iter()
        .any(|f| p.flag(f).is_some());
    let sim_shards: usize = p.flag_parse("shards", 1)?;
    let service = if calibrated {
        if sim_shards > 1 {
            return Err(
                "--shards prices through the analytic model; drop the calibrated flags".into(),
            );
        }
        ServiceModel::calibrated(Calibration {
            batch_fixed_us: p.flag_parse("fixed-us", 0.0_f64)?,
            per_request_us: p.flag_parse("per-request-us", 0.0_f64)?,
            per_token_us: p.flag_parse("per-token-us", 0.0_f64)?,
        })
    } else if sim_shards > 1 {
        let worker = ServeBatchCost::new(config.clone(), device.clone());
        ServiceModel::sharded(ScatterGatherCost {
            parallel_shards: resolve_switch(&p, "parallel-shards")?,
            ..ScatterGatherCost::new(worker, sim_shards)
        })
    } else {
        ServiceModel::analytic(ServeBatchCost::new(config.clone(), device.clone()))
    };

    // Optional shard-fault model: each simulated batch draws a fault
    // with this probability; the configured replication level decides
    // whether it costs latency (failover replay) or requests (errors).
    let fault_per_mille: u32 = p.flag_parse("fault-per-mille", 0_u32)?;
    let faults = (fault_per_mille > 0).then(|| SimFaults {
        seed: 0xFA17 ^ fault_per_mille as u64,
        per_mille: fault_per_mille,
        shards: sim_shards.max(1),
        replicas: serve_config.replicas,
    });

    let mut out = String::new();
    if sim_shards > 1 {
        let _ = writeln!(
            out,
            "service model: scatter-gather over {sim_shards} shards ({})",
            if resolve_switch(&p, "parallel-shards")? {
                "one device per shard"
            } else {
                "colocated"
            }
        );
    }
    if let Some(f) = faults {
        let _ = writeln!(
            out,
            "fault model: {}/1000 batches hit a shard fault, {} replica(s) to absorb them",
            f.per_mille, f.replicas
        );
    }
    if resolve_switch(&p, "tune")? {
        let outcome = tune_for_device(&config, &device, &serve_config);
        let winner = &outcome.points[outcome.best];
        let tuned = outcome.best_config(&serve_config);
        let _ = writeln!(
            out,
            "tuned {} on {} over {} grid points:",
            config.name,
            device.name,
            outcome.points.len()
        );
        let _ = writeln!(
            out,
            "best: batch <= {} requests, wait {} us, starvation {} us, cache {} sessions",
            winner.max_batch_requests,
            winner.max_batch_wait_us,
            winner.starvation_age_us,
            winner.session_cache_capacity
        );
        let _ = writeln!(
            out,
            "simulated: {:.1} req/s, p99 {} us (base point: {:.1} req/s, p99 {} us)",
            winner.throughput_rps,
            winner.p99_us,
            outcome.points[0].throughput_rps,
            outcome.points[0].p99_us
        );
        tuned.validate().map_err(|e| e.to_string())?;
        write_sim_report(&mut out, &outcome.report);
        return Ok(out);
    }

    let mode = p.flag("mode").unwrap_or("trace");
    let report = match mode {
        "trace" => {
            let rps: f64 = p.flag_parse("rps", 100.0)?;
            let events: u64 = p.flag_parse("events", 100_000)?;
            let seed: u64 = p.flag_parse("seed", 42)?;
            let profile_name = p.flag("profile").unwrap_or("diurnal");
            let profile = trace_profile_by_name(profile_name, rps).ok_or_else(|| {
                format!("unknown profile `{profile_name}` (steady|diurnal|burst)")
            })?;
            let generator = TraceGenerator::new(profile, seed);
            let _ = writeln!(
                out,
                "simulate-serve {}: {} trace, {} events at ~{} req/s, {} workers, batches <= {} requests",
                config.name,
                profile_name,
                events,
                rps,
                serve_config.workers,
                serve_config.max_batch_requests
            );
            Simulation::run_trace_with(
                &serve_config,
                service,
                &generator,
                events,
                profile_name,
                faults,
            )
        }
        "closed" => {
            let spec = load_spec_from(&p)?;
            let _ = writeln!(
                out,
                "simulate-serve {}: closed loop, {} requests x {} candidates (top-{}), {} clients",
                config.name, spec.requests, spec.candidates, spec.k, spec.clients
            );
            simulate_closed_loop_with(&config, &spec, &serve_config, service, "closed", faults)
        }
        other => return Err(format!("unknown mode `{other}` (trace|closed)")),
    };
    write_sim_report(&mut out, &report);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("prsm-cli-{tag}-{}.prsm", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn run_strs(args: &[&str]) -> Result<String, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&owned)
    }

    #[test]
    fn help_and_unknown() {
        assert!(run_strs(&[]).unwrap().contains("usage"));
        assert!(run_strs(&["help"]).unwrap().contains("usage"));
        assert!(run_strs(&["frobnicate"]).is_err());
    }

    #[test]
    fn gen_inspect_quantize_rerank_round_trip() {
        let dense = tmp("dense");
        let out = run_strs(&[
            "gen",
            &dense,
            "--model",
            "qwen3-0.6b",
            "--scale",
            "test",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(out.contains("wrote"), "{out}");

        let out = run_strs(&["inspect", &dense]).unwrap();
        assert!(out.contains("embedding"));
        assert!(out.contains("layer.0"));
        assert!(out.contains("total payload"));

        let quant = tmp("quant");
        let out = run_strs(&[
            "quantize",
            &dense,
            &quant,
            "--model",
            "qwen3-0.6b",
            "--scale",
            "test",
        ])
        .unwrap();
        assert!(out.contains("quantized"), "{out}");
        let shrink: f64 = out
            .split('(')
            .nth(1)
            .and_then(|s| s.strip_suffix("x)\n"))
            .and_then(|s| s.parse().ok())
            .expect("shrink factor in output");
        assert!(
            shrink > 1.5,
            "quantized container should be much smaller: {shrink}"
        );

        let out = run_strs(&[
            "rerank",
            &dense,
            "--model",
            "qwen3-0.6b",
            "--scale",
            "test",
            "--k",
            "3",
            "--candidates",
            "10",
        ])
        .unwrap();
        assert!(out.contains("top-3 of 10"), "{out}");
        assert!(out.contains("executed"));

        std::fs::remove_file(&dense).unwrap();
        std::fs::remove_file(&quant).unwrap();
    }

    #[test]
    fn simulate_all_systems() {
        for system in ["hf", "offload", "quant", "prism"] {
            let out = run_strs(&[
                "simulate", "--model", "bge-m3", "--device", "m2", "--system", system,
            ])
            .unwrap();
            assert!(out.contains("latency"), "{system}: {out}");
            assert!(out.contains("peak memory"));
        }
        // OOM flagged for 8B on the laptop.
        let out = run_strs(&["simulate", "--model", "qwen3-8b", "--system", "hf"]).unwrap();
        assert!(out.contains("oom: true"));
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(
            run_strs(&["gen", "/tmp/x.prsm"]).is_err(),
            "missing --model"
        );
        assert!(run_strs(&["simulate", "--model", "nope"]).is_err());
        assert!(run_strs(&["simulate", "--model", "bge-m3", "--device", "np"]).is_err());
        assert!(run_strs(&["simulate", "--model", "bge-m3", "--candidates", "abc"]).is_err());
        assert!(run_strs(&["gen"]).is_err(), "missing path");
        assert!(run_strs(&["inspect", "/nonexistent/file.prsm"]).is_err());
        assert!(
            run_strs(&["gen", "/tmp/x.prsm", "--model"]).is_err(),
            "flag without value"
        );
    }

    #[test]
    fn serve_and_bench_serve_round_trip() {
        let dense = tmp("serve");
        run_strs(&[
            "gen", &dense, "--model", "bge-m3", "--scale", "test", "--seed", "11",
        ])
        .unwrap();

        let out = run_strs(&[
            "serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--requests",
            "12",
            "--clients",
            "3",
            "--candidates",
            "8",
            "--k",
            "3",
            "--repeat",
            "2",
        ])
        .unwrap();
        assert!(out.contains("completed 12 requests"), "{out}");
        assert!(out.contains("latency us: p50"), "{out}");
        assert!(out.contains("session cache:"), "{out}");

        let out = run_strs(&[
            "bench-serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--requests",
            "16",
            "--candidates",
            "8",
            "--k",
            "3",
        ])
        .unwrap();
        assert!(out.contains("serial reference"), "{out}");
        assert!(out.contains("batching throughput gain:"), "{out}");
        // The default mixed-priority scenario compares both schedulers.
        assert!(out.contains("mixed priority, fifo scheduler"), "{out}");
        assert!(out.contains("mixed priority, priority scheduler"), "{out}");
        assert!(out.contains("high-priority p99 improvement:"), "{out}");
        assert!(out.contains("class high"), "{out}");

        assert!(
            run_strs(&["serve", "--model", "bge-m3"]).is_err(),
            "missing path"
        );
        assert!(run_strs(&["bench-serve", &dense]).is_err(), "missing model");
        std::fs::remove_file(&dense).unwrap();
    }

    #[test]
    fn serve_with_priority_and_deadline_flags() {
        let dense = tmp("serve-prio");
        run_strs(&[
            "gen", &dense, "--model", "bge-m3", "--scale", "test", "--seed", "5",
        ])
        .unwrap();
        let out = run_strs(&[
            "serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--requests",
            "10",
            "--clients",
            "2",
            "--candidates",
            "6",
            "--k",
            "2",
            "--priority",
            "bulk",
            "--deadline-ms",
            "30000",
            "--high-frac",
            "0.2",
        ])
        .unwrap();
        assert!(out.contains("completed 10 requests"), "{out}");
        assert!(out.contains("class high"), "{out}");
        assert!(out.contains("class bulk"), "{out}");
        assert!(
            run_strs(&[
                "serve",
                &dense,
                "--model",
                "bge-m3",
                "--scale",
                "test",
                "--priority",
                "urgent",
            ])
            .is_err(),
            "unknown priority must be rejected"
        );
        std::fs::remove_file(&dense).unwrap();
    }

    #[test]
    fn serve_with_semcache_flags() {
        let dense = tmp("serve-semcache");
        run_strs(&[
            "gen", &dense, "--model", "bge-m3", "--scale", "test", "--seed", "17",
        ])
        .unwrap();
        // High-overlap aggressive run with the session cache off: every
        // duplicate must be answered by the semantic tier, so the
        // telemetry line has to report hits.
        let out = run_strs(&[
            "serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--requests",
            "16",
            "--clients",
            "2",
            "--candidates",
            "6",
            "--k",
            "2",
            "--cache-sessions",
            "0",
            "--semcache",
            "aggressive",
            "--dup-frac",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("semantic cache: mode Aggressive"), "{out}");
        assert!(out.contains("50% cross-session duplicate stream"), "{out}");
        assert!(out.contains("hits,"), "{out}");
        assert!(out.contains("fallbacks,"), "{out}");

        assert!(
            run_strs(&[
                "serve",
                &dense,
                "--model",
                "bge-m3",
                "--scale",
                "test",
                "--semcache",
                "maybe",
            ])
            .is_err(),
            "unknown semcache mode must be rejected"
        );
        std::fs::remove_file(&dense).unwrap();
    }

    #[test]
    fn serve_sharded_in_process_and_over_the_wire() {
        let dense = tmp("serve-shard");
        run_strs(&[
            "gen", &dense, "--model", "bge-m3", "--scale", "test", "--seed", "13",
        ])
        .unwrap();

        // In-process sharded closed loop.
        let out = run_strs(&[
            "serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--shards",
            "2",
            "--requests",
            "8",
            "--clients",
            "2",
            "--candidates",
            "8",
            "--k",
            "3",
        ])
        .unwrap();
        assert!(out.contains("across 2 resident engine shards"), "{out}");
        assert!(out.contains("completed 8 requests"), "{out}");

        // Wire mode: bind the TCP front-end and drive out-of-process
        // clients through it, with a per-tenant quota configured.
        let out = run_strs(&[
            "serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--shards",
            "2",
            "--tenant-quota",
            "4",
            "--listen",
            "127.0.0.1:0",
            "--requests",
            "8",
            "--clients",
            "2",
            "--candidates",
            "8",
            "--k",
            "3",
        ])
        .unwrap();
        assert!(out.contains("wire: listening on 127.0.0.1:"), "{out}");
        assert!(out.contains("ping RTT"), "{out}");
        assert!(out.contains("tenant quota: <= 4"), "{out}");
        assert!(out.contains("completed 8 requests"), "{out}");
        assert!(out.contains("quota rejections"), "{out}");

        // Flag conflicts are typed errors, not silent misconfiguration.
        assert!(
            run_strs(&["serve", &dense, "--model", "bge-m3", "--scale", "test", "--shards", "0",])
                .is_err(),
            "zero shards must be rejected"
        );
        assert!(
            run_strs(&[
                "serve",
                &dense,
                "--model",
                "bge-m3",
                "--scale",
                "test",
                "--shards",
                "2",
                "--throttle",
                "1000",
            ])
            .is_err(),
            "sharded engines are resident; throttle must be rejected"
        );
        std::fs::remove_file(&dense).unwrap();
    }

    #[test]
    fn serve_with_resilience_flags() {
        let dense = tmp("serve-resil");
        run_strs(&[
            "gen", &dense, "--model", "bge-m3", "--scale", "test", "--seed", "19",
        ])
        .unwrap();

        // Replicated, hedged, degradable sharded serving: the config
        // echoes the knobs and the summary surfaces the resilience
        // counters (zero under a fault-free run).
        let out = run_strs(&[
            "serve",
            &dense,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--shards",
            "3",
            "--replicas",
            "2",
            "--hedge-ms",
            "5",
            "--on-partial",
            "partial",
            "--requests",
            "8",
            "--clients",
            "2",
            "--candidates",
            "8",
            "--k",
            "3",
        ])
        .unwrap();
        assert!(
            out.contains(
                "resilience: 2 replica(s) per candidate, hedge 5000 us, on-partial Partial"
            ),
            "{out}"
        );
        assert!(out.contains("failovers"), "{out}");
        assert!(out.contains("completed 8 requests"), "{out}");

        // Bad knob values are typed errors.
        for bad in [
            vec![
                "serve",
                &dense,
                "--model",
                "bge-m3",
                "--scale",
                "test",
                "--replicas",
                "0",
            ],
            vec![
                "serve",
                &dense,
                "--model",
                "bge-m3",
                "--scale",
                "test",
                "--on-partial",
                "maybe",
            ],
        ] {
            assert!(run_strs(&bad).is_err(), "{bad:?} must be rejected");
        }
        std::fs::remove_file(&dense).unwrap();
    }

    #[test]
    fn connect_drives_a_listening_server() {
        let dense = tmp("connect");
        run_strs(&[
            "gen", &dense, "--model", "bge-m3", "--scale", "test", "--seed", "17",
        ])
        .unwrap();
        let config = resolve_config("bge-m3", "test").unwrap();
        let engine = serving_engine(&dense, &config, 0, false).unwrap();
        let server =
            std::sync::Arc::new(PrismServer::start(engine, ServeConfig::default()).unwrap());
        let wire =
            prism_wire::WireServer::start(std::sync::Arc::clone(&server), "127.0.0.1:0").unwrap();
        let addr = wire.local_addr().to_string();

        let out = run_strs(&[
            "connect",
            &addr,
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--requests",
            "6",
            "--clients",
            "2",
            "--candidates",
            "6",
            "--k",
            "2",
        ])
        .unwrap();
        assert!(out.contains(&format!("connect {addr}")), "{out}");
        assert!(out.contains("ping RTT"), "{out}");
        assert!(out.contains("completed 6 requests"), "{out}");
        wire.shutdown();

        // Nothing listening: the connect error is surfaced, not a hang.
        assert!(run_strs(&[
            "connect",
            "127.0.0.1:1",
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--requests",
            "1",
        ])
        .is_err());
        assert!(run_strs(&["connect"]).is_err(), "missing address");
        std::fs::remove_file(&dense).unwrap();
    }

    #[test]
    fn simulate_serve_sharded_service_model() {
        let base = [
            "simulate-serve",
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--profile",
            "steady",
            "--rps",
            "200",
            "--events",
            "500",
        ];
        let colocated = run_strs(
            &base
                .iter()
                .copied()
                .chain(["--shards", "3"])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(
            colocated.contains("scatter-gather over 3 shards (colocated)"),
            "{colocated}"
        );
        let parallel = run_strs(
            &base
                .iter()
                .copied()
                .chain(["--shards", "3", "--parallel-shards", "on"])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(parallel.contains("(one device per shard)"), "{parallel}");
        // Calibrated coefficients and the analytic sharded model are
        // mutually exclusive.
        assert!(run_strs(
            &base
                .iter()
                .copied()
                .chain(["--shards", "3", "--fixed-us", "1000"])
                .collect::<Vec<_>>(),
        )
        .is_err());
    }

    #[test]
    fn simulate_serve_fault_model_prices_replication() {
        let base = [
            "simulate-serve",
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--profile",
            "steady",
            "--rps",
            "200",
            "--events",
            "500",
            "--shards",
            "3",
            "--fault-per-mille",
            "300",
        ];
        // R=2: faults are absorbed as failover replays, zero of them
        // become request errors.
        let covered = run_strs(
            &base
                .iter()
                .copied()
                .chain(["--replicas", "2"])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(
            covered.contains("fault model: 300/1000 batches hit a shard fault, 2 replica(s)"),
            "{covered}"
        );
        assert!(
            covered.contains("failovers absorbed by replication"),
            "{covered}"
        );
        assert!(covered.contains("(0 errors"), "{covered}");

        // Default R=1: the same schedule surfaces as request errors.
        let exposed = run_strs(&base).unwrap();
        assert!(!exposed.contains("(0 errors"), "{exposed}");
        assert!(
            !exposed.contains("failovers absorbed"),
            "R=1 has nothing to fail over to: {exposed}"
        );
    }

    #[test]
    fn simulate_serve_trace_mode_is_deterministic() {
        let args = [
            "simulate-serve",
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--profile",
            "steady",
            "--rps",
            "300",
            "--events",
            "2000",
            "--device",
            "m2",
        ];
        let a = run_strs(&args).unwrap();
        assert!(a.contains("steady trace, 2000 events"), "{a}");
        assert!(a.contains("virtual s"), "{a}");
        assert!(a.contains("digest"), "{a}");
        // Bit-identical rerun: the whole report is a pure function of
        // the inputs (no wall clock anywhere).
        let b = run_strs(&args).unwrap();
        assert_eq!(a, b);
        // A different seed changes the event log.
        let c = run_strs(
            &args
                .iter()
                .copied()
                .chain(["--seed", "7"])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn simulate_serve_closed_mode_and_calibrated_model() {
        let out = run_strs(&[
            "simulate-serve",
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--mode",
            "closed",
            "--requests",
            "24",
            "--clients",
            "4",
            "--candidates",
            "8",
            "--k",
            "3",
            "--fixed-us",
            "4000",
            "--per-token-us",
            "2",
        ])
        .unwrap();
        assert!(out.contains("closed loop, 24 requests"), "{out}");
        assert!(out.contains("completed 24 of 24"), "{out}");
        assert!(out.contains("latency us: p50"), "{out}");

        assert!(
            run_strs(&["simulate-serve", "--model", "bge-m3", "--mode", "open"]).is_err(),
            "unknown mode must be rejected"
        );
        assert!(
            run_strs(&["simulate-serve", "--model", "bge-m3", "--profile", "weekly"]).is_err(),
            "unknown profile must be rejected"
        );
        assert!(run_strs(&["simulate-serve"]).is_err(), "missing model");
    }

    #[test]
    fn simulate_serve_tune_reports_winner() {
        let out = run_strs(&[
            "simulate-serve",
            "--model",
            "bge-m3",
            "--scale",
            "test",
            "--device",
            "m2",
            "--tune",
            "on",
        ])
        .unwrap();
        assert!(out.contains("grid points"), "{out}");
        assert!(out.contains("best: batch <="), "{out}");
        assert!(out.contains("base point:"), "{out}");
    }

    #[test]
    fn resolve_config_names_and_scales() {
        for name in [
            "qwen3-0.6b",
            "qwen3-4b",
            "qwen3-8b",
            "bge-minicpm",
            "bge-m3",
        ] {
            let paper = resolve_config(name, "paper").unwrap();
            let mini = resolve_config(name, "mini").unwrap();
            assert_eq!(paper.num_layers, mini.num_layers);
            assert!(mini.hidden_dim < paper.hidden_dim);
        }
        assert!(resolve_config("gpt-5", "paper").is_err());
        assert!(resolve_config("bge-m3", "huge").is_err());
    }
}
