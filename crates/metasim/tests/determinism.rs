//! Determinism guarantees of the serving metasim.
//!
//! The simulator's contract is bit-identical replay: the same
//! `(workload seed, ServeConfig, service model)` must produce the same
//! event log (witnessed by the FNV digest) and the same
//! `ServeStats`-shaped report on every run — including runs executed
//! concurrently on different threads, since nothing in the simulator
//! may depend on wall clock, thread identity or hash iteration order.
//! Property tests sweep the configuration space; a scale test proves a
//! simulated day of million-user traffic stays cheap.

use std::time::Duration;

use prism_metasim::{simulate_closed_loop, Calibration, ServiceModel, SimReport, Simulation};
use prism_model::{ModelArch, ModelConfig};
use prism_serve::{LoadSpec, ServeConfig};
use prism_workload::{trace_profile_by_name, TraceGenerator};
use proptest::prelude::*;

fn service(fixed_us: u64, per_token_tenth_us: u64) -> ServiceModel {
    ServiceModel::calibrated(Calibration {
        batch_fixed_us: fixed_us as f64,
        per_request_us: 50.0,
        per_token_us: per_token_tenth_us as f64 / 10.0,
    })
}

fn config(
    workers: usize,
    queue: usize,
    batch: usize,
    wait_us: u64,
    cache: usize,
    priority_mode: bool,
) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: queue,
        max_batch_requests: batch,
        max_batch_tokens: 4096,
        max_batch_wait: Duration::from_micros(wait_us),
        session_cache_capacity: cache,
        starvation_age: Duration::from_micros(wait_us.max(1) * 20),
        priority_scheduling: priority_mode,
        tenant_max_inflight: 0,
        ..ServeConfig::default()
    }
}

fn report_bits(r: &SimReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical (seed, profile, ServeConfig, service model) must yield
    /// a bit-identical event digest and stats report across independent
    /// runs — including runs on different threads.
    #[test]
    fn trace_simulation_is_bit_identical(
        seed in 0_u64..1_000_000,
        profile_idx in 0_usize..3,
        base_rps in 50_u64..5_000,
        workers in 1_usize..5,
        queue in 4_usize..128,
        batch in 1_usize..12,
        wait_us in 100_u64..5_000,
        cache in 0_usize..64,
        priority_mode in 0_u8..2,
        fixed_us in 200_u64..5_000,
        per_token in 1_u64..40,
    ) {
        let name = ["steady", "diurnal", "burst"][profile_idx];
        let profile = trace_profile_by_name(name, base_rps as f64).unwrap();
        let cfg = config(workers, queue, batch, wait_us, cache, priority_mode == 1);
        let svc = service(fixed_us, per_token);
        let n = 600_u64;

        let run = {
            let profile = profile.clone();
            let cfg = cfg.clone();
            let svc = svc.clone();
            move || {
                let generator = TraceGenerator::new(profile.clone(), seed);
                Simulation::run_trace(&cfg, svc.clone(), &generator, n, "prop")
            }
        };
        let baseline = run();
        // Sequential re-run.
        let again = run();
        prop_assert_eq!(baseline.digest, again.digest);
        prop_assert_eq!(report_bits(&baseline), report_bits(&again));
        // Concurrent runs on worker threads: determinism must not
        // depend on which thread executes the simulation.
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let run = run.clone();
                std::thread::spawn(run)
            })
            .collect();
        for t in threads {
            let theirs = t.join().expect("sim thread");
            prop_assert_eq!(baseline.digest, theirs.digest);
            prop_assert_eq!(report_bits(&baseline), report_bits(&theirs));
        }
        // Conservation: every offered request is accounted for exactly
        // once across completions and errors.
        prop_assert_eq!(baseline.completed + baseline.errors, n);
    }

    /// Closed-loop replays are equally deterministic, and a different
    /// seed actually changes the event log (the digest is not a
    /// constant).
    #[test]
    fn closed_loop_simulation_is_bit_identical(
        seed in 0_u64..1_000_000,
        requests in 8_usize..96,
        clients in 1_usize..12,
        sessions in 1_usize..8,
        repeat in 1_usize..5,
        high_tenths in 0_u32..4,
        fixed_us in 200_u64..5_000,
    ) {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let spec = LoadSpec {
            requests,
            clients,
            sessions,
            corpus_repeat: repeat,
            seed,
            high_fraction: high_tenths as f64 / 10.0,
            high_deadline_us: (high_tenths > 0).then_some(30_000_000),
            ..Default::default()
        };
        let cfg = ServeConfig::default();
        let svc = service(fixed_us, 10);
        let a = simulate_closed_loop(&model, &spec, &cfg, svc.clone(), "prop");
        let b = simulate_closed_loop(&model, &spec, &cfg, svc.clone(), "prop");
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(report_bits(&a), report_bits(&b));
        prop_assert_eq!(a.completed + a.errors, requests as u64);
        // The closed loop retries backpressure, so nothing is dropped.
        prop_assert_eq!(a.stats.rejected, a.backpressure_retries);

        let other = LoadSpec { seed: seed ^ 0x9E37_79B9, ..spec };
        let c = simulate_closed_loop(&model, &other, &cfg, svc, "prop");
        // Different corpora change token counts, hence the event log.
        // (Identity could coincide only if every token count matched.)
        if report_bits(&a) != report_bits(&c) {
            prop_assert!(a.digest != c.digest, "reports differ but digests collide");
        }
    }
}

/// A simulated day of ~100k requests completes quickly even unoptimized
/// and is bit-stable — the tier-1-sized cousin of the nightly
/// million-request soak below.
#[test]
fn simulated_burst_day_is_deterministic_at_scale() {
    let profile = trace_profile_by_name("burst", 2.0).unwrap();
    let generator = TraceGenerator::new(profile, 0xDEC0DE);
    let cfg = ServeConfig::default();
    let svc = service(2_000, 20);
    let n = 100_000_u64;
    let a = Simulation::run_trace(&cfg, svc.clone(), &generator, n, "day");
    let b = Simulation::run_trace(&cfg, svc, &generator, n, "day");
    assert_eq!(a.digest, b.digest);
    assert_eq!(report_bits(&a), report_bits(&b));
    assert_eq!(a.completed + a.errors, n);
    // 2 rps nominal over 100k arrivals is most of a simulated day.
    assert!(
        a.virtual_elapsed_s > 3_600.0,
        "virtual span too short: {}s",
        a.virtual_elapsed_s
    );
}

/// The acceptance bar from the issue: one simulated day of
/// million-user traffic runs in seconds (< 30s wall) and emits the
/// full `ServeStats`-shaped report. Nightly CI runs this with
/// `--ignored` in release mode alongside the long-stress soak.
#[test]
#[ignore = "million-request soak: run explicitly (nightly CI, release)"]
fn million_request_simulated_day_under_30s() {
    let profile = trace_profile_by_name("diurnal", 12.0).unwrap();
    let generator = TraceGenerator::new(profile, 0x1_000_000_u64);
    let cfg = ServeConfig::default();
    let svc = service(1_500, 15);
    let started = std::time::Instant::now();
    let report = Simulation::run_trace(&cfg, svc, &generator, 1_000_000, "soak");
    let wall = started.elapsed();
    assert_eq!(report.completed + report.errors, 1_000_000);
    assert!(
        report.virtual_elapsed_s > 20_000.0,
        "virtual span {}s is not day-scale",
        report.virtual_elapsed_s
    );
    assert!(
        wall < Duration::from_secs(30),
        "simulated day took {wall:?} (budget 30s)"
    );
    // Re-run and compare: scale must not cost determinism.
    let generator = TraceGenerator::new(
        trace_profile_by_name("diurnal", 12.0).unwrap(),
        0x1_000_000_u64,
    );
    let again = Simulation::run_trace(
        &ServeConfig::default(),
        service(1_500, 15),
        &generator,
        1_000_000,
        "soak",
    );
    assert_eq!(report.digest, again.digest);
}
