//! Service-time models for the simulated worker pool.
//!
//! The simulator charges one coalesced batch a deterministic number of
//! virtual microseconds. Two models exist:
//!
//! * [`ServiceModel::Analytic`] — the `prism-device` cost model
//!   ([`ServeBatchCost`]): per-layer compute at batch-level utilization,
//!   weight streaming overlapped behind compute, and the §4.3 spill-byte
//!   terms. Used by `prsm simulate-serve` and the auto-tuner, where no
//!   measurement exists.
//! * [`ServiceModel::Calibrated`] — an affine fit
//!   `fixed + per_request·n + per_token·T` whose coefficients come from
//!   timing the *real* engine on known batch shapes. Used by
//!   `repro sim-validate` so predicted throughput/p99 can be compared
//!   against measured numbers on the same host.

use prism_device::{ScatterGatherCost, ServeBatchCost};
use serde::Serialize;

/// Maps a batch shape to virtual service time.
#[derive(Debug, Clone)]
pub enum ServiceModel {
    /// Analytic device cost model (no measurement needed).
    Analytic(Box<ServeBatchCost>),
    /// Analytic scatter-gather model: the batch's candidates split
    /// across engine shards behind the forward map, with the
    /// coordinator's per-layer gate priced in (parallel or colocated
    /// deployment per [`ScatterGatherCost::parallel_shards`]).
    Sharded(Box<ScatterGatherCost>),
    /// Affine model fitted to measured engine timings.
    Calibrated(Calibration),
}

/// Coefficients of the calibrated affine service-time model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Calibration {
    /// Fixed cost per batch in microseconds (weight streaming, dispatch).
    pub batch_fixed_us: f64,
    /// Marginal cost per request in microseconds (planning, scoring,
    /// reply).
    pub per_request_us: f64,
    /// Marginal cost per packed token in microseconds.
    pub per_token_us: f64,
}

impl Calibration {
    /// Fits the fixed and per-token terms from two measured points
    /// `(requests, tokens, micros)` — typically a single-request batch
    /// and a full coalesced batch timed on the real engine. The
    /// per-request term is folded into the two fitted coefficients
    /// (identifiable only with a third independent shape, which the
    /// validation harness does not need).
    pub fn fit_two_points(a: (usize, u64, u64), b: (usize, u64, u64)) -> Calibration {
        let (small, large) = if a.1 <= b.1 { (a, b) } else { (b, a) };
        let dt = large.2 as f64 - small.2 as f64;
        let dtok = (large.1 as f64 - small.1 as f64).max(1.0);
        let per_token_us = (dt / dtok).max(0.0);
        let batch_fixed_us = (small.2 as f64 - per_token_us * small.1 as f64).max(0.0);
        Calibration {
            batch_fixed_us,
            per_request_us: 0.0,
            per_token_us,
        }
    }
}

impl ServiceModel {
    /// An analytic model from the device cost hooks.
    pub fn analytic(cost: ServeBatchCost) -> Self {
        ServiceModel::Analytic(Box::new(cost))
    }

    /// A calibrated affine model.
    pub fn calibrated(c: Calibration) -> Self {
        ServiceModel::Calibrated(c)
    }

    /// An analytic scatter-gather model over `shards` engine shards.
    pub fn sharded(cost: ScatterGatherCost) -> Self {
        ServiceModel::Sharded(Box::new(cost))
    }

    /// Virtual microseconds one batch of `requests` requests totalling
    /// `tokens` packed tokens occupies a worker. Always at least 1 for a
    /// non-empty batch so virtual time advances.
    pub fn batch_micros(&self, requests: usize, tokens: u64) -> u64 {
        if requests == 0 {
            return 0;
        }
        match self {
            ServiceModel::Analytic(cost) => cost.batch_micros(requests, tokens),
            ServiceModel::Sharded(cost) => cost.batch_micros(requests, tokens),
            ServiceModel::Calibrated(c) => {
                let us = c.batch_fixed_us
                    + c.per_request_us * requests as f64
                    + c.per_token_us * tokens as f64;
                (us.round() as u64).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_device::DeviceSpec;
    use prism_model::{ModelArch, ModelConfig};

    #[test]
    fn calibration_recovers_affine_points() {
        // t(1, 100) = 5_000, t(8, 800) = 12_000: slope 10 us/token,
        // fixed 4_000 us.
        let c = Calibration::fit_two_points((1, 100, 5_000), (8, 800, 12_000));
        assert!((c.per_token_us - 10.0).abs() < 1e-9);
        assert!((c.batch_fixed_us - 4_000.0).abs() < 1e-9);
        let m = ServiceModel::calibrated(c);
        assert_eq!(m.batch_micros(1, 100), 5_000);
        assert_eq!(m.batch_micros(8, 800), 12_000);
        assert_eq!(m.batch_micros(0, 0), 0);
        // Argument order must not matter.
        let swapped = Calibration::fit_two_points((8, 800, 12_000), (1, 100, 5_000));
        assert!((swapped.per_token_us - c.per_token_us).abs() < 1e-12);
    }

    #[test]
    fn degenerate_fit_stays_non_negative() {
        // A noisy pair where the big batch measured *faster* must not
        // produce negative coefficients.
        let c = Calibration::fit_two_points((1, 100, 5_000), (8, 800, 3_000));
        assert!(c.per_token_us >= 0.0 && c.batch_fixed_us >= 0.0);
    }

    #[test]
    fn analytic_model_delegates_to_device_cost() {
        let cost = ServeBatchCost::new(
            ModelConfig::test_config(ModelArch::DecoderOnly, 6),
            DeviceSpec::apple_m2(),
        );
        let m = ServiceModel::analytic(cost.clone());
        assert_eq!(m.batch_micros(2, 256), cost.batch_micros(2, 256));
        assert!(m.batch_micros(1, 64) >= 1);
    }

    #[test]
    fn sharded_model_prices_both_deployments() {
        let worker = ServeBatchCost::new(
            ModelConfig::test_config(ModelArch::DecoderOnly, 6),
            DeviceSpec::apple_m2(),
        );
        let single = ServiceModel::analytic(worker.clone()).batch_micros(8, 2048);
        // Colocated shards (the loopback deployment): pure overhead, so
        // the simulated batch is never cheaper than unsharded.
        let colocated = ServiceModel::sharded(ScatterGatherCost::new(worker.clone(), 3));
        assert!(colocated.batch_micros(8, 2048) >= single);
        // One device per shard: the forward term parallelizes.
        let parallel = ServiceModel::sharded(ScatterGatherCost {
            parallel_shards: true,
            ..ScatterGatherCost::new(worker, 3)
        });
        assert!(parallel.batch_micros(8, 2048) < single);
        assert_eq!(colocated.batch_micros(0, 0), 0);
    }

    #[test]
    fn analytic_model_sees_the_int8_compute_regime() {
        // The serving metasim prices int8-compute workers through the
        // same `ServeBatchCost` the autotuner sweeps, so flipping the
        // knob must shorten compute-bound batches.
        let dense = ServeBatchCost::new(
            ModelConfig::test_config(ModelArch::DecoderOnly, 6),
            DeviceSpec::apple_m2(),
        );
        let int8 = ServeBatchCost {
            int8_compute: true,
            ..dense.clone()
        };
        let dense_us = ServiceModel::analytic(dense).batch_micros(8, 4096);
        let int8_us = ServiceModel::analytic(int8).batch_micros(8, 4096);
        assert!(int8_us < dense_us, "int8 {int8_us} vs dense {dense_us}");
    }

    #[test]
    fn analytic_model_sees_the_semcache_regime() {
        // High-overlap traces replay most candidates from the semantic
        // result cache; the metasim prices that through the same
        // `ServeBatchCost` knob the serving stack exposes.
        let plain = ServeBatchCost::new(
            ModelConfig::test_config(ModelArch::DecoderOnly, 6),
            DeviceSpec::apple_m2(),
        );
        let probe = plain.device.ssd_latency / 20.0;
        let cached = ServeBatchCost {
            semcache: Some(prism_device::SemCacheCostParams {
                hit_fraction: 0.6,
                probe_overhead_s: probe,
            }),
            ..plain.clone()
        };
        let plain_us = ServiceModel::analytic(plain).batch_micros(8, 4096);
        let cached_us = ServiceModel::analytic(cached).batch_micros(8, 4096);
        assert!(
            cached_us < plain_us,
            "semcache {cached_us} vs plain {plain_us}"
        );
    }
}
