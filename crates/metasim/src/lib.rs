//! Serving metasim: deterministic discrete-event simulation of the full
//! PRISM serving stack, validated against measured benchmarks.
//!
//! A live serving experiment answers "what does this configuration do on
//! this machine" in minutes of wall clock. The metasim answers the same
//! question in milliseconds by replaying the *decision logic* of the
//! real stack at virtual time:
//!
//! * the actual [`prism_serve::BatchPlanner`] makes every scheduling
//!   decision (it is a pure function of queue snapshot + clock, so the
//!   simulator and the live server run the identical code);
//! * admission, backpressure shedding, priority inversions, deadline
//!   and cancellation outcomes mirror `SubmissionQueue` and
//!   `execute_batch` counter for counter, recorded into a real
//!   [`prism_serve::ServeStats`];
//! * a behavioural twin of the session cache reproduces selection and
//!   embedding hits;
//! * only *execution time* is modeled, by a [`ServiceModel`] — either
//!   the analytic `prism-device` cost model (including spill-byte
//!   terms) or an affine fit calibrated on the real engine.
//!
//! Workloads come from two sources: [`closed_loop`] reconstructs the
//! exact request streams of `prism_serve::run_closed_loop` (what
//! `repro perf` measures, enabling validation within tolerance), and
//! open-loop traces from [`prism_workload::TraceGenerator`] scale to a
//! simulated day of million-user traffic in seconds. [`autotune`]
//! sweeps `ServeConfig` knobs through the simulator to pick tuned
//! defaults per device.
//!
//! Everything is bit-deterministic: a [`SimReport`] carries an FNV-1a
//! digest of the processed event log, and identical inputs produce
//! identical reports — the property the determinism proptests pin down.

pub mod autotune;
pub mod closed_loop;
pub mod report;
pub mod service;
pub mod sim;

pub use autotune::{tune, tune_for_device, tuning_workload, SweepPoint, TuneOutcome};
pub use closed_loop::{client_streams, simulate_closed_loop, simulate_closed_loop_with};
pub use report::{exact_quantile, SimReport};
pub use service::{Calibration, ServiceModel};
pub use sim::{SimFaults, SimRequest, Simulation, BACKPRESSURE_RETRY_US};
