//! `ServeConfig` auto-tuning: sweep the scheduling knobs through the
//! simulator and pick the configuration with the best simulated
//! throughput (ties broken by tail latency).
//!
//! Because a simulated run costs microseconds instead of minutes, the
//! sweep can afford a full grid over batch budget, coalescing wait,
//! starvation age and cache size per device — the tuned defaults that
//! `prsm simulate-serve --tune` reports and that seeded
//! `ServeConfig::tuned_for`. The current default configuration is
//! always part of the grid, so the winner is never worse than the
//! shipping default *under the model*.

use std::time::Duration;

use prism_device::{DeviceSpec, ServeBatchCost};
use prism_model::ModelConfig;
use prism_serve::{LoadSpec, ServeConfig};
use serde::Serialize;

use crate::closed_loop::simulate_closed_loop;
use crate::report::SimReport;
use crate::service::ServiceModel;

/// One evaluated grid point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Knobs of this point.
    pub max_batch_requests: usize,
    /// Coalescing wait bound, microseconds.
    pub max_batch_wait_us: u64,
    /// Starvation promotion age, microseconds.
    pub starvation_age_us: u64,
    /// Session-cache capacity (sessions).
    pub session_cache_capacity: usize,
    /// Simulated throughput, requests per virtual second.
    pub throughput_rps: f64,
    /// Simulated 99th percentile latency, microseconds.
    pub p99_us: u64,
}

/// Outcome of one tuning sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TuneOutcome {
    /// Every evaluated point, in sweep order.
    pub points: Vec<SweepPoint>,
    /// Index into `points` of the winner.
    pub best: usize,
    /// The winner's simulated report.
    pub report: SimReport,
}

impl TuneOutcome {
    /// The winning configuration materialized over `base`.
    pub fn best_config(&self, base: &ServeConfig) -> ServeConfig {
        let p = &self.points[self.best];
        ServeConfig {
            max_batch_requests: p.max_batch_requests,
            max_batch_wait: Duration::from_micros(p.max_batch_wait_us),
            starvation_age: Duration::from_micros(p.starvation_age_us),
            session_cache_capacity: p.session_cache_capacity,
            ..base.clone()
        }
    }
}

/// The canonical tuning workload: enough concurrency to expose
/// coalescing and cache behaviour, mixed priorities to exercise the
/// scheduler, moderate corpus reuse.
pub fn tuning_workload() -> LoadSpec {
    LoadSpec {
        requests: 384,
        clients: 16,
        sessions: 8,
        corpus_repeat: 2,
        high_fraction: 0.1,
        high_deadline_us: Some(30_000_000),
        ..Default::default()
    }
}

/// Sweeps the scheduling knobs of `base` over a fixed grid (the base
/// point included) and returns every evaluated point plus the winner:
/// highest simulated throughput, ties broken by lower p99, then by grid
/// order. Deterministic: same inputs, same winner.
pub fn tune(
    model: &ModelConfig,
    base: &ServeConfig,
    service: &ServiceModel,
    workload: &LoadSpec,
) -> TuneOutcome {
    let mut grid: Vec<ServeConfig> = vec![base.clone()];
    for &requests in &[1_usize, 2, 4, 8, 16] {
        for &wait_us in &[500_u64, 1_000, 2_000, 5_000] {
            for &starve_us in &[10_000_u64, 50_000, 200_000] {
                for &cache in &[0_usize, 64, 256] {
                    let candidate = ServeConfig {
                        max_batch_requests: requests,
                        max_batch_wait: Duration::from_micros(wait_us),
                        // The validator requires starvation age >= wait.
                        starvation_age: Duration::from_micros(starve_us.max(wait_us)),
                        session_cache_capacity: cache,
                        ..base.clone()
                    };
                    grid.push(candidate);
                }
            }
        }
    }

    let mut points = Vec::with_capacity(grid.len());
    let mut best = 0_usize;
    let mut best_report: Option<SimReport> = None;
    for (i, candidate) in grid.iter().enumerate() {
        let report = simulate_closed_loop(model, workload, candidate, service.clone(), "tune");
        let point = SweepPoint {
            max_batch_requests: candidate.max_batch_requests,
            max_batch_wait_us: candidate.max_batch_wait.as_micros() as u64,
            starvation_age_us: candidate.starvation_age.as_micros() as u64,
            session_cache_capacity: candidate.session_cache_capacity,
            throughput_rps: report.throughput_rps,
            p99_us: report.p99_us,
        };
        let better = match &best_report {
            None => true,
            Some(b) => {
                report.throughput_rps > b.throughput_rps
                    || (report.throughput_rps == b.throughput_rps && report.p99_us < b.p99_us)
            }
        };
        if better {
            best = i;
            best_report = Some(report);
        }
        points.push(point);
    }
    TuneOutcome {
        points,
        best,
        report: best_report.expect("non-empty grid"),
    }
}

/// Tunes for a device using the analytic cost model and the canonical
/// tuning workload — the entry point behind `prsm simulate-serve --tune`.
pub fn tune_for_device(
    model: &ModelConfig,
    device: &DeviceSpec,
    base: &ServeConfig,
) -> TuneOutcome {
    let service = ServiceModel::analytic(ServeBatchCost::new(model.clone(), device.clone()));
    tune(model, base, &service, &tuning_workload())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Calibration;
    use prism_model::ModelArch;

    #[test]
    fn tuned_config_is_never_worse_than_base_under_the_model() {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let base = ServeConfig::default();
        let service = ServiceModel::calibrated(Calibration {
            batch_fixed_us: 4_000.0,
            per_request_us: 200.0,
            per_token_us: 2.0,
        });
        let workload = LoadSpec {
            requests: 96,
            clients: 8,
            sessions: 4,
            corpus_repeat: 2,
            ..Default::default()
        };
        let outcome = tune(&model, &base, &service, &workload);
        // Grid point 0 *is* the base config: the winner can only match
        // or beat it.
        let base_point = &outcome.points[0];
        let winner = &outcome.points[outcome.best];
        assert!(
            winner.throughput_rps >= base_point.throughput_rps,
            "winner {} rps vs base {} rps",
            winner.throughput_rps,
            base_point.throughput_rps
        );
        let tuned = outcome.best_config(&base);
        tuned.validate().expect("tuned config must validate");
        assert_eq!(tuned.workers, base.workers, "only scheduling knobs move");
    }

    #[test]
    fn sweep_is_deterministic() {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let base = ServeConfig::default();
        let service = ServiceModel::calibrated(Calibration {
            batch_fixed_us: 2_000.0,
            per_request_us: 100.0,
            per_token_us: 1.0,
        });
        let workload = LoadSpec {
            requests: 48,
            clients: 6,
            ..Default::default()
        };
        let a = tune(&model, &base, &service, &workload);
        let b = tune(&model, &base, &service, &workload);
        assert_eq!(a.best, b.best);
        assert_eq!(a.report.digest, b.report.digest);
        assert_eq!(a.points.len(), b.points.len());
    }

    /// Full-fidelity sweep (3 presets x 181 points x 384 requests):
    /// ~2 s in release, minutes in debug — nightly CI runs it with
    /// `--release -- --ignored` next to the million-request soak.
    #[test]
    #[ignore]
    fn shipped_tuned_defaults_match_a_fresh_sweep() {
        use prism_metrics::MemoryMeter;
        // `ServeConfig::tuned_for` ships the paper-scale sweep winners as
        // constants (it cannot depend on this crate); a fresh sweep per
        // device preset must reproduce them or the constants are stale.
        let model = ModelConfig::bge_m3();
        for device in [
            prism_device::DeviceSpec::rtx5070_laptop(),
            prism_device::DeviceSpec::apple_m2(),
            prism_device::DeviceSpec::a800(),
        ] {
            let outcome = tune_for_device(&model, &device, &ServeConfig::default());
            let winner = &outcome.points[outcome.best];
            let shipped = ServeConfig::tuned_for(&model, &device, &MemoryMeter::new());
            assert_eq!(
                shipped.max_batch_requests, winner.max_batch_requests,
                "{}: stale batch budget",
                device.name
            );
            assert_eq!(
                shipped.max_batch_wait.as_micros() as u64,
                winner.max_batch_wait_us,
                "{}: stale coalescing wait",
                device.name
            );
            assert_eq!(
                shipped.starvation_age.as_micros() as u64,
                winner.starvation_age_us,
                "{}: stale starvation bound",
                device.name
            );
            assert_eq!(
                shipped.session_cache_capacity, winner.session_cache_capacity,
                "{}: stale cache size",
                device.name
            );
            shipped.validate().expect("tuned config must validate");
            // The tuned point can never be worse than the shipping
            // default under the model: the default is grid point 0.
            assert!(winner.throughput_rps >= outcome.points[0].throughput_rps);
        }
    }

    #[test]
    fn device_entry_point_runs_on_presets() {
        let model = ModelConfig::test_config(ModelArch::DecoderOnly, 4);
        let base = ServeConfig::default();
        let workload = LoadSpec {
            requests: 32,
            clients: 4,
            ..Default::default()
        };
        // Exercise the analytic path on a real device preset with a
        // reduced grid via `tune` (full presets sweep lives behind the
        // CLI); here just prove the analytic service model composes.
        let service = ServiceModel::analytic(ServeBatchCost::new(
            model.clone(),
            prism_device::DeviceSpec::apple_m2(),
        ));
        let outcome = tune(&model, &base, &service, &workload);
        assert!(outcome.report.completed > 0);
        assert!(!outcome.points.is_empty());
    }
}
