//! The simulator's run report: `ServeStats`-shaped telemetry plus exact
//! latency percentiles, mirroring `prism_serve::LoadReport` so measured
//! and simulated runs compare field for field.

use prism_serve::{ClassReport, ServeStatsSnapshot};
use serde::Serialize;

/// FNV-1a fold of one `u64` into a running digest — the simulator's
/// event-log hash (bit-identical runs produce identical digests).
pub fn fnv1a_mix(hash: &mut u64, value: u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for b in value.to_le_bytes() {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(PRIME);
    }
}

/// Outcome of one simulated serving run. Latency percentiles are exact
/// (per-request samples, sorted), and `stats` is a real
/// [`ServeStatsSnapshot`] driven by the simulator — the same shape the
/// live server emits. Every field is a pure function of the simulation
/// inputs; wall-clock timing is deliberately excluded so reports can be
/// compared bit for bit.
#[derive(Debug, Clone, Serialize)]
pub struct SimReport {
    /// Scenario label.
    pub label: String,
    /// Requests offered to the simulated server.
    pub requests: u64,
    /// Requests answered with a selection.
    pub completed: u64,
    /// Requests answered with an error (cancelled, deadline-shed, or
    /// dropped on open-loop backpressure).
    pub errors: u64,
    /// Backpressure rejections absorbed by closed-loop retry.
    pub backpressure_retries: u64,
    /// Virtual seconds from first arrival to last delivery.
    pub virtual_elapsed_s: f64,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Mean end-to-end latency, microseconds.
    pub mean_us: f64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst request, microseconds.
    pub max_us: u64,
    /// Per-class latency breakdown for mixed-priority runs (empty when
    /// the workload is uniform).
    pub classes: Vec<ClassReport>,
    /// Server-side telemetry, `ServeStats`-shaped.
    pub stats: ServeStatsSnapshot,
    /// Discrete events processed.
    pub events: u64,
    /// FNV-1a digest of the processed event log — the determinism
    /// witness.
    pub digest: u64,
}

impl SimReport {
    /// The class summary with this label, if the run was mixed.
    pub fn class(&self, label: &str) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.label == label)
    }

    /// Assembles a report from raw simulation outputs (same aggregation
    /// as `run_closed_loop`: exact sorted quantiles, high/bulk split
    /// only for mixed runs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        label: &str,
        requests: u64,
        samples: Vec<(bool, u64)>,
        errors: u64,
        high_errors: u64,
        retries: u64,
        virtual_end_us: u64,
        stats: ServeStatsSnapshot,
        events: u64,
        digest: u64,
        split_classes: bool,
    ) -> SimReport {
        let classes = if split_classes {
            let high: Vec<u64> = samples
                .iter()
                .filter(|(h, _)| *h)
                .map(|&(_, l)| l)
                .collect();
            let bulk: Vec<u64> = samples
                .iter()
                .filter(|(h, _)| !*h)
                .map(|&(_, l)| l)
                .collect();
            vec![
                class_report("high", high, high_errors as usize),
                class_report("bulk", bulk, (errors - high_errors) as usize),
            ]
        } else {
            Vec::new()
        };
        let mut latencies: Vec<u64> = samples.into_iter().map(|(_, l)| l).collect();
        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        let mean_us = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        let virtual_elapsed_s = virtual_end_us as f64 / 1e6;
        SimReport {
            label: label.to_string(),
            requests,
            completed,
            errors,
            backpressure_retries: retries,
            virtual_elapsed_s,
            throughput_rps: if virtual_elapsed_s > 0.0 {
                completed as f64 / virtual_elapsed_s
            } else {
                0.0
            },
            mean_us,
            p50_us: exact_quantile(&latencies, 0.50),
            p95_us: exact_quantile(&latencies, 0.95),
            p99_us: exact_quantile(&latencies, 0.99),
            max_us: latencies.last().copied().unwrap_or(0),
            classes,
            stats,
            events,
            digest,
        }
    }
}

fn class_report(label: &str, mut latencies: Vec<u64>, errors: usize) -> ClassReport {
    latencies.sort_unstable();
    let completed = latencies.len();
    let mean_us = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / completed as f64
    };
    ClassReport {
        label: label.to_string(),
        completed,
        errors,
        mean_us,
        p50_us: exact_quantile(&latencies, 0.50),
        p95_us: exact_quantile(&latencies, 0.95),
        p99_us: exact_quantile(&latencies, 0.99),
    }
}

/// Nearest-rank quantile over a sorted sample — identical to the
/// closed-loop load generator's estimator so simulated and measured
/// percentiles are comparable.
pub fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_load_generator_convention() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_quantile(&sorted, 0.50), 51); // round(0.5 * 99) = 50
        assert_eq!(exact_quantile(&sorted, 0.99), 99);
        assert_eq!(exact_quantile(&sorted, 1.0), 100);
        assert_eq!(exact_quantile(&[], 0.5), 0);
    }

    #[test]
    fn digest_mix_is_order_sensitive() {
        let (mut a, mut b) = (0xcbf2_9ce4_8422_2325_u64, 0xcbf2_9ce4_8422_2325_u64);
        fnv1a_mix(&mut a, 1);
        fnv1a_mix(&mut a, 2);
        fnv1a_mix(&mut b, 2);
        fnv1a_mix(&mut b, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn build_splits_classes_only_when_asked() {
        let samples = vec![(true, 100), (false, 200), (false, 300)];
        let stats = prism_serve::ServeStats::new().snapshot();
        let mixed = SimReport::build(
            "m",
            3,
            samples.clone(),
            1,
            1,
            0,
            1_000,
            stats.clone(),
            9,
            7,
            true,
        );
        assert_eq!(mixed.class("high").unwrap().completed, 1);
        assert_eq!(mixed.class("bulk").unwrap().errors, 0);
        assert_eq!(mixed.completed, 3);
        assert!((mixed.mean_us - 200.0).abs() < 1e-9);
        let uniform = SimReport::build("u", 3, samples, 0, 0, 0, 0, stats, 9, 7, false);
        assert!(uniform.classes.is_empty());
        assert_eq!(uniform.throughput_rps, 0.0, "zero elapsed guards division");
    }
}
