//! The discrete-event serving simulator.
//!
//! One [`Simulation`] models the full `prism-serve` stack — bounded
//! submission queue, batch coalescing, worker pool, session cache,
//! deadlines, priorities and cancellation — at *virtual* microsecond
//! time. Scheduling decisions are not re-implemented: the simulator
//! drives the real [`BatchPlanner`] (a pure function of queue snapshot +
//! clock since the explicit-clock refactor) and records into a real
//! [`ServeStats`], so the emitted telemetry has the same shape and
//! counter semantics as a live [`prism_serve::PrismServer`]. Counter
//! updates mirror `server.rs::execute_batch` line by line: shed at
//! pickup, batch instruments, per-item queue time, session-cache probe
//! (selection hits answer instantly with zero service time), one
//! engine pass per coalesced batch, and cancel/deadline outcomes at
//! completion that never fail batch-mates.
//!
//! Everything is deterministic: no wall clock, no thread interleaving,
//! no hash-order dependence (ties cannot occur — the event heap orders
//! by `(time, sequence)` and cache eviction scans a unique recency
//! tick). The same inputs produce a bit-identical event digest and
//! report on every run.

use std::collections::{BinaryHeap, HashMap, VecDeque};

use prism_core::Priority;
use prism_serve::{BatchPlanner, PlanDecision, QueueItem, ServeConfig, ServeStats};
use prism_workload::{TraceEvent, TraceGenerator};

use crate::report::{fnv1a_mix, SimReport};
use crate::service::ServiceModel;

/// Microseconds a simulated closed-loop client waits before resubmitting
/// after backpressure — mirrors the retry sleep in
/// `prism_serve::run_closed_loop`.
pub const BACKPRESSURE_RETRY_US: u64 = 200;

/// Selections memoized per simulated session, mirroring the real
/// session cache's per-session memo bound.
const MEMO_PER_SESSION: usize = 8;

/// One logical request entering the simulated server.
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// Stable identity (trace index / closed-loop submission index);
    /// folded into the event digest.
    pub id: u64,
    /// Session identity (cache affinity).
    pub session: u64,
    /// Corpus identity: requests sharing `(session, corpus, key)` are
    /// exact repeats and can replay a cached selection.
    pub corpus: u64,
    /// Surrogate for the request's `SelectionKey` (k + tag + overrides).
    pub key: u64,
    /// Total packed tokens (the planner's budget unit).
    pub tokens: usize,
    /// Scheduling class.
    pub priority: Priority,
    /// Relative deadline in microseconds from admission, if any.
    pub deadline_us: Option<u64>,
    /// Caller cancels this many microseconds after admission, if ever.
    pub cancel_after_us: Option<u64>,
    /// Reported under the `"high"` class (vs `"bulk"`) in mixed runs.
    pub high_class: bool,
    /// Closed-loop owner: completion triggers this client's next
    /// submission, and backpressure triggers a retry instead of a drop.
    pub client: Option<usize>,
}

impl SimRequest {
    /// Converts a generated trace event into a simulator request, using
    /// the same corpus-to-tag convention as the closed-loop generator.
    pub fn from_trace(ev: &TraceEvent) -> SimRequest {
        SimRequest {
            id: ev.index,
            session: ev.session,
            corpus: ev.corpus,
            key: ev.corpus ^ 0x5E55_1011,
            tokens: ev.tokens,
            priority: match ev.class {
                2 => Priority::High,
                0 => Priority::Bulk,
                _ => Priority::Normal,
            },
            deadline_us: ev.deadline_us,
            cancel_after_us: ev.cancel_after_us,
            high_class: ev.class == 2,
            client: None,
        }
    }
}

/// A queued request with its virtual-time bookkeeping.
#[derive(Debug, Clone)]
struct SimPending {
    req: SimRequest,
    /// First submission attempt — the latency epoch (retries included),
    /// mirroring the closed-loop client's `t0` before its retry loop.
    first_attempt: u64,
    /// Admission time (queue-wait epoch).
    enqueued_at: u64,
    /// Absolute deadline, resolved at admission like the real server.
    deadline_at: Option<u64>,
    /// Absolute cancellation instant.
    cancel_at: Option<u64>,
}

#[derive(Debug)]
enum Event {
    /// A request (re)submission; `first_attempt` survives retries.
    Submit { req: SimRequest, first_attempt: u64 },
    /// Worker finished its running batch.
    WorkerFree { worker: usize },
    /// The coalescing age bound expired; replan.
    PlanTimer,
}

struct Scheduled {
    at: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    // Reversed: BinaryHeap is a max-heap, we need earliest-first with
    // FIFO tie-break on the schedule sequence.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct RunningBatch {
    items: Vec<SimPending>,
    /// Post-shed batch size (selection hits included) — the `in_flight`
    /// increment to undo at completion.
    size: usize,
    service_us: u64,
    /// A shard fault hit this batch with no replica to fail over to:
    /// every member surfaces a typed shard error at completion.
    shard_failed: bool,
}

/// A seeded, deterministic shard-fault model for the simulated serving
/// stack: each executed batch draws a fault with probability
/// `per_mille / 1000`. What the fault *costs* is priced by replication:
///
/// * `replicas >= 2` — the victim shard's sub-batch fails over to its
///   next-ranked replica mid-request (the real `ShardSet` contract), so
///   the batch completes correctly but pays one shard's share of the
///   forward again. Counted in [`ServeStats::failovers`].
/// * `replicas == 1` — nothing covers the fault: the batch runs to the
///   fault and every member fails with a typed shard error (the
///   fail-fast default), surfacing as request errors.
///
/// Fault draws come from their own splitmix64 stream and fold into the
/// event digest, so a faulted run replays bit-identically from its seed.
#[derive(Debug, Clone, Copy)]
pub struct SimFaults {
    /// Seed of the fault-draw stream.
    pub seed: u64,
    /// Per-batch fault probability in thousandths (0 disables).
    pub per_mille: u32,
    /// Shards behind the forward map (sets the failover replay share).
    pub shards: usize,
    /// Replica sets per candidate: R >= 2 covers any single-shard fault.
    pub replicas: usize,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Probe {
    Selection,
    Embed,
    Miss,
}

struct CacheEntry {
    corpus: u64,
    keys: Vec<u64>,
    has_embed: bool,
    last_used: u64,
}

/// Behavioural twin of `prism_serve::SessionCache`: one corpus per
/// session, a bounded selection memo, session-level LRU eviction.
/// Recency ticks are unique, so the eviction scan is deterministic
/// regardless of hash iteration order.
struct SimCache {
    capacity: usize,
    enabled: bool,
    tick: u64,
    entries: HashMap<u64, CacheEntry>,
}

impl SimCache {
    fn new(capacity: usize) -> Self {
        SimCache {
            capacity: capacity.max(1),
            enabled: capacity > 0,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn lookup(&mut self, session: u64, corpus: u64, key: u64) -> Probe {
        if !self.enabled {
            return Probe::Miss;
        }
        self.tick += 1;
        let Some(entry) = self.entries.get_mut(&session) else {
            return Probe::Miss;
        };
        if entry.corpus != corpus {
            return Probe::Miss;
        }
        entry.last_used = self.tick;
        if entry.keys.contains(&key) {
            Probe::Selection
        } else if entry.has_embed {
            Probe::Embed
        } else {
            Probe::Miss
        }
    }

    fn store_embed(&mut self, session: u64, corpus: u64) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&session) {
            Some(entry) => {
                if entry.corpus != corpus {
                    entry.corpus = corpus;
                    entry.keys.clear();
                }
                entry.has_embed = true;
                entry.last_used = tick;
            }
            None => {
                self.entries.insert(
                    session,
                    CacheEntry {
                        corpus,
                        keys: Vec::new(),
                        has_embed: true,
                        last_used: tick,
                    },
                );
                self.evict_over_capacity();
            }
        }
    }

    fn store_selection(&mut self, session: u64, corpus: u64, key: u64) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.entry(session).or_insert_with(|| CacheEntry {
            corpus,
            keys: Vec::new(),
            has_embed: false,
            last_used: tick,
        });
        if entry.corpus != corpus {
            entry.corpus = corpus;
            entry.has_embed = false;
            entry.keys.clear();
        }
        entry.last_used = tick;
        if !entry.keys.contains(&key) {
            if entry.keys.len() >= MEMO_PER_SESSION {
                entry.keys.remove(0);
            }
            entry.keys.push(key);
        }
        self.evict_over_capacity();
    }

    fn evict_over_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            // `last_used` ticks are unique: min_by_key has exactly one
            // answer, independent of hash iteration order.
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                return;
            };
            self.entries.remove(&oldest);
        }
    }
}

/// Deterministic discrete-event simulation of one serving configuration.
pub struct Simulation {
    planner: BatchPlanner,
    queue_capacity: usize,
    service: ServiceModel,
    stats: ServeStats,
    cache: SimCache,

    now: u64,
    seq: u64,
    heap: BinaryHeap<Scheduled>,
    queue: VecDeque<SimPending>,
    worker_busy: Vec<bool>,
    running: Vec<Option<RunningBatch>>,
    timer_at: Option<u64>,
    client_streams: Vec<VecDeque<SimRequest>>,
    faults: Option<SimFaults>,
    fault_state: u64,

    samples: Vec<(bool, u64)>,
    errors: u64,
    high_errors: u64,
    retries: u64,
    events: u64,
    digest: u64,
}

impl Simulation {
    /// Builds a simulator for `config` (validated) with the given
    /// service-time model.
    pub fn new(config: &ServeConfig, service: ServiceModel) -> Self {
        config
            .validate()
            .expect("invalid ServeConfig for simulation");
        let workers = config.workers.max(1);
        Simulation {
            planner: config.planner(),
            queue_capacity: config.queue_capacity.max(1),
            service,
            stats: ServeStats::new(),
            cache: SimCache::new(config.session_cache_capacity),
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            queue: VecDeque::new(),
            worker_busy: vec![false; workers],
            running: (0..workers).map(|_| None).collect(),
            timer_at: None,
            client_streams: Vec::new(),
            faults: None,
            fault_state: 0,
            samples: Vec::new(),
            errors: 0,
            high_errors: 0,
            retries: 0,
            events: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Simulates the first `n` events of a trace as an *open-loop*
    /// arrival stream: requests arrive on the trace's schedule whether
    /// or not the server keeps up, and backpressure rejections are
    /// dropped (counted, never retried).
    pub fn run_trace(
        config: &ServeConfig,
        service: ServiceModel,
        generator: &TraceGenerator,
        n: u64,
        label: &str,
    ) -> SimReport {
        Simulation::run_trace_with(config, service, generator, n, label, None)
    }

    /// [`Simulation::run_trace`] with a shard-fault model injected.
    pub fn run_trace_with(
        config: &ServeConfig,
        service: ServiceModel,
        generator: &TraceGenerator,
        n: u64,
        label: &str,
        faults: Option<SimFaults>,
    ) -> SimReport {
        let mut sim = Simulation::new(config, service);
        sim.set_faults(faults);
        let split = generator.profile().high_fraction > 0.0;
        sim.event_loop(
            generator
                .arrivals(n)
                .map(|(at, ev)| (at, SimRequest::from_trace(&ev))),
        );
        sim.finish(label, n, split)
    }

    /// Simulates a *closed-loop* run: each client owns a request stream
    /// and submits its next request the instant the previous one is
    /// answered, retrying backpressure after
    /// [`BACKPRESSURE_RETRY_US`] — the same discipline as
    /// `prism_serve::run_closed_loop`.
    pub fn run_closed(
        config: &ServeConfig,
        service: ServiceModel,
        streams: Vec<VecDeque<SimRequest>>,
        label: &str,
        split_classes: bool,
    ) -> SimReport {
        Simulation::run_closed_with(config, service, streams, label, split_classes, None)
    }

    /// [`Simulation::run_closed`] with a shard-fault model injected.
    pub fn run_closed_with(
        config: &ServeConfig,
        service: ServiceModel,
        mut streams: Vec<VecDeque<SimRequest>>,
        label: &str,
        split_classes: bool,
        faults: Option<SimFaults>,
    ) -> SimReport {
        let mut sim = Simulation::new(config, service);
        sim.set_faults(faults);
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        for stream in &mut streams {
            if let Some(first) = stream.pop_front() {
                sim.schedule(
                    0,
                    Event::Submit {
                        req: first,
                        first_attempt: 0,
                    },
                );
            }
        }
        sim.client_streams = streams;
        sim.event_loop(std::iter::empty());
        sim.finish(label, total, split_classes)
    }

    fn set_faults(&mut self, faults: Option<SimFaults>) {
        self.fault_state = faults.map_or(0, |f| f.seed ^ 0xFA17_FA17_FA17_FA17);
        self.faults = faults;
    }

    fn schedule(&mut self, at: u64, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    fn mix(&mut self, code: u64, a: u64, b: u64) {
        fnv1a_mix(&mut self.digest, code);
        fnv1a_mix(&mut self.digest, a);
        fnv1a_mix(&mut self.digest, b);
    }

    fn event_loop(&mut self, arrivals: impl Iterator<Item = (u64, SimRequest)>) {
        let mut arrivals = arrivals;
        let mut next_arrival = arrivals.next();
        loop {
            let heap_at = self.heap.peek().map(|s| s.at);
            let take_arrival = match (&next_arrival, heap_at) {
                (Some((at, _)), Some(h)) => *at <= h,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_arrival {
                let (at, req) = next_arrival.take().expect("arrival present");
                next_arrival = arrivals.next();
                self.now = self.now.max(at);
                self.events += 1;
                let now = self.now;
                self.submit(req, now, now);
            } else {
                let Scheduled { at, event, .. } = self.heap.pop().expect("event present");
                self.now = self.now.max(at);
                self.events += 1;
                match event {
                    Event::Submit { req, first_attempt } => {
                        let now = self.now;
                        self.submit(req, first_attempt, now)
                    }
                    Event::WorkerFree { worker } => {
                        let now = self.now;
                        self.complete(worker, now);
                        self.try_dispatch(now);
                    }
                    Event::PlanTimer => {
                        if self.timer_at == Some(at) {
                            self.timer_at = None;
                            let now = self.now;
                            self.try_dispatch(now);
                        }
                    }
                }
            }
        }
    }

    /// One submission attempt, mirroring `PrismServer::submit` +
    /// `SubmissionQueue::push`: admission deadline check, shed-then-
    /// backpressure when full, depth update, dispatch.
    fn submit(&mut self, req: SimRequest, first_attempt: u64, now: u64) {
        self.mix(1, now, req.id);
        // The real admission path rejects a deadline that has already
        // passed at submission — with relative slack that is exactly
        // the zero-slack case.
        if req.deadline_us == Some(0) {
            self.stats.deadline_rejected.inc();
            self.answer(req, first_attempt, false, now);
            return;
        }
        if self.queue.len() >= self.queue_capacity {
            self.shed_dead(now);
        }
        if self.queue.len() >= self.queue_capacity {
            self.stats.rejected.inc();
            self.mix(2, now, req.id);
            if req.client.is_some() {
                // Closed-loop caller: absorb with a retry.
                self.retries += 1;
                self.schedule(
                    now + BACKPRESSURE_RETRY_US,
                    Event::Submit { req, first_attempt },
                );
            } else {
                // Open-loop arrival: dropped on the floor.
                self.errors += 1;
                if req.high_class {
                    self.high_errors += 1;
                }
            }
            return;
        }
        self.stats.submitted.inc();
        let pending = SimPending {
            deadline_at: req.deadline_us.map(|us| now.saturating_add(us)),
            cancel_at: req.cancel_after_us.map(|us| now.saturating_add(us)),
            req,
            first_attempt,
            enqueued_at: now,
        };
        self.queue.push_back(pending);
        self.stats.queue_depth.set(self.queue.len() as u64);
        self.try_dispatch(now);
    }

    /// Answers and removes every queued request that is already dead —
    /// the queue's shed pass (cancellation checked before deadline,
    /// like `SubmissionQueue::shed_dead`).
    fn shed_dead(&mut self, now: u64) {
        let mut i = 0;
        while i < self.queue.len() {
            let p = &self.queue[i];
            let dead_cancel = p.cancel_at.is_some_and(|c| c <= now);
            let dead_deadline = !dead_cancel && p.deadline_at.is_some_and(|d| d <= now);
            if dead_cancel || dead_deadline {
                let p = self.queue.remove(i).expect("index in bounds");
                if dead_cancel {
                    self.stats.cancelled.inc();
                } else {
                    self.stats.deadline_missed.inc();
                }
                self.answer(p.req, p.first_attempt, false, now);
            } else {
                i += 1;
            }
        }
    }

    /// Pops planner-approved batches onto idle workers until the planner
    /// says wait (scheduling a replan timer) or no worker is free —
    /// the virtual-time equivalent of each worker's `next_batch` loop.
    fn try_dispatch(&mut self, now: u64) {
        loop {
            let Some(worker) = self.worker_busy.iter().position(|b| !b) else {
                return;
            };
            self.shed_dead(now);
            if self.queue.is_empty() {
                self.stats.queue_depth.set(0);
                return;
            }
            let snapshot: Vec<QueueItem> = self
                .queue
                .iter()
                .map(|p| QueueItem {
                    tokens: p.req.tokens,
                    enqueued_micros: p.enqueued_at,
                    priority: p.req.priority,
                    deadline_micros: p.deadline_at,
                })
                .collect();
            let take = match self.planner.decide(&snapshot, now) {
                PlanDecision::Wait(us) => {
                    let at = now.saturating_add(us.max(1));
                    if self.timer_at.is_none_or(|t| t > at) {
                        self.timer_at = Some(at);
                        self.schedule(at, Event::PlanTimer);
                    }
                    return;
                }
                PlanDecision::Flush(set) => set,
            };
            // Starvation promotions surface as priority inversions,
            // exactly as in `SubmissionQueue::next_batch`.
            if self.planner.priority_aware {
                let floor = take
                    .iter()
                    .map(|&i| snapshot[i].priority)
                    .min()
                    .unwrap_or(Priority::Bulk);
                let waiting_above =
                    (0..snapshot.len()).any(|i| !take.contains(&i) && snapshot[i].priority > floor);
                if waiting_above {
                    self.stats.priority_inversions.inc();
                }
            }
            // Drain the selected positions, preserving scheduling order.
            let mut slots: Vec<Option<SimPending>> = take.iter().map(|_| None).collect();
            let mut kept = VecDeque::with_capacity(self.queue.len());
            for (pos, p) in self.queue.drain(..).enumerate() {
                match take.iter().position(|&t| t == pos) {
                    Some(slot) => slots[slot] = Some(p),
                    None => kept.push_back(p),
                }
            }
            self.queue = kept;
            self.stats.queue_depth.set(self.queue.len() as u64);
            let batch: Vec<SimPending> = slots
                .into_iter()
                .map(|p| p.expect("selected position drained"))
                .collect();
            self.execute(worker, now, batch);
        }
    }

    /// Runs one popped batch, mirroring `execute_batch`: batch
    /// instruments, per-item queue time and cache probe (selection hits
    /// answer instantly with zero service time; embed hits and misses
    /// execute), one service-time charge for the coalesced remainder.
    fn execute(&mut self, worker: usize, now: u64, batch: Vec<SimPending>) {
        let size = batch.len();
        if size == 0 {
            return;
        }
        self.mix(3, now, size as u64);
        self.stats.batches.inc();
        self.stats.batch_size.record(size as u64);
        self.stats
            .batch_tokens
            .record(batch.iter().map(|p| p.req.tokens as u64).sum());
        self.stats.in_flight.add(size as u64);

        let mut planned: Vec<SimPending> = Vec::with_capacity(size);
        let mut planned_tokens = 0_u64;
        for p in batch {
            self.stats
                .queued_us
                .record(now.saturating_sub(p.enqueued_at));
            match self.cache.lookup(p.req.session, p.req.corpus, p.req.key) {
                Probe::Selection => {
                    self.stats.cache_selection_hits.inc();
                    self.stats.service_us.record(0);
                    self.stats.completed.inc();
                    self.answer(p.req, p.first_attempt, true, now);
                }
                Probe::Embed => {
                    self.stats.cache_embed_hits.inc();
                    planned_tokens += p.req.tokens as u64;
                    planned.push(p);
                }
                Probe::Miss => {
                    // The real miss path embeds the corpus and caches the
                    // embedding before execution, so a same-batch repeat
                    // already sees an embed hit.
                    self.stats.cache_misses.inc();
                    self.cache.store_embed(p.req.session, p.req.corpus);
                    planned_tokens += p.req.tokens as u64;
                    planned.push(p);
                }
            }
        }
        if planned.is_empty() {
            self.stats.in_flight.sub(size as u64);
            return;
        }
        let mut service_us = self
            .service
            .batch_micros(planned.len(), planned_tokens)
            .max(1);
        let mut shard_failed = false;
        if let Some(f) = self.faults {
            let draw = splitmix64(&mut self.fault_state) % 1000;
            if (draw as u32) < f.per_mille.min(1000) {
                self.mix(6, draw, f.replicas as u64);
                if f.replicas >= 2 {
                    // Failover: the victim shard's sub-batch replays on
                    // its next-ranked replica — one shard's share of the
                    // forward paid a second time, result unchanged.
                    let share = planned_tokens / f.shards.max(1) as u64;
                    service_us = service_us
                        .saturating_add(self.service.batch_micros(planned.len(), share).max(1));
                    self.stats.failovers.inc();
                } else {
                    // Nothing covers the fault: the batch still occupies
                    // the worker until the fault surfaces, then every
                    // member fails with a typed shard error.
                    shard_failed = true;
                }
            }
        }
        self.worker_busy[worker] = true;
        self.schedule(now.saturating_add(service_us), Event::WorkerFree { worker });
        self.running[worker] = Some(RunningBatch {
            items: planned,
            size,
            service_us,
            shard_failed,
        });
    }

    /// Finalizes a finished batch: a member cancelled or past its
    /// deadline mid-run surfaces its typed error without failing its
    /// batch-mates; survivors record the shared service time and seed
    /// the session cache.
    fn complete(&mut self, worker: usize, at: u64) {
        let run = self.running[worker].take().expect("worker had a batch");
        self.worker_busy[worker] = false;
        for p in run.items {
            if run.shard_failed {
                // Unrecoverable shard fault (R=1): a typed error, never
                // a wrong selection.
                self.answer(p.req, p.first_attempt, false, at);
            } else if p.cancel_at.is_some_and(|c| c <= at) {
                self.stats.cancelled.inc();
                self.answer(p.req, p.first_attempt, false, at);
            } else if p.deadline_at.is_some_and(|d| d <= at) {
                self.stats.deadline_missed.inc();
                self.answer(p.req, p.first_attempt, false, at);
            } else {
                self.stats.service_us.record(run.service_us);
                self.stats.completed.inc();
                self.cache
                    .store_selection(p.req.session, p.req.corpus, p.req.key);
                self.answer(p.req, p.first_attempt, true, at);
            }
        }
        self.stats.in_flight.sub(run.size as u64);
    }

    /// Delivers the reply to the caller: sample or error, digest fold,
    /// and — for closed-loop clients — the next submission at the reply
    /// instant.
    fn answer(&mut self, req: SimRequest, first_attempt: u64, ok: bool, at: u64) {
        let latency = at.saturating_sub(first_attempt);
        self.mix(if ok { 4 } else { 5 }, at, req.id);
        if ok {
            self.samples.push((req.high_class, latency));
        } else {
            self.errors += 1;
            if req.high_class {
                self.high_errors += 1;
            }
        }
        if let Some(c) = req.client {
            if let Some(next) = self.client_streams[c].pop_front() {
                self.schedule(
                    at,
                    Event::Submit {
                        req: next,
                        first_attempt: at,
                    },
                );
            }
        }
    }

    fn finish(self, label: &str, requests: u64, split_classes: bool) -> SimReport {
        SimReport::build(
            label,
            requests,
            self.samples,
            self.errors,
            self.high_errors,
            self.retries,
            self.now,
            self.stats.snapshot(),
            self.events,
            self.digest,
            split_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Calibration, ServiceModel};
    use prism_workload::TraceProfile;
    use std::time::Duration;

    fn flat_service(us: f64) -> ServiceModel {
        ServiceModel::calibrated(Calibration {
            batch_fixed_us: us,
            per_request_us: 0.0,
            per_token_us: 0.0,
        })
    }

    fn req(id: u64, tokens: usize) -> SimRequest {
        SimRequest {
            id,
            session: id % 4,
            corpus: id,
            key: id,
            tokens,
            priority: Priority::Normal,
            deadline_us: None,
            cancel_after_us: None,
            high_class: false,
            client: None,
        }
    }

    fn serial_config() -> ServeConfig {
        ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        }
    }

    #[test]
    fn serial_open_loop_matches_hand_computation() {
        // Two requests arriving at 0 and 100us on one serial worker with
        // a flat 1000us service time: completions at 1000 and 2000.
        let arrivals = vec![(0_u64, req(0, 10)), (100_u64, req(1, 10))];
        let mut sim = Simulation::new(&serial_config(), flat_service(1_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("hand", 2, false);
        assert_eq!(report.completed, 2);
        assert_eq!(report.stats.batches, 2);
        assert_eq!(report.stats.completed, 2);
        // First waits 0 then serves 1000; second queues 900 then serves
        // (nearest-rank p50 over two samples picks the upper one).
        assert!((report.mean_us - 1_450.0).abs() < 1e-9);
        assert_eq!(report.p50_us, 1_900);
        assert_eq!(report.max_us, 1_900);
        assert_eq!(report.virtual_elapsed_s, 2_000.0 / 1e6);
    }

    #[test]
    fn coalescing_batches_under_load() {
        // Eight same-instant arrivals, batch budget 8: one batch.
        let arrivals: Vec<(u64, SimRequest)> = (0..8).map(|i| (0_u64, req(i, 10))).collect();
        let config = ServeConfig {
            workers: 1,
            session_cache_capacity: 0,
            ..Default::default()
        };
        let mut sim = Simulation::new(&config, flat_service(1_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("batched", 8, false);
        assert_eq!(report.completed, 8);
        assert_eq!(report.stats.batches, 1);
        assert_eq!(report.stats.batch_size.max, 8);
    }

    #[test]
    fn selection_hits_complete_instantly() {
        // Same (session, corpus, key) back to back on a cached config:
        // the repeat replays with zero service time.
        let mut a = req(0, 10);
        let mut b = req(1, 10);
        for r in [&mut a, &mut b] {
            r.session = 7;
            r.corpus = 42;
            r.key = 9;
        }
        let arrivals = vec![(0_u64, a), (10_000_u64, b)];
        let config = ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 8,
            ..Default::default()
        };
        let mut sim = Simulation::new(&config, flat_service(1_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("cached", 2, false);
        assert_eq!(report.stats.cache_selection_hits, 1);
        assert_eq!(report.stats.cache_misses, 1);
        // Like the real server, an all-hit pickup still counts as a
        // batch — but it charges no service time, so the repeat is
        // answered the instant it is picked up (t = 10ms, latency 0).
        assert_eq!(report.stats.batches, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(report.virtual_elapsed_s, 10_000.0 / 1e6);
    }

    #[test]
    fn queued_deadline_is_shed_not_executed() {
        // Deadline shorter than the wait behind a long-running batch.
        let mut dead = req(1, 10);
        dead.deadline_us = Some(500);
        let arrivals = vec![(0_u64, req(0, 10)), (1_u64, dead)];
        let mut sim = Simulation::new(&serial_config(), flat_service(10_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("deadline", 2, false);
        assert_eq!(report.stats.deadline_missed, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.errors, 1);
    }

    #[test]
    fn cancellation_mid_flight_is_counted() {
        let mut victim = req(0, 10);
        victim.cancel_after_us = Some(500);
        let arrivals = vec![(0_u64, victim)];
        let mut sim = Simulation::new(&serial_config(), flat_service(10_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("cancel", 1, false);
        assert_eq!(report.stats.cancelled, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn open_loop_backpressure_drops_and_counts() {
        // Queue capacity 1, slow worker, burst of arrivals at t=0:
        // extras are rejected.
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        };
        let arrivals: Vec<(u64, SimRequest)> = (0..4).map(|i| (0_u64, req(i, 10))).collect();
        let mut sim = Simulation::new(&config, flat_service(1_000_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("burst", 4, false);
        assert!(
            report.stats.rejected >= 2,
            "rejected {}",
            report.stats.rejected
        );
        assert_eq!(report.backpressure_retries, 0, "open loop never retries");
        assert_eq!(report.completed + report.errors, 4);
    }

    #[test]
    fn closed_loop_retries_absorb_backpressure() {
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        };
        let mut streams: Vec<VecDeque<SimRequest>> = vec![VecDeque::new(); 4];
        for i in 0..16_u64 {
            let mut r = req(i, 10);
            r.client = Some((i % 4) as usize);
            streams[(i % 4) as usize].push_back(r);
        }
        let report =
            Simulation::run_closed(&config, flat_service(5_000.0), streams, "closed", false);
        assert_eq!(report.completed, 16, "closed loop completes everything");
        assert!(report.backpressure_retries > 0);
        assert!(report.stats.rejected > 0);
    }

    #[test]
    fn starvation_promotion_counts_inversions() {
        // A steady stream of High arrivals over an aged Bulk request:
        // the starvation guard eventually promotes the bulk item and
        // records a priority inversion.
        let config = ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            max_batch_wait: Duration::from_micros(100),
            starvation_age: Duration::from_millis(5),
            ..Default::default()
        };
        // A filler occupies the serial worker for 50ms; the bulk request
        // queues behind it at t=1us, then High arrivals pile in every
        // 400us. When the worker frees, the bulk item has aged past the
        // 5ms starvation bound and must be promoted past the waiting
        // High work.
        let mut arrivals: Vec<(u64, SimRequest)> = vec![(0, req(99, 10))];
        let mut bulk = req(0, 10);
        bulk.priority = Priority::Bulk;
        arrivals.push((1, bulk));
        for i in 1..40_u64 {
            let mut high = req(i, 10);
            high.priority = Priority::High;
            high.high_class = true;
            arrivals.push((i * 400, high));
        }
        let mut sim = Simulation::new(&config, flat_service(50_000.0));
        sim.event_loop(arrivals.into_iter());
        let report = sim.finish("starvation", 41, true);
        assert!(
            report.stats.priority_inversions > 0,
            "aged bulk must be promoted past waiting high work"
        );
        assert_eq!(report.completed, 41);
    }

    #[test]
    fn trace_run_is_deterministic() {
        let config = ServeConfig::default();
        let generator = TraceGenerator::new(TraceProfile::burst_storm(2_000.0), 17);
        let a = Simulation::run_trace(&config, flat_service(900.0), &generator, 5_000, "t");
        let b = Simulation::run_trace(&config, flat_service(900.0), &generator, 5_000, "t");
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "whole report must be bit-identical"
        );
        assert!(a.completed + a.errors == 5_000);
    }

    /// Replication prices faults: the same fault stream costs latency
    /// (failover replays, zero errors) at R=2 and costs *requests*
    /// (typed shard errors) at R=1 — and both runs replay bit-identically
    /// from the fault seed.
    #[test]
    fn fault_model_prices_replication() {
        let config = ServeConfig::default();
        let generator = TraceGenerator::new(TraceProfile::steady(400.0), 23);
        let faults = |replicas| {
            Some(SimFaults {
                seed: 99,
                per_mille: 200,
                shards: 3,
                replicas,
            })
        };
        let clean = Simulation::run_trace(&config, flat_service(900.0), &generator, 2_000, "t");
        let covered = Simulation::run_trace_with(
            &config,
            flat_service(900.0),
            &generator,
            2_000,
            "t",
            faults(2),
        );
        let exposed = Simulation::run_trace_with(
            &config,
            flat_service(900.0),
            &generator,
            2_000,
            "t",
            faults(1),
        );

        // R=2: every fault is absorbed as a failover replay — no new
        // errors, but the replay premium shows up in service time.
        assert!(covered.stats.failovers > 0, "no faults drawn");
        assert_eq!(covered.errors, clean.errors, "R=2 must cover every fault");
        assert!(
            covered.stats.service_us.mean > clean.stats.service_us.mean,
            "failover replay must cost virtual time"
        );

        // R=1: the same draws surface as typed request errors instead.
        assert_eq!(exposed.stats.failovers, 0);
        assert!(
            exposed.errors > clean.errors,
            "uncovered faults must fail requests"
        );

        // Seeded determinism: the faulted run replays bit-identically.
        let replay = Simulation::run_trace_with(
            &config,
            flat_service(900.0),
            &generator,
            2_000,
            "t",
            faults(2),
        );
        assert_eq!(covered.digest, replay.digest);
        assert_eq!(
            serde_json::to_string(&covered).unwrap(),
            serde_json::to_string(&replay).unwrap()
        );
    }
}
