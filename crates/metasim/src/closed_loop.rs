//! Closed-loop replay: simulate exactly the workload that
//! `prism_serve::run_closed_loop` drives against a real server.
//!
//! The request stream is reconstructed request for request — client
//! striding, session cycling, corpus rotation, the corpus-derived
//! routing tag, priority decoration and deadlines — so a simulated run
//! and a measured run of the same [`LoadSpec`] see identical queue
//! contents, batch shapes and cache-hit patterns. Only execution time
//! is modeled (by the [`ServiceModel`]); everything else is the real
//! planning logic at virtual time. This is what `repro sim-validate`
//! replays to compare predicted throughput and tail latency against
//! the measured serving benchmarks.

use std::collections::{HashMap, VecDeque};

use prism_core::Priority;
use prism_model::ModelConfig;
use prism_serve::{LoadSpec, ServeConfig};
use prism_workload::{dataset_by_name, WorkloadGenerator};

use crate::report::SimReport;
use crate::service::ServiceModel;
use crate::sim::{SimRequest, Simulation};

/// Reconstructs `spec`'s per-client request streams. Mirrors the client
/// loop in `run_closed_loop`: client `c` owns indices `c, c+clients, …`;
/// index `i` maps to session `i % sessions`, corpus
/// `(session << 32) | (round / corpus_repeat)`, and the corpus-derived
/// tag that makes repeats exact cache hits.
pub fn client_streams(config: &ModelConfig, spec: &LoadSpec) -> Vec<VecDeque<SimRequest>> {
    let profile = dataset_by_name(&spec.dataset)
        .unwrap_or_else(|| panic!("unknown dataset `{}`", spec.dataset));
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, spec.seed);
    let sessions = spec.sessions.max(1);
    let repeat = spec.corpus_repeat.max(1);
    let clients = spec.clients.max(1).min(spec.requests.max(1));

    // Token counts are a pure function of the corpus id; memoize so
    // repeated corpora cost one generator call.
    let mut tokens_of: HashMap<u64, usize> = HashMap::new();
    let mut streams: Vec<VecDeque<SimRequest>> = (0..clients).map(|_| VecDeque::new()).collect();
    for (c, stream) in streams.iter_mut().enumerate() {
        let mut i = c;
        while i < spec.requests {
            let session_idx = i % sessions;
            let round = i / sessions;
            let corpus = (session_idx as u64) << 32 | (round / repeat) as u64;
            let tokens = *tokens_of.entry(corpus).or_insert_with(|| {
                generator
                    .request(corpus, spec.candidates)
                    .sequences()
                    .iter()
                    .map(Vec::len)
                    .sum()
            });
            let is_high = spec.is_high(i);
            let (priority, deadline_us) = if is_high {
                (Priority::High, spec.high_deadline_us)
            } else {
                (spec.priority, spec.deadline_us)
            };
            stream.push_back(SimRequest {
                id: i as u64,
                session: session_idx as u64,
                corpus,
                key: corpus ^ 0x5E55_1011,
                tokens,
                priority,
                deadline_us,
                cancel_after_us: None,
                high_class: is_high,
                client: Some(c),
            });
            i += clients;
        }
    }
    streams
}

/// Simulates `spec` against a virtual server with configuration `serve`
/// and the given service-time model, reporting the same aggregates as
/// a measured `run_closed_loop`.
pub fn simulate_closed_loop(
    config: &ModelConfig,
    spec: &LoadSpec,
    serve: &ServeConfig,
    service: ServiceModel,
    label: &str,
) -> SimReport {
    simulate_closed_loop_with(config, spec, serve, service, label, None)
}

/// [`simulate_closed_loop`] with a shard-fault model injected.
pub fn simulate_closed_loop_with(
    config: &ModelConfig,
    spec: &LoadSpec,
    serve: &ServeConfig,
    service: ServiceModel,
    label: &str,
    faults: Option<crate::sim::SimFaults>,
) -> SimReport {
    let streams = client_streams(config, spec);
    Simulation::run_closed_with(
        serve,
        service,
        streams,
        label,
        spec.high_fraction > 0.0,
        faults,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Calibration;
    use prism_model::ModelArch;

    fn test_model() -> ModelConfig {
        ModelConfig::test_config(ModelArch::DecoderOnly, 6)
    }

    fn flat(us: f64) -> ServiceModel {
        ServiceModel::calibrated(Calibration {
            batch_fixed_us: us,
            per_request_us: 0.0,
            per_token_us: 0.0,
        })
    }

    #[test]
    fn streams_partition_the_request_space() {
        let spec = LoadSpec {
            requests: 23,
            clients: 4,
            ..Default::default()
        };
        let streams = client_streams(&test_model(), &spec);
        assert_eq!(streams.len(), 4);
        let mut ids: Vec<u64> = streams.iter().flatten().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..23).collect::<Vec<u64>>());
        // Client striding: client 1 owns 1, 5, 9, ...
        assert_eq!(streams[1].front().unwrap().id, 1);
        assert_eq!(streams[1][1].id, 5);
    }

    #[test]
    fn corpus_rotation_matches_load_generator() {
        let spec = LoadSpec {
            requests: 16,
            clients: 1,
            sessions: 2,
            corpus_repeat: 2,
            ..Default::default()
        };
        let streams = client_streams(&test_model(), &spec);
        let all: Vec<&SimRequest> = streams[0].iter().collect();
        // i=0: session 0, round 0 -> corpus (0<<32)|0.
        // i=2: session 0, round 1 -> still corpus 0 (repeat 2).
        // i=4: session 0, round 2 -> corpus (0<<32)|1.
        assert_eq!(all[0].corpus, 0);
        assert_eq!(all[2].corpus, 0);
        assert_eq!(all[4].corpus, 1);
        assert_eq!(all[0].key, all[2].key, "repeats share the cache key");
        assert_eq!(all[1].session, 1);
        assert!(all.iter().all(|r| r.tokens > 0));
    }

    #[test]
    fn high_fraction_decorates_like_the_load_spec() {
        let spec = LoadSpec {
            requests: 20,
            clients: 2,
            high_fraction: 0.25,
            high_deadline_us: Some(5_000_000),
            ..Default::default()
        };
        let streams = client_streams(&test_model(), &spec);
        let mut by_id: Vec<&SimRequest> = streams.iter().flatten().collect();
        by_id.sort_by_key(|r| r.id);
        for r in &by_id {
            let expect_high = spec.is_high(r.id as usize);
            assert_eq!(r.high_class, expect_high, "request {}", r.id);
            if expect_high {
                assert_eq!(r.priority, Priority::High);
                assert_eq!(r.deadline_us, Some(5_000_000));
            } else {
                assert_eq!(r.priority, Priority::Normal);
                assert_eq!(r.deadline_us, None);
            }
        }
    }

    #[test]
    fn cached_spec_yields_cache_hits_in_simulation() {
        // corpus_repeat 4 on a cached config: roughly 3 of every 4
        // same-session repeats replay from the session cache.
        let spec = LoadSpec {
            requests: 48,
            clients: 4,
            corpus_repeat: 4,
            ..Default::default()
        };
        let report = simulate_closed_loop(
            &test_model(),
            &spec,
            &ServeConfig::default(),
            flat(2_000.0),
            "cached",
        );
        assert_eq!(report.completed, 48);
        assert!(
            report.stats.cache_selection_hits + report.stats.cache_embed_hits > 0,
            "repeats must hit the cache: {:?}",
            report.stats
        );
        let uncached = simulate_closed_loop(
            &test_model(),
            &LoadSpec {
                corpus_repeat: 1,
                ..spec
            },
            &ServeConfig::default(),
            flat(2_000.0),
            "uncached",
        );
        assert!(
            report.throughput_rps > uncached.throughput_rps,
            "cache hits must raise simulated throughput ({} vs {})",
            report.throughput_rps,
            uncached.throughput_rps
        );
    }

    #[test]
    fn simulated_run_is_deterministic() {
        let spec = LoadSpec {
            requests: 64,
            clients: 8,
            high_fraction: 0.1,
            high_deadline_us: Some(30_000_000),
            ..Default::default()
        };
        let model = test_model();
        let a = simulate_closed_loop(&model, &spec, &ServeConfig::default(), flat(3_000.0), "d");
        let b = simulate_closed_loop(&model, &spec, &ServeConfig::default(), flat(3_000.0), "d");
        assert_eq!(a.digest, b.digest);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
