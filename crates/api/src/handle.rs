//! The non-blocking [`SelectionHandle`] and its producer-side
//! [`Completion`].
//!
//! A handle/completion pair is the rendezvous between a caller and
//! whichever backend executes the request (a `LocalService` thread or a
//! serving worker). The caller polls or blocks on the handle; the backend
//! pushes layer-granularity progress through the completion and finishes
//! it exactly once. Cancellation flows caller → backend through the
//! shared [`CancelToken`], which the engine observes at every layer
//! boundary.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use prism_core::{CancelToken, ProgressFn, ProgressUpdate, Selection};
use serde::Serialize;

use crate::error::ServiceError;

/// Everything a finished selection carries back through the facade,
/// backend-independent.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// The selection — bit-identical to a direct engine call with the
    /// same batch, options and tag.
    pub selection: Selection,
    /// Submission index assigned by the service (1-based).
    pub ticket: u64,
    /// Microseconds spent queued before execution started.
    pub queued_us: u64,
    /// Microseconds of execution (shared across a coalesced batch).
    pub service_us: u64,
    /// Requests coalesced into the executing batch (1 for direct
    /// execution).
    pub batch_size: usize,
    /// Whether a serving-layer cache answered or accelerated the request.
    pub served_from_cache: bool,
}

/// Point-in-time progress of an in-flight selection, aggregated from the
/// engine's per-layer [`ProgressUpdate`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Progress {
    /// Layer boundaries whose pruning gate has run.
    pub layers_gated: usize,
    /// Transformer layers fully forwarded.
    pub layers_forwarded: usize,
    /// Candidates still in flight.
    pub candidates_active: usize,
    /// Candidates accepted into the top-K so far.
    pub candidates_accepted: usize,
    /// Candidates pruned so far.
    pub candidates_pruned: usize,
}

enum Slot {
    Pending,
    // Boxed: a `SelectionOutcome` is large next to the dataless states,
    // and one slot lives in every in-flight handle.
    Done(Box<Result<SelectionOutcome, ServiceError>>),
    Taken,
}

struct HandleShared {
    slot: Mutex<Slot>,
    ready: Condvar,
    cancel: CancelToken,
    progress: Mutex<Progress>,
}

impl HandleShared {
    fn take_if_done(slot: &mut Slot) -> Option<Result<SelectionOutcome, ServiceError>> {
        match std::mem::replace(slot, Slot::Taken) {
            Slot::Done(r) => Some(*r),
            Slot::Pending => {
                *slot = Slot::Pending;
                None
            }
            // Outcome already consumed: report the handle as spent
            // rather than blocking forever.
            Slot::Taken => Some(Err(ServiceError::Disconnected)),
        }
    }
}

/// A non-blocking handle to one submitted selection.
///
/// Obtained from [`crate::SelectionService::submit`]; supports `poll`,
/// `wait`, `wait_timeout`, mid-flight `cancel`, and layer-granularity
/// [`Progress`] observation. The outcome can be consumed exactly once
/// (by whichever of `poll` / `wait` / `wait_timeout` first returns it);
/// afterwards the handle reports [`ServiceError::Disconnected`].
pub struct SelectionHandle {
    shared: Arc<HandleShared>,
    ticket: u64,
    deadline: Option<Instant>,
}

impl SelectionHandle {
    /// Creates a connected handle/completion pair. `deadline` is the
    /// absolute deadline the service resolved from the request options
    /// (informational on the handle; enforcement happens in the
    /// backend).
    pub fn channel(ticket: u64, deadline: Option<Instant>) -> (SelectionHandle, Completion) {
        let shared = Arc::new(HandleShared {
            slot: Mutex::new(Slot::Pending),
            ready: Condvar::new(),
            cancel: CancelToken::new(),
            progress: Mutex::new(Progress::default()),
        });
        (
            SelectionHandle {
                shared: Arc::clone(&shared),
                ticket,
                deadline,
            },
            Completion {
                shared,
                completed: false,
            },
        )
    }

    /// The request's service-assigned submission index (1-based).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// The absolute deadline this request runs under, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Non-blocking: returns the outcome if it is ready.
    pub fn poll(&self) -> Option<Result<SelectionOutcome, ServiceError>> {
        let mut slot = self.shared.slot.lock().expect("handle lock");
        HandleShared::take_if_done(&mut slot)
    }

    /// Blocks until the outcome arrives.
    pub fn wait(self) -> Result<SelectionOutcome, ServiceError> {
        let mut slot = self.shared.slot.lock().expect("handle lock");
        loop {
            if let Some(r) = HandleShared::take_if_done(&mut slot) {
                return r;
            }
            slot = self.shared.ready.wait(slot).expect("handle lock");
        }
    }

    /// Blocks at most `timeout`; `None` means still in flight (the
    /// handle stays usable).
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Option<Result<SelectionOutcome, ServiceError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().expect("handle lock");
        loop {
            if let Some(r) = HandleShared::take_if_done(&mut slot) {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .shared
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("handle lock");
            slot = next;
        }
    }

    /// Requests cancellation. The backend observes it at the next layer
    /// boundary (or in the queue, if execution has not started) and
    /// completes the handle with [`ServiceError::Cancelled`]; if the
    /// request already finished, the existing outcome stands.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
    }

    /// The cancellation token shared with the backend.
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Latest progress snapshot (zeroed until the first layer boundary).
    pub fn progress(&self) -> Progress {
        *self.shared.progress.lock().expect("progress lock")
    }
}

impl std::fmt::Debug for SelectionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelectionHandle")
            .field("ticket", &self.ticket)
            .field("deadline", &self.deadline)
            .finish()
    }
}

/// Producer side of a [`SelectionHandle`]: owned by the backend
/// executing the request.
pub struct Completion {
    shared: Arc<HandleShared>,
    completed: bool,
}

impl Completion {
    /// The cancellation token to attach to the in-flight request.
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Whether the caller requested cancellation.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancel.is_cancelled()
    }

    /// A [`ProgressFn`] that folds engine updates into the handle's
    /// [`Progress`] snapshot — attach it to the `ActiveRequest`.
    pub fn progress_fn(&self) -> ProgressFn {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |u: ProgressUpdate| {
            let mut p = shared.progress.lock().expect("progress lock");
            p.layers_gated = p.layers_gated.max(u.layer + 1);
            p.layers_forwarded = u.layers_forwarded;
            p.candidates_active = u.active;
            p.candidates_accepted = u.accepted;
            p.candidates_pruned = u.pruned;
        })
    }

    /// Delivers the outcome and wakes every waiter. First call wins;
    /// later calls are ignored (the queue and a worker may race to
    /// answer a cancelled request).
    pub fn complete(&mut self, outcome: Result<SelectionOutcome, ServiceError>) {
        if self.completed {
            return;
        }
        self.completed = true;
        let mut slot = self.shared.slot.lock().expect("handle lock");
        if matches!(*slot, Slot::Pending) {
            *slot = Slot::Done(Box::new(outcome));
            drop(slot);
            self.shared.ready.notify_all();
        }
    }
}

/// A completion dropped without an outcome (worker death) must not hang
/// the caller: it resolves to [`ServiceError::Disconnected`].
impl Drop for Completion {
    fn drop(&mut self) {
        self.complete(Err(ServiceError::Disconnected));
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ticket: u64) -> SelectionOutcome {
        SelectionOutcome {
            selection: Selection {
                ranked: Vec::new(),
                last_scores: Vec::new(),
                coverage: 1.0,
                trace: Default::default(),
            },
            ticket,
            queued_us: 0,
            service_us: 0,
            batch_size: 1,
            served_from_cache: false,
        }
    }

    #[test]
    fn poll_then_complete_then_poll() {
        let (handle, mut completion) = SelectionHandle::channel(7, None);
        assert_eq!(handle.ticket(), 7);
        assert!(handle.poll().is_none(), "nothing ready yet");
        completion.complete(Ok(outcome(7)));
        let got = handle.poll().expect("ready").expect("ok");
        assert_eq!(got.ticket, 7);
        // Outcome is consumed exactly once.
        assert!(matches!(
            handle.poll(),
            Some(Err(ServiceError::Disconnected))
        ));
    }

    #[test]
    fn wait_blocks_until_completion() {
        let (handle, mut completion) = SelectionHandle::channel(1, None);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            completion.complete(Ok(outcome(1)));
        });
        assert_eq!(handle.wait().unwrap().ticket, 1);
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_returns_none_then_result() {
        let (handle, mut completion) = SelectionHandle::channel(2, None);
        assert!(handle.wait_timeout(Duration::from_millis(5)).is_none());
        completion.complete(Err(ServiceError::Cancelled));
        assert!(matches!(
            handle.wait_timeout(Duration::from_millis(5)),
            Some(Err(ServiceError::Cancelled))
        ));
    }

    #[test]
    fn first_completion_wins() {
        let (handle, mut completion) = SelectionHandle::channel(3, None);
        completion.complete(Err(ServiceError::Cancelled));
        completion.complete(Ok(outcome(3)));
        assert!(matches!(handle.poll(), Some(Err(ServiceError::Cancelled))));
    }

    #[test]
    fn dropped_completion_disconnects() {
        let (handle, completion) = SelectionHandle::channel(4, None);
        drop(completion);
        assert!(matches!(
            handle.poll(),
            Some(Err(ServiceError::Disconnected))
        ));
    }

    #[test]
    fn cancel_reaches_the_backend_token() {
        let (handle, completion) = SelectionHandle::channel(5, None);
        let token = completion.cancel_token();
        assert!(!token.is_cancelled());
        handle.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn progress_folds_updates() {
        let (handle, completion) = SelectionHandle::channel(6, None);
        let f = completion.progress_fn();
        f(ProgressUpdate {
            layer: 0,
            layers_forwarded: 0,
            active: 10,
            accepted: 0,
            pruned: 0,
        });
        f(ProgressUpdate {
            layer: 2,
            layers_forwarded: 2,
            active: 4,
            accepted: 2,
            pruned: 4,
        });
        let p = handle.progress();
        assert_eq!(p.layers_gated, 3);
        assert_eq!(p.layers_forwarded, 2);
        assert_eq!(p.candidates_active, 4);
        assert_eq!(p.candidates_accepted, 2);
        assert_eq!(p.candidates_pruned, 4);
    }
}
