//! Typed retry policy with decorrelated-jitter backoff.
//!
//! One policy shared by every client-side retry loop in the stack — the
//! wire client's reconnect/backpressure handling, the load generator's
//! closed loop, and the scatter coordinator's failover — so "how do we
//! retry" is decided once:
//!
//! * **Typed retryability.** Only transient errors retry
//!   ([`ServiceError::Backpressure`], [`ServiceError::Disconnected`],
//!   [`ServiceError::ShardFailure`]); terminal outcomes (`Cancelled`,
//!   `DeadlineExceeded`, `ShuttingDown`, quota, engine and config
//!   errors) surface immediately.
//! * **Server hints win.** A `Backpressure::retry_after` hint is a floor
//!   under the computed backoff — the server derived it from its queue
//!   depth and service rate, so sleeping less just burns a retry.
//! * **Decorrelated jitter.** Delays are sampled from a seeded RNG
//!   (deterministic in tests, decorrelated across clients in
//!   production) following the `min(cap, uniform(base, 3·prev))`
//!   schedule, which avoids the synchronized thundering herds a fixed
//!   exponential schedule produces.
//! * **Bounded.** Both an attempt cap and a cumulative sleep budget;
//!   whichever is hit first ends the loop with the last error.

use std::time::Duration;

use crate::ServiceError;

/// Configuration of one retry loop. Cheap to copy; construct once and
/// share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts (first try included). `1` disables
    /// retrying entirely.
    pub max_attempts: u32,
    /// Backoff floor — also the first retry's minimum sleep.
    pub base: Duration,
    /// Backoff ceiling per attempt (a server `retry_after` hint may
    /// exceed it; the server knows its queue better than the client).
    pub cap: Duration,
    /// Cumulative sleep budget across the whole loop. A retry whose
    /// delay would exceed the remaining budget is not attempted.
    pub budget: Duration,
    /// RNG seed for the jitter (deterministic schedules in tests;
    /// derive from a client id in production to decorrelate peers).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(500),
            budget: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (first failure surfaces directly).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Returns a copy with the given attempt cap.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Returns a copy with the given base/cap backoff window.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.base = base;
        self.cap = cap.max(base);
        self
    }

    /// Returns a copy with the given cumulative sleep budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Returns a copy with the given jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts a retry schedule (one per operation).
    pub fn schedule(&self) -> RetrySchedule {
        RetrySchedule {
            policy: *self,
            rng: self.seed ^ 0x9E37_79B9_7F4A_7C15,
            prev: self.base,
            attempts: 1,
            slept: Duration::ZERO,
        }
    }

    /// Runs `op` under this policy, sleeping between attempts. `op`
    /// receives the attempt index (0 = first try). Returns the first
    /// success or the last error once the policy gives up; the second
    /// tuple element is how many *retries* ran (0 = first try worked).
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, ServiceError>,
    ) -> (Result<T, ServiceError>, u32) {
        let mut schedule = self.schedule();
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return (Ok(v), attempt),
                Err(e) => match schedule.next_delay(&e) {
                    Some(delay) => {
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        attempt += 1;
                    }
                    None => return (Err(e), attempt),
                },
            }
        }
    }
}

/// Whether an error class is worth retrying at all (transient) or
/// terminal for the request.
pub fn is_retryable(e: &ServiceError) -> bool {
    matches!(
        e,
        ServiceError::Backpressure { .. }
            | ServiceError::Disconnected
            | ServiceError::ShardFailure(_)
    )
}

/// Mutable state of one retry loop: previous delay, RNG, attempt and
/// budget accounting.
#[derive(Debug, Clone)]
pub struct RetrySchedule {
    policy: RetryPolicy,
    rng: u64,
    prev: Duration,
    attempts: u32,
    slept: Duration,
}

impl RetrySchedule {
    /// Decides whether to retry after `error`: `Some(delay)` means sleep
    /// that long and try again, `None` means give up and surface the
    /// error. Consumes one attempt on `Some`.
    pub fn next_delay(&mut self, error: &ServiceError) -> Option<Duration> {
        if !is_retryable(error) {
            return None;
        }
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        // Decorrelated jitter: uniform in [base, 3·prev], capped.
        let base_us = self.policy.base.as_micros() as u64;
        let hi_us = (self.prev.as_micros() as u64)
            .saturating_mul(3)
            .max(base_us);
        let span = hi_us - base_us;
        let jitter_us = if span == 0 {
            base_us
        } else {
            base_us + self.next_u64() % (span + 1)
        };
        let mut delay = Duration::from_micros(jitter_us).min(self.policy.cap);
        // The server's hint is a floor: it knows its drain rate.
        if let Some(hint) = error.retry_after() {
            delay = delay.max(hint);
        }
        if self.slept + delay > self.policy.budget {
            return None;
        }
        self.slept += delay;
        self.prev = delay.max(self.policy.base);
        self.attempts += 1;
        Some(delay)
    }

    /// Total time this schedule has decided to sleep so far.
    pub fn slept(&self) -> Duration {
        self.slept
    }

    /// Retries consumed so far (0 = nothing retried yet).
    pub fn retries(&self) -> u32 {
        self.attempts - 1
    }

    /// splitmix64 step — deterministic, dependency-free.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backpressure(hint_ms: u64) -> ServiceError {
        ServiceError::Backpressure {
            capacity: 8,
            queue_depth: 8,
            retry_after: Duration::from_millis(hint_ms),
        }
    }

    #[test]
    fn terminal_errors_never_retry() {
        let policy = RetryPolicy::default();
        for e in [
            ServiceError::Cancelled,
            ServiceError::DeadlineExceeded,
            ServiceError::ShuttingDown,
            ServiceError::QuotaExceeded {
                tenant: "t".into(),
                limit: 1,
            },
            ServiceError::Engine("boom".into()),
            ServiceError::Config("bad".into()),
        ] {
            assert!(!is_retryable(&e), "{e}");
            assert!(policy.schedule().next_delay(&e).is_none(), "{e}");
        }
    }

    #[test]
    fn attempt_cap_bounds_the_loop() {
        let policy = RetryPolicy::default().with_max_attempts(3);
        let mut s = policy.schedule();
        assert!(s.next_delay(&ServiceError::Disconnected).is_some());
        assert!(s.next_delay(&ServiceError::Disconnected).is_some());
        assert!(s.next_delay(&ServiceError::Disconnected).is_none());
        assert_eq!(s.retries(), 2);
    }

    #[test]
    fn server_hint_is_a_floor() {
        let policy = RetryPolicy::default()
            .with_backoff(Duration::from_micros(10), Duration::from_micros(50));
        let mut s = policy.schedule();
        let d = s.next_delay(&backpressure(25)).unwrap();
        assert!(d >= Duration::from_millis(25), "{d:?} ignores the hint");
    }

    #[test]
    fn budget_caps_cumulative_sleep() {
        let policy = RetryPolicy::default()
            .with_max_attempts(100)
            .with_backoff(Duration::from_millis(1), Duration::from_millis(1))
            .with_budget(Duration::from_millis(3));
        let mut s = policy.schedule();
        let mut total = Duration::ZERO;
        let mut n = 0;
        while let Some(d) = s.next_delay(&ServiceError::Disconnected) {
            total += d;
            n += 1;
            assert!(n < 100, "budget never engaged");
        }
        assert!(total <= Duration::from_millis(3));
        assert_eq!(total, s.slept());
        assert_eq!(n, 3, "1ms cap + 3ms budget = 3 retries");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let policy = RetryPolicy::default().with_max_attempts(5);
        let collect = |seed: u64| {
            let mut s = policy.with_seed(seed).schedule();
            let mut out = Vec::new();
            while let Some(d) = s.next_delay(&ServiceError::Disconnected) {
                out.push(d);
            }
            out
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8), "different seeds must decorrelate");
    }

    #[test]
    fn delays_stay_within_base_cap_window() {
        let base = Duration::from_micros(100);
        let cap = Duration::from_millis(5);
        let policy = RetryPolicy::default()
            .with_max_attempts(50)
            .with_backoff(base, cap)
            .with_budget(Duration::from_secs(10));
        let mut s = policy.schedule();
        while let Some(d) = s.next_delay(&ServiceError::Disconnected) {
            assert!(d >= base && d <= cap, "{d:?} outside [{base:?}, {cap:?}]");
        }
    }

    #[test]
    fn run_returns_success_and_retry_count() {
        let policy = RetryPolicy::default()
            .with_max_attempts(4)
            .with_backoff(Duration::from_micros(1), Duration::from_micros(5));
        let (out, retries) = policy.run(|attempt| {
            if attempt < 2 {
                Err(ServiceError::Disconnected)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(retries, 2);

        let (out, retries) = policy.run(|_| Err::<(), _>(ServiceError::Engine("always".into())));
        assert!(matches!(out, Err(ServiceError::Engine(_))));
        assert_eq!(retries, 0, "terminal errors must not retry");
    }
}
