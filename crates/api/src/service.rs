//! The [`SelectionService`] trait and its direct-engine implementation,
//! [`LocalService`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prism_core::{PrismEngine, RequestOptions};
use prism_model::SequenceBatch;

use crate::error::ServiceError;
use crate::handle::{Completion, SelectionHandle, SelectionOutcome};

/// One facade over every way to run a selection.
///
/// Implemented by [`LocalService`] (a thread over a shared
/// [`PrismEngine`]) and by `prism-serve`'s `RemoteService` (the batched
/// multi-tenant server), so applications, examples and CLI commands
/// program against a single submit → [`SelectionHandle`] surface and
/// pick the backend at construction time. Same batch, options and tag
/// produce bit-identical selections on every backend.
pub trait SelectionService {
    /// Submits a selection; returns a non-blocking handle.
    ///
    /// Fails fast with [`ServiceError::DeadlineExceeded`] when the
    /// request's deadline has already passed at admission and with
    /// [`ServiceError::Backpressure`] when the backend is at capacity.
    fn submit(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> Result<SelectionHandle, ServiceError>;

    /// Submits and blocks for the outcome (the drop-in replacement for
    /// the legacy blocking call surfaces).
    fn select(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> Result<SelectionOutcome, ServiceError> {
        self.submit(batch, options)?.wait()
    }
}

/// Resolves a request's relative deadline budget at admission time —
/// the one rule every backend applies: a zero budget is already expired
/// and rejected fail-fast; otherwise the absolute deadline is `now +
/// deadline_us` (or `None` when the request has no deadline).
pub fn admission_deadline(
    options: &RequestOptions,
    now: Instant,
) -> Result<Option<Instant>, ServiceError> {
    if options.deadline_us == Some(0) {
        return Err(ServiceError::DeadlineExceeded);
    }
    Ok(options
        .deadline_us
        .map(|us| now + Duration::from_micros(us)))
}

/// [`SelectionService`] over a directly-owned engine: each submission
/// runs on its own thread with the engine shared behind an `Arc`, giving
/// single-process callers the same non-blocking handles, cancellation
/// points and progress events the server provides — without a queue or
/// scheduler in between.
pub struct LocalService {
    engine: Arc<PrismEngine>,
    ticket: AtomicU64,
}

impl LocalService {
    /// Wraps an engine.
    pub fn new(engine: PrismEngine) -> Self {
        LocalService {
            engine: Arc::new(engine),
            ticket: AtomicU64::new(0),
        }
    }

    /// Wraps an already-shared engine.
    pub fn from_shared(engine: Arc<PrismEngine>) -> Self {
        LocalService {
            engine,
            ticket: AtomicU64::new(0),
        }
    }

    /// The engine behind this service.
    pub fn engine(&self) -> &Arc<PrismEngine> {
        &self.engine
    }
}

impl SelectionService for LocalService {
    fn submit(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> Result<SelectionHandle, ServiceError> {
        let submitted = Instant::now();
        let deadline = admission_deadline(&options, submitted)?;
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed) + 1;
        let (handle, completion) = SelectionHandle::channel(ticket, deadline);
        let engine = Arc::clone(&self.engine);
        std::thread::Builder::new()
            .name(format!("prism-local-{ticket}"))
            .spawn(move || {
                run_one(
                    &engine, &batch, options, completion, deadline, ticket, submitted,
                );
            })
            .map_err(|e| ServiceError::Config(format!("spawning local worker: {e}")))?;
        Ok(handle)
    }
}

/// Executes one request on the calling thread and completes the handle.
fn run_one(
    engine: &PrismEngine,
    batch: &SequenceBatch,
    options: RequestOptions,
    mut completion: Completion,
    deadline: Option<Instant>,
    ticket: u64,
    submitted: Instant,
) {
    let queued_us = submitted.elapsed().as_micros() as u64;
    let t0 = Instant::now();
    let result = (|| {
        let mut req = engine.plan_request(batch, options)?;
        req.attach_cancel(completion.cancel_token());
        if let Some(d) = deadline {
            req.attach_deadline(d);
        }
        req.attach_progress(completion.progress_fn());
        let mut pool = Vec::new();
        engine.run_planned(std::slice::from_mut(&mut req), &mut pool)?;
        engine.finalize_request(req)
    })();
    let service_us = t0.elapsed().as_micros() as u64;
    completion.complete(
        result
            .map_err(ServiceError::from)
            .map(|selection| SelectionOutcome {
                selection,
                ticket,
                queued_us,
                service_us,
                batch_size: 1,
                served_from_cache: false,
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_resolution() {
        let now = Instant::now();
        assert!(admission_deadline(&RequestOptions::top_k(1), now)
            .unwrap()
            .is_none());
        let d = admission_deadline(&RequestOptions::top_k(1).with_deadline_us(1_000), now).unwrap();
        assert_eq!(d, Some(now + Duration::from_micros(1_000)));
        assert!(matches!(
            admission_deadline(&RequestOptions::top_k(1).with_deadline_us(0), now),
            Err(ServiceError::DeadlineExceeded)
        ));
    }
}
