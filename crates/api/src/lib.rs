//! `prism-api`: the unified [`SelectionService`] facade over every way
//! of running a PRISM selection.
//!
//! Before this crate, callers picked one of three diverging surfaces up
//! front — direct [`PrismEngine`](prism_core::PrismEngine) calls, the
//! phase-level `plan_request → gate → forward → finalize` loop, or the
//! serving front-end's sessions — and each had its own blocking model
//! and error type. The facade collapses them:
//!
//! ```text
//!           SelectionService::submit(batch, RequestOptions)
//!                │                               │
//!          [LocalService]                 [RemoteService]      (prism-serve)
//!        thread + Arc<engine>        queue → scheduler → worker
//!                │                               │
//!                └────────── SelectionHandle ────┘
//!                  poll / wait / wait_timeout / cancel / progress
//! ```
//!
//! * **Non-blocking handles** ([`SelectionHandle`]): submissions return
//!   immediately; the outcome is consumed once via `poll`, `wait` or
//!   `wait_timeout`.
//! * **Mid-flight cancellation**: `cancel()` flips a
//!   [`CancelToken`] the engine checks at every
//!   layer boundary, releasing spill files and hidden-state bytes at the
//!   cancellation point rather than at the end of the pass.
//! * **Deadlines and priorities** ride on
//!   [`RequestOptions`] (`deadline_us`,
//!   `priority`), honored by the serving scheduler's priority-then-EDF
//!   policy and enforced mid-flight by the engine.
//! * **Progress events**: layer-granularity [`Progress`] (layers gated /
//!   forwarded, candidates pruned so far) without polling the engine.
//! * **One error hierarchy** ([`ServiceError`]): typed
//!   `DeadlineExceeded` / `Cancelled` / `Backpressure { retry_after }`
//!   across backends, all `std::error::Error`.
//!
//! Results are bit-identical across backends for the same batch,
//! options and tag — the conformance property the serving layer already
//! guaranteed, now stated once at the facade.

mod error;
mod handle;
mod retry;
mod service;

pub use error::ServiceError;
pub use handle::{Completion, Progress, SelectionHandle, SelectionOutcome};
pub use retry::{is_retryable, RetryPolicy, RetrySchedule};
pub use service::{admission_deadline, LocalService, SelectionService};

// Re-exported so facade users need only this crate plus a batch type.
pub use prism_core::{CancelToken, ComputePrecision, Priority, RequestOptions, SpillPrecision};

/// Result alias for facade operations.
pub type Result<T> = std::result::Result<T, ServiceError>;
