//! The typed error hierarchy of the [`crate::SelectionService`] facade.

use std::time::Duration;

use prism_core::PrismError;

/// Everything that can go wrong between submitting a request and reading
/// its outcome — one hierarchy shared by every service backend (direct
/// engine, serving front-end), replacing the previous per-layer ad-hoc
/// error enums.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The service is at capacity; retry after the hint. The hint is
    /// derived from the current queue depth and observed service rate,
    /// so callers can back off proportionally instead of hammering.
    Backpressure {
        /// Queue capacity that was exhausted.
        capacity: usize,
        /// Requests queued at rejection time.
        queue_depth: usize,
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
    /// The request's deadline passed: at admission, while queued, or
    /// mid-flight (the engine aborts at a layer boundary).
    DeadlineExceeded,
    /// The request was cancelled via [`crate::SelectionHandle::cancel`];
    /// its spill file and scratch were released at the cancellation
    /// point.
    Cancelled,
    /// The service is shutting down (or has shut down).
    ShuttingDown,
    /// The worker or thread serving this request disappeared before
    /// producing an outcome.
    Disconnected,
    /// The tenant exceeded its in-flight quota; finish or cancel an
    /// outstanding request before submitting more. Unlike
    /// [`ServiceError::Backpressure`] this is per-tenant, so one noisy
    /// session cannot convert the shared queue's headroom into its own.
    QuotaExceeded {
        /// Tenant (session) the quota applies to.
        tenant: String,
        /// The configured in-flight ceiling that was hit.
        limit: usize,
    },
    /// A scatter-gather shard could not serve its part of the request
    /// (dead or unreachable shard). Surfaced immediately — the merge
    /// never blocks on a failed shard.
    ShardFailure(String),
    /// The engine rejected or failed the request.
    Engine(String),
    /// Invalid service configuration.
    Config(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Backpressure {
                capacity,
                queue_depth,
                retry_after,
            } => write!(
                f,
                "service at capacity ({queue_depth}/{capacity} queued); retry in ~{} ms",
                retry_after.as_millis().max(1)
            ),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Cancelled => write!(f, "request cancelled"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Disconnected => write!(f, "worker disconnected before replying"),
            ServiceError::QuotaExceeded { tenant, limit } => {
                write!(f, "tenant {tenant:?} is at its in-flight quota ({limit})")
            }
            ServiceError::ShardFailure(s) => write!(f, "shard failure: {s}"),
            ServiceError::Engine(e) => write!(f, "engine: {e}"),
            ServiceError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<PrismError> for ServiceError {
    fn from(e: PrismError) -> Self {
        match e {
            PrismError::Cancelled => ServiceError::Cancelled,
            PrismError::DeadlineExceeded => ServiceError::DeadlineExceeded,
            PrismError::ShardFailure(s) => ServiceError::ShardFailure(s),
            other => ServiceError::Engine(other.to_string()),
        }
    }
}

impl ServiceError {
    /// The retry hint of a [`ServiceError::Backpressure`], if that is
    /// what this error is.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServiceError::Backpressure { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_retry_hint() {
        let e = ServiceError::Backpressure {
            capacity: 8,
            queue_depth: 8,
            retry_after: Duration::from_millis(12),
        };
        let s = e.to_string();
        assert!(s.contains("8/8"), "{s}");
        assert!(s.contains("12 ms"), "{s}");
        assert_eq!(e.retry_after(), Some(Duration::from_millis(12)));
        assert_eq!(ServiceError::Cancelled.retry_after(), None);
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ServiceError::DeadlineExceeded);
        takes_error(&ServiceError::Cancelled);
    }

    #[test]
    fn maps_engine_abort_errors() {
        assert!(matches!(
            ServiceError::from(PrismError::Cancelled),
            ServiceError::Cancelled
        ));
        assert!(matches!(
            ServiceError::from(PrismError::DeadlineExceeded),
            ServiceError::DeadlineExceeded
        ));
        assert!(matches!(
            ServiceError::from(PrismError::InvalidRequest("x".into())),
            ServiceError::Engine(_)
        ));
    }
}
