//! `LocalService` conformance: parity with direct engine calls,
//! cancellation, deadlines and progress over the facade.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prism_api::{LocalService, Priority, RequestOptions, SelectionService, ServiceError};
use prism_core::{EngineOptions, PrismEngine};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 77).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-api-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    (config, path)
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap()
}

fn batches(config: &ModelConfig, n: usize) -> Vec<SequenceBatch> {
    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 0xA11CE);
    (0..n)
        .map(|i| SequenceBatch::new(&generator.request(i as u64, 10).sequences()).unwrap())
        .collect()
}

#[test]
fn outcomes_match_direct_engine_calls_bit_for_bit() {
    let (config, path) = fixture("parity");
    let reference = engine(&config, &path);
    let service = LocalService::new(engine(&config, &path));
    for (i, batch) in batches(&config, 4).into_iter().enumerate() {
        let options = RequestOptions::tagged(3, i as u64 + 1);
        let direct = reference.select_with(&batch, options.clone()).unwrap();
        let outcome = service.select(batch, options).unwrap();
        let bits = |s: &prism_core::Selection| {
            (
                s.ranked
                    .iter()
                    .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
                    .collect::<Vec<_>>(),
                s.last_scores
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(bits(&outcome.selection), bits(&direct), "request {i}");
        assert_eq!(outcome.batch_size, 1);
        assert!(!outcome.served_from_cache);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn handles_are_non_blocking_and_report_progress() {
    let (config, path) = fixture("progress");
    let service = LocalService::new(engine(&config, &path));
    let batch = batches(&config, 1).remove(0);
    let handle = service.submit(batch, RequestOptions::tagged(3, 9)).unwrap();
    assert_eq!(handle.ticket(), 1);
    let outcome = handle
        .wait_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap();
    // Progress observation happens through the attached sink; by
    // completion it must reflect the executed depth exactly.
    assert!(outcome.selection.trace.executed_layers > 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cancellation_mid_flight_yields_cancelled() {
    let (config, path) = fixture("cancel");
    let service = LocalService::new(engine(&config, &path));
    let batch = batches(&config, 1).remove(0);
    // Cancel before the worker thread reaches its first layer boundary:
    // submit, cancel immediately. Depending on scheduling the request
    // may have already finished — both outcomes are legal, but a
    // cancelled one must surface as `ServiceError::Cancelled`.
    let handle = service.submit(batch, RequestOptions::top_k(2)).unwrap();
    handle.cancel();
    match handle.wait() {
        Err(ServiceError::Cancelled) | Ok(_) => {}
        other => panic!("expected Cancelled or a finished outcome, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn progress_sink_sees_layer_granularity_updates() {
    let (config, path) = fixture("sink");
    let service = LocalService::new(engine(&config, &path));
    let batch = batches(&config, 1).remove(0);
    let handle = service.submit(batch, RequestOptions::tagged(4, 3)).unwrap();
    let outcome = handle.wait_timeout(Duration::from_secs(30));
    // The final progress snapshot stays readable after the outcome was
    // taken through `wait_timeout(&self)`.
    let progress = handle.progress();
    let outcome = outcome.unwrap().unwrap();
    assert_eq!(
        progress.layers_forwarded,
        outcome.selection.trace.executed_layers
    );
    assert!(progress.layers_gated >= progress.layers_forwarded);
    // Finalize promotes remaining survivors after the last boundary, so
    // the snapshot's accepted count never exceeds the final ranking.
    assert!(progress.candidates_accepted <= outcome.selection.ranked.len());
    assert!(
        progress.candidates_pruned + progress.candidates_accepted + progress.candidates_active
            <= batches(&config, 1)[0].num_sequences(),
        "progress counts can never exceed the candidate set"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn expired_deadline_rejected_at_admission() {
    let (config, path) = fixture("deadline");
    let service = LocalService::new(engine(&config, &path));
    let batch = batches(&config, 1).remove(0);
    let err = service
        .submit(batch, RequestOptions::top_k(2).with_deadline_us(0))
        .unwrap_err();
    assert!(matches!(err, ServiceError::DeadlineExceeded));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn generous_deadline_and_priority_do_not_change_results() {
    let (config, path) = fixture("prio");
    let reference = engine(&config, &path);
    let service = LocalService::new(engine(&config, &path));
    let batch = batches(&config, 1).remove(0);
    let direct = reference
        .select_with(&batch, RequestOptions::tagged(3, 5))
        .unwrap();
    let outcome = service
        .select(
            batch,
            RequestOptions::tagged(3, 5)
                .with_priority(Priority::High)
                .with_deadline_us(60_000_000),
        )
        .unwrap();
    assert_eq!(
        outcome.selection.top_ids(),
        direct.top_ids(),
        "priority/deadline are scheduling hints, never result inputs"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_submissions_all_complete() {
    let (config, path) = fixture("fanout");
    let service = Arc::new(LocalService::new(engine(&config, &path)));
    let done = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = batches(&config, 6)
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            service
                .submit(b, RequestOptions::tagged(2, i as u64 + 100))
                .unwrap()
        })
        .collect();
    for h in handles {
        h.wait().unwrap();
        done.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(done.load(Ordering::Relaxed), 6);
    std::fs::remove_file(&path).unwrap();
}
