//! Property tests for the priority-then-EDF scheduler invariants:
//!
//! 1. coalesced batches never exceed the token budget (except a
//!    mandatory singleton for an oversized request) or the request cap,
//! 2. the flush set is a maximal prefix of the scheduling order
//!    (priority, then earliest deadline, then FIFO),
//! 3. with a uniform queue (one class, no deadlines) the policy is
//!    exactly the historical contiguous FIFO prefix — the property the
//!    serving conformance suite's bit-identical guarantee rides on,
//! 4. no request starves: anything older than the starvation bound
//!    outranks every class,
//! 5. waiting is only allowed when the whole queue fits, nothing is
//!    urgent, and the oldest request is inside the age bound.

use prism_core::Priority;
use prism_serve::{BatchPlanner, PlanDecision, QueueItem};
use proptest::prelude::*;

/// Builds queue items from flat tuples: `(tokens, age, class, deadline)`
/// with `class % 3` mapping to a priority and `deadline == 0` meaning
/// none.
fn items(raw: &[(usize, u64, u8, u64)]) -> Vec<QueueItem> {
    raw.iter()
        .map(|&(tokens, age_micros, class, deadline)| QueueItem {
            tokens,
            age_micros,
            priority: match class % 3 {
                0 => Priority::Bulk,
                1 => Priority::Normal,
                _ => Priority::High,
            },
            deadline_micros: (deadline > 0).then_some(deadline),
        })
        .collect()
}

/// The reference FIFO-prefix policy (the pre-priority scheduler).
fn fifo_prefix(queue: &[QueueItem], max_requests: usize, max_tokens: usize) -> usize {
    let mut tokens = 0_usize;
    let mut n = 0_usize;
    for q in queue.iter().take(max_requests.max(1)) {
        if n > 0 && tokens + q.tokens > max_tokens {
            break;
        }
        tokens += q.tokens;
        n += 1;
    }
    n.max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn budget_and_caps_respected(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..3_000,
    ) {
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: max_wait,
            starvation_age_micros: 4_000,
            priority_aware: true,
        };
        match planner.decide(&queue) {
            PlanDecision::Flush(set) => {
                prop_assert!(!set.is_empty(), "a non-empty queue must never flush nothing");
                prop_assert!(set.len() <= queue.len());
                prop_assert!(set.len() <= max_requests, "request cap violated");
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), set.len(), "duplicate positions in flush set");
                prop_assert!(*sorted.last().unwrap() < queue.len(), "position out of range");
                let tokens: usize = set.iter().map(|&i| queue[i].tokens).sum();
                // The token budget may only be exceeded by a mandatory
                // singleton (one request alone larger than the budget).
                prop_assert!(
                    tokens <= max_tokens || set.len() == 1,
                    "token budget violated: {} > {} with n={}",
                    tokens, max_tokens, set.len()
                );
            }
            PlanDecision::Wait(w) => {
                // Waiting is only allowed while the whole queue fits and
                // could still grow...
                let total: usize = queue.iter().map(|q| q.tokens).sum();
                prop_assert!(queue.len() < max_requests);
                prop_assert!(total < max_tokens);
                // ...nothing urgent is queued...
                for q in &queue {
                    prop_assert!(q.priority != Priority::High, "High must not wait");
                    prop_assert!(
                        q.deadline_micros.is_none_or(|d| d > max_wait),
                        "deadline inside the bound must not wait"
                    );
                }
                // ...and never beyond the age bound of the oldest request.
                let oldest = queue[0].age_micros;
                prop_assert!(oldest < max_wait, "aged request must flush, not wait");
                prop_assert_eq!(oldest + w, max_wait, "wait must end exactly at the bound");
            }
        }
    }

    #[test]
    fn flush_is_a_maximal_prefix_of_the_scheduling_order(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
    ) {
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: 0,
            starvation_age_micros: 4_000,
            priority_aware: true,
        };
        let order = planner.order(&queue);
        match planner.decide(&queue) {
            PlanDecision::Flush(set) => {
                // The flush set is a *prefix* of the scheduling order:
                // the planner never skips over an inadmissible request
                // to admit one scheduled behind it.
                prop_assert_eq!(&set[..], &order[..set.len()],
                    "flush set must be the leading slice of the order");
                if set.len() < order.len() && set.len() < max_requests {
                    let tokens: usize = set.iter().map(|&i| queue[i].tokens).sum();
                    let next = queue[order[set.len()]].tokens;
                    prop_assert!(
                        tokens + next > max_tokens,
                        "prefix not maximal: {} + {} <= {}", tokens, next, max_tokens
                    );
                }
            }
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }

    #[test]
    fn uniform_queue_degrades_to_exact_fifo_prefix(
        raw in prop::collection::vec((1_usize..400, 0_u64..3_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
    ) {
        // One class, no deadlines, nobody starved: the priority policy
        // must be indistinguishable from the historical FIFO scheduler.
        let queue: Vec<QueueItem> =
            raw.iter().map(|&(t, a)| QueueItem::plain(t, a)).collect();
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: 0,
            starvation_age_micros: 1_000_000,
            priority_aware: true,
        };
        match planner.decide(&queue) {
            PlanDecision::Flush(set) => {
                let expected: Vec<usize> =
                    (0..fifo_prefix(&queue, max_requests, max_tokens)).collect();
                prop_assert_eq!(set, expected, "uniform load must stay pure FIFO");
            }
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }

    #[test]
    fn priority_order_is_priority_then_edf_then_fifo(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..3_000, 0_u8..3, 0_u64..8_000), 2..24),
    ) {
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests: 8,
            max_tokens: 600,
            max_wait_micros: 0,
            starvation_age_micros: u64::MAX,
            priority_aware: true,
        };
        let order = planner.order(&queue);
        for pair in order.windows(2) {
            let (a, b) = (&queue[pair[0]], &queue[pair[1]]);
            // Priority classes never interleave out of order...
            prop_assert!(a.priority >= b.priority,
                "{:?} scheduled after {:?}", b.priority, a.priority);
            if a.priority == b.priority {
                // ...EDF within a class (None = infinitely late)...
                let da = a.deadline_micros.unwrap_or(u64::MAX);
                let db = b.deadline_micros.unwrap_or(u64::MAX);
                prop_assert!(da <= db, "EDF violated: {da} after {db}");
                // ...and FIFO on exact ties.
                if da == db {
                    prop_assert!(pair[0] < pair[1], "FIFO tie-break violated");
                }
            }
        }
    }

    #[test]
    fn aged_head_never_waits(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..2_000,
    ) {
        // Force the head request to be at (or past) the age bound.
        let mut raw = raw;
        raw[0].1 = max_wait + raw[0].1 % 7;
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: max_wait,
            starvation_age_micros: 1_000_000,
            priority_aware: true,
        };
        prop_assert!(
            matches!(planner.decide(&queue), PlanDecision::Flush(_)),
            "a request at the age bound must be flushed"
        );
    }

    #[test]
    fn starved_requests_are_admitted_first(
        raw in prop::collection::vec(
            (1_usize..100, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        starved_at in 0_usize..24,
    ) {
        let mut raw = raw;
        let starved_at = starved_at % raw.len();
        raw[starved_at].1 = 60_000; // far past the starvation bound
        raw[starved_at].2 = 0; // even as Bulk
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests: 4,
            max_tokens: 600,
            max_wait_micros: 0,
            starvation_age_micros: 50_000,
            priority_aware: true,
        };
        match planner.decide(&queue) {
            PlanDecision::Flush(set) => prop_assert!(
                set.contains(&starved_at),
                "starved request {} missing from flush set {:?}", starved_at, set
            ),
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }
}
