//! Property tests for the scheduler invariants the serving layer
//! guarantees:
//!
//! 1. coalesced batches never exceed the token budget (except a
//!    mandatory singleton for an oversized request),
//! 2. no request starves past the age bound,
//! 3. batches are contiguous FIFO prefixes (so per-session order is
//!    submission order),
//! 4. a full queue answers with backpressure instead of panicking.

use prism_serve::{BatchPlanner, PlanDecision};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn budget_and_caps_respected(
        queue in prop::collection::vec((1_usize..400, 0_u64..5_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..3_000,
    ) {
        let planner = BatchPlanner { max_requests, max_tokens, max_wait_micros: max_wait };
        match planner.decide(&queue) {
            PlanDecision::Flush(n) => {
                prop_assert!(n >= 1, "a non-empty queue must never flush nothing");
                prop_assert!(n <= queue.len());
                prop_assert!(n <= max_requests, "request cap violated: {n} > {max_requests}");
                let tokens: usize = queue[..n].iter().map(|&(t, _)| t).sum();
                // The token budget may only be exceeded by a mandatory
                // singleton (one request alone larger than the budget).
                prop_assert!(
                    tokens <= max_tokens || n == 1,
                    "token budget violated: {tokens} > {max_tokens} with n={n}"
                );
            }
            PlanDecision::Wait(w) => {
                // Waiting is only allowed while the whole queue fits and
                // could still grow...
                let total: usize = queue.iter().map(|&(t, _)| t).sum();
                prop_assert!(queue.len() < max_requests);
                prop_assert!(total < max_tokens);
                // ...and never beyond the age bound of the oldest request.
                let oldest = queue[0].1;
                prop_assert!(oldest < max_wait, "aged request must flush, not wait");
                prop_assert_eq!(oldest + w, max_wait, "wait must end exactly at the bound");
            }
        }
    }

    #[test]
    fn aged_head_never_waits(
        queue in prop::collection::vec((1_usize..400, 0_u64..5_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..2_000,
    ) {
        // Force the head request to be at (or past) the age bound.
        let mut queue = queue;
        queue[0].1 = max_wait + queue[0].1 % 7;
        let planner = BatchPlanner { max_requests, max_tokens, max_wait_micros: max_wait };
        prop_assert!(
            matches!(planner.decide(&queue), PlanDecision::Flush(_)),
            "a request at the age bound must be flushed"
        );
    }

    #[test]
    fn flush_is_the_maximal_admissible_prefix(
        queue in prop::collection::vec((1_usize..400, 0_u64..5_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
    ) {
        // With no wait allowance the planner must flush immediately, and
        // the prefix must be maximal: the next request (if any) would
        // break a cap. FIFO/contiguity holds by construction — the
        // decision is a prefix length, never a subset.
        let planner = BatchPlanner { max_requests, max_tokens, max_wait_micros: 0 };
        match planner.decide(&queue) {
            PlanDecision::Flush(n) => {
                if n < queue.len() {
                    let tokens: usize = queue[..n].iter().map(|&(t, _)| t).sum();
                    let next = queue[n].0;
                    prop_assert!(
                        n == max_requests || tokens + next > max_tokens,
                        "prefix of {n} not maximal: caps {max_requests}/{max_tokens}, \
                         tokens {tokens}, next {next}"
                    );
                }
            }
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }
}
