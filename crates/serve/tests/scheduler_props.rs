//! Property tests for the priority-then-EDF scheduler invariants:
//!
//! 1. coalesced batches never exceed the token budget (except a
//!    mandatory singleton for an oversized request) or the request cap,
//! 2. the flush set is a maximal prefix of the scheduling order
//!    (priority, then earliest deadline, then FIFO),
//! 3. with a uniform queue (one class, no deadlines) the policy is
//!    exactly the historical contiguous FIFO prefix — the property the
//!    serving conformance suite's bit-identical guarantee rides on,
//! 4. no request starves: anything older than the starvation bound
//!    outranks every class,
//! 5. waiting is only allowed when the whole queue fits, nothing is
//!    urgent, and the oldest request is inside the age bound,
//! 6. the explicit-clock API is exactly equivalent to the historical
//!    age-based planner (the refactor that lets `prism-metasim` drive
//!    production planner code changed no decisions).

use prism_core::Priority;
use prism_serve::{BatchPlanner, PlanDecision, QueueItem};
use proptest::prelude::*;

/// The clock reading every scenario below is evaluated at. Raw tuples
/// describe items by *age* and *deadline slack*; `items` converts them
/// to the absolute timestamps the planner consumes.
const NOW: u64 = 10_000_000;

/// Builds queue items from flat tuples: `(tokens, age, class, slack)`
/// with `class % 3` mapping to a priority and `slack == 0` meaning no
/// deadline (otherwise the deadline is `slack` microseconds past `NOW`).
fn items(raw: &[(usize, u64, u8, u64)]) -> Vec<QueueItem> {
    raw.iter()
        .map(|&(tokens, age_micros, class, slack)| QueueItem {
            tokens,
            enqueued_micros: NOW - age_micros,
            priority: match class % 3 {
                0 => Priority::Bulk,
                1 => Priority::Normal,
                _ => Priority::High,
            },
            deadline_micros: (slack > 0).then_some(NOW + slack),
        })
        .collect()
}

/// The reference FIFO-prefix policy (the pre-priority scheduler).
fn fifo_prefix(queue: &[QueueItem], max_requests: usize, max_tokens: usize) -> usize {
    let mut tokens = 0_usize;
    let mut n = 0_usize;
    for q in queue.iter().take(max_requests.max(1)) {
        if n > 0 && tokens + q.tokens > max_tokens {
            break;
        }
        tokens += q.tokens;
        n += 1;
    }
    n.max(1)
}

/// The historical age-based planner, reproduced verbatim from the
/// pre-refactor implementation (ages and deadline slacks precomputed by
/// the caller at snapshot time). The regression property below pins the
/// explicit-clock planner to this oracle, proving the refactor changed
/// no server behaviour.
mod oracle {
    use prism_core::Priority;

    pub struct AgedItem {
        pub tokens: usize,
        pub age_micros: u64,
        pub priority: Priority,
        /// Microseconds *until* the deadline (the old convention).
        pub remaining_micros: Option<u64>,
    }

    pub struct AgedPlanner {
        pub max_requests: usize,
        pub max_tokens: usize,
        pub max_wait_micros: u64,
        pub starvation_age_micros: u64,
        pub priority_aware: bool,
    }

    #[derive(Debug)]
    pub enum AgedDecision {
        Flush(Vec<usize>),
        Wait(u64),
    }

    impl AgedPlanner {
        pub fn order(&self, queue: &[AgedItem]) -> Vec<usize> {
            let mut order: Vec<usize> = (0..queue.len()).collect();
            if !self.priority_aware {
                return order;
            }
            order.sort_by_key(|&i| {
                let q = &queue[i];
                let starved = q.age_micros >= self.starvation_age_micros;
                if starved {
                    (false, std::cmp::Reverse(Priority::High), 0)
                } else {
                    (
                        true,
                        std::cmp::Reverse(q.priority),
                        q.remaining_micros.unwrap_or(u64::MAX),
                    )
                }
            });
            order
        }

        pub fn decide(&self, queue: &[AgedItem]) -> AgedDecision {
            let flush = self.coalesce(queue);
            let tokens: usize = flush.iter().map(|&i| queue[i].tokens).sum();
            let could_grow = flush.len() == queue.len()
                && flush.len() < self.max_requests.max(1)
                && tokens < self.max_tokens;
            if could_grow && !self.has_urgent(queue) {
                let oldest_age = queue[0].age_micros;
                if oldest_age < self.max_wait_micros {
                    return AgedDecision::Wait(self.max_wait_micros - oldest_age);
                }
            }
            AgedDecision::Flush(flush)
        }

        fn coalesce(&self, queue: &[AgedItem]) -> Vec<usize> {
            let max_requests = self.max_requests.max(1);
            let order = self.order(queue);
            let mut flush = Vec::new();
            let mut tokens = 0_usize;
            for &i in order.iter().take(max_requests) {
                if !flush.is_empty() && tokens + queue[i].tokens > self.max_tokens {
                    break;
                }
                tokens += queue[i].tokens;
                flush.push(i);
            }
            flush
        }

        fn has_urgent(&self, queue: &[AgedItem]) -> bool {
            self.priority_aware
                && queue.iter().any(|q| {
                    q.priority == Priority::High
                        || q.remaining_micros
                            .is_some_and(|d| d <= self.max_wait_micros)
                })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn budget_and_caps_respected(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..3_000,
    ) {
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: max_wait,
            starvation_age_micros: 4_000,
            priority_aware: true,
        };
        match planner.decide(&queue, NOW) {
            PlanDecision::Flush(set) => {
                prop_assert!(!set.is_empty(), "a non-empty queue must never flush nothing");
                prop_assert!(set.len() <= queue.len());
                prop_assert!(set.len() <= max_requests, "request cap violated");
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), set.len(), "duplicate positions in flush set");
                prop_assert!(*sorted.last().unwrap() < queue.len(), "position out of range");
                let tokens: usize = set.iter().map(|&i| queue[i].tokens).sum();
                // The token budget may only be exceeded by a mandatory
                // singleton (one request alone larger than the budget).
                prop_assert!(
                    tokens <= max_tokens || set.len() == 1,
                    "token budget violated: {} > {} with n={}",
                    tokens, max_tokens, set.len()
                );
            }
            PlanDecision::Wait(w) => {
                // Waiting is only allowed while the whole queue fits and
                // could still grow...
                let total: usize = queue.iter().map(|q| q.tokens).sum();
                prop_assert!(queue.len() < max_requests);
                prop_assert!(total < max_tokens);
                // ...nothing urgent is queued...
                for q in &queue {
                    prop_assert!(q.priority != Priority::High, "High must not wait");
                    prop_assert!(
                        q.deadline_micros.is_none_or(|d| d > NOW + max_wait),
                        "deadline inside the bound must not wait"
                    );
                }
                // ...and never beyond the age bound of the oldest request.
                let oldest = queue[0].age_micros(NOW);
                prop_assert!(oldest < max_wait, "aged request must flush, not wait");
                prop_assert_eq!(oldest + w, max_wait, "wait must end exactly at the bound");
            }
        }
    }

    #[test]
    fn flush_is_a_maximal_prefix_of_the_scheduling_order(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
    ) {
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: 0,
            starvation_age_micros: 4_000,
            priority_aware: true,
        };
        let order = planner.order(&queue, NOW);
        match planner.decide(&queue, NOW) {
            PlanDecision::Flush(set) => {
                // The flush set is a *prefix* of the scheduling order:
                // the planner never skips over an inadmissible request
                // to admit one scheduled behind it.
                prop_assert_eq!(&set[..], &order[..set.len()],
                    "flush set must be the leading slice of the order");
                if set.len() < order.len() && set.len() < max_requests {
                    let tokens: usize = set.iter().map(|&i| queue[i].tokens).sum();
                    let next = queue[order[set.len()]].tokens;
                    prop_assert!(
                        tokens + next > max_tokens,
                        "prefix not maximal: {} + {} <= {}", tokens, next, max_tokens
                    );
                }
            }
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }

    #[test]
    fn uniform_queue_degrades_to_exact_fifo_prefix(
        raw in prop::collection::vec((1_usize..400, 0_u64..3_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
    ) {
        // One class, no deadlines, nobody starved: the priority policy
        // must be indistinguishable from the historical FIFO scheduler.
        let queue: Vec<QueueItem> =
            raw.iter().map(|&(t, a)| QueueItem::plain(t, NOW - a)).collect();
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: 0,
            starvation_age_micros: 1_000_000,
            priority_aware: true,
        };
        match planner.decide(&queue, NOW) {
            PlanDecision::Flush(set) => {
                let expected: Vec<usize> =
                    (0..fifo_prefix(&queue, max_requests, max_tokens)).collect();
                prop_assert_eq!(set, expected, "uniform load must stay pure FIFO");
            }
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }

    #[test]
    fn priority_order_is_priority_then_edf_then_fifo(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..3_000, 0_u8..3, 0_u64..8_000), 2..24),
    ) {
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests: 8,
            max_tokens: 600,
            max_wait_micros: 0,
            starvation_age_micros: u64::MAX,
            priority_aware: true,
        };
        let order = planner.order(&queue, NOW);
        for pair in order.windows(2) {
            let (a, b) = (&queue[pair[0]], &queue[pair[1]]);
            // Priority classes never interleave out of order...
            prop_assert!(a.priority >= b.priority,
                "{:?} scheduled after {:?}", b.priority, a.priority);
            if a.priority == b.priority {
                // ...EDF within a class (None = infinitely late)...
                let da = a.deadline_micros.unwrap_or(u64::MAX);
                let db = b.deadline_micros.unwrap_or(u64::MAX);
                prop_assert!(da <= db, "EDF violated: {da} after {db}");
                // ...and FIFO on exact ties.
                if da == db {
                    prop_assert!(pair[0] < pair[1], "FIFO tie-break violated");
                }
            }
        }
    }

    #[test]
    fn aged_head_never_waits(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..2_000,
    ) {
        // Force the head request to be at (or past) the age bound.
        let mut raw = raw;
        raw[0].1 = max_wait + raw[0].1 % 7;
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: max_wait,
            starvation_age_micros: 1_000_000,
            priority_aware: true,
        };
        prop_assert!(
            matches!(planner.decide(&queue, NOW), PlanDecision::Flush(_)),
            "a request at the age bound must be flushed"
        );
    }

    #[test]
    fn starved_requests_are_admitted_first(
        raw in prop::collection::vec(
            (1_usize..100, 0_u64..5_000, 0_u8..3, 0_u64..8_000), 1..24),
        starved_at in 0_usize..24,
    ) {
        let mut raw = raw;
        let starved_at = starved_at % raw.len();
        raw[starved_at].1 = 60_000; // far past the starvation bound
        raw[starved_at].2 = 0; // even as Bulk
        let queue = items(&raw);
        let planner = BatchPlanner {
            max_requests: 4,
            max_tokens: 600,
            max_wait_micros: 0,
            starvation_age_micros: 50_000,
            priority_aware: true,
        };
        match planner.decide(&queue, NOW) {
            PlanDecision::Flush(set) => prop_assert!(
                set.contains(&starved_at),
                "starved request {} missing from flush set {:?}", starved_at, set
            ),
            PlanDecision::Wait(_) => prop_assert!(false, "zero wait allowance must flush"),
        }
    }

    /// The satellite regression proof for the explicit-clock refactor:
    /// for every snapshot, planner shape, and clock reading, the new API
    /// produces exactly the decisions the historical age-based planner
    /// produced on the equivalent precomputed-age snapshot — in both
    /// priority and FIFO modes.
    #[test]
    fn explicit_clock_matches_age_based_oracle(
        raw in prop::collection::vec(
            (1_usize..400, 0_u64..80_000, 0_u8..3, 0_u64..8_000), 1..24),
        max_requests in 1_usize..10,
        max_tokens in 1_usize..600,
        max_wait in 0_u64..3_000,
        starvation_age in 1_u64..70_000,
        priority_mode in 0_u8..2,
        clock_offset in 0_u64..1_000_000_000,
    ) {
        let priority_aware = priority_mode == 1;
        let now = NOW + clock_offset;
        let queue: Vec<QueueItem> = raw
            .iter()
            .map(|&(tokens, age, class, slack)| QueueItem {
                tokens,
                enqueued_micros: now - age,
                priority: match class % 3 {
                    0 => Priority::Bulk,
                    1 => Priority::Normal,
                    _ => Priority::High,
                },
                deadline_micros: (slack > 0).then_some(now + slack),
            })
            .collect();
        let aged: Vec<oracle::AgedItem> = raw
            .iter()
            .zip(&queue)
            .map(|(&(tokens, age, _, slack), q)| oracle::AgedItem {
                tokens,
                age_micros: age,
                priority: q.priority,
                remaining_micros: (slack > 0).then_some(slack),
            })
            .collect();
        let planner = BatchPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: max_wait,
            starvation_age_micros: starvation_age,
            priority_aware,
        };
        let reference = oracle::AgedPlanner {
            max_requests,
            max_tokens,
            max_wait_micros: max_wait,
            starvation_age_micros: starvation_age,
            priority_aware,
        };
        prop_assert_eq!(
            planner.order(&queue, now),
            reference.order(&aged),
            "scheduling order diverged from the age-based oracle"
        );
        match (planner.decide(&queue, now), reference.decide(&aged)) {
            (PlanDecision::Flush(a), oracle::AgedDecision::Flush(b)) =>
                prop_assert_eq!(a, b, "flush set diverged from the oracle"),
            (PlanDecision::Wait(a), oracle::AgedDecision::Wait(b)) =>
                prop_assert_eq!(a, b, "wait allowance diverged from the oracle"),
            (got, want) => prop_assert!(
                false, "decision kind diverged: got {:?}, oracle {:?}", got, want
            ),
        }
    }
}
