//! End-to-end serving behaviour over a real engine: parity with direct
//! engine calls, session-cache replay, backpressure and clean shutdown.

use std::time::Duration;

use prism_core::{EngineOptions, PrismEngine, RequestOptions};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{CacheOutcome, PrismServer, ServeConfig, ServeRequest};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-serve-it-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    (config, path)
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions::default(),
        MemoryMeter::new(),
    )
    .unwrap()
}

fn batches(config: &ModelConfig, n: usize, candidates: usize) -> Vec<SequenceBatch> {
    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    (0..n)
        .map(|i| SequenceBatch::new(&generator.request(i as u64, candidates).sequences()).unwrap())
        .collect()
}

fn scores_bits(sel: &prism_core::Selection) -> Vec<(usize, u32, usize)> {
    sel.ranked
        .iter()
        .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
        .collect()
}

#[test]
fn serving_matches_direct_engine_calls() {
    let (config, path) = fixture("parity");
    let requests = batches(&config, 6, 10);

    // Sequential reference: tags 1..=6 on a fresh engine.
    let reference: Vec<_> = {
        let eng = engine(&config, &path);
        requests
            .iter()
            .enumerate()
            .map(|(i, b)| {
                eng.select_with(b, RequestOptions::tagged(4, i as u64 + 1))
                    .unwrap()
            })
            .collect()
    };

    // Served: two workers, coalescing up to 4 requests.
    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            workers: 2,
            max_batch_requests: 4,
            max_batch_wait: Duration::from_millis(1),
            ..Default::default()
        },
    )
    .unwrap();
    let handles: Vec<_> = requests
        .iter()
        .map(|b| {
            server
                .submit(ServeRequest::new("tenant", b.clone(), 4))
                .unwrap()
        })
        .collect();
    for (handle, reference) in handles.into_iter().zip(&reference) {
        let resp = handle.wait().unwrap();
        assert_eq!(
            scores_bits(&resp.selection),
            scores_bits(reference),
            "ticket {} diverged from the sequential reference",
            resp.ticket
        );
        assert_eq!(
            resp.selection
                .last_scores
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>(),
            reference
                .last_scores
                .iter()
                .map(|s| s.to_bits())
                .collect::<Vec<_>>()
        );
    }
    let snap = server.stats().snapshot();
    assert_eq!(snap.submitted, 6);
    assert_eq!(snap.completed, 6);
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn session_cache_replays_repeats_bit_identically() {
    let (config, path) = fixture("cache");
    let batch = batches(&config, 1, 8).pop().unwrap();
    let server = PrismServer::start(engine(&config, &path), ServeConfig::default()).unwrap();

    let opts = RequestOptions::tagged(3, 99);
    let first = server
        .submit(ServeRequest::new("s", batch.clone(), 3).with_options(opts.clone()))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(first.cache, CacheOutcome::Miss);

    // Exact repeat: replayed selection, no execution.
    let second = server
        .submit(ServeRequest::new("s", batch.clone(), 3).with_options(opts.clone()))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(second.cache, CacheOutcome::SelectionHit);
    assert_eq!(
        scores_bits(&second.selection),
        scores_bits(&first.selection)
    );

    // Same corpus, different tag: embedding replayed, fresh execution,
    // still identical to a direct call with that tag.
    let third = server
        .submit(
            ServeRequest::new("s", batch.clone(), 3).with_options(RequestOptions::tagged(3, 100)),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(third.cache, CacheOutcome::EmbedHit);
    let direct = engine(&config, &path)
        .select_with(&batch, RequestOptions::tagged(3, 100))
        .unwrap();
    assert_eq!(scores_bits(&third.selection), scores_bits(&direct));

    // Different session: its own cache entry (miss).
    let other = server
        .submit(ServeRequest::new("other", batch.clone(), 3).with_options(opts))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(other.cache, CacheOutcome::Miss);

    let snap = server.stats().snapshot();
    assert_eq!(snap.cache_selection_hits, 1);
    assert_eq!(snap.cache_embed_hits, 1);
    assert!(snap.cache_hit_rate > 0.0);
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn shutdown_answers_accepted_requests() {
    let (config, path) = fixture("drain");
    let requests = batches(&config, 4, 8);
    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            workers: 1,
            max_batch_requests: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let handles: Vec<_> = requests
        .iter()
        .map(|b| server.submit(ServeRequest::new("t", b.clone(), 2)).unwrap())
        .collect();
    server.shutdown();
    for h in handles {
        assert!(h.wait().is_ok(), "accepted work must be answered");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn invalid_requests_fail_without_poisoning_the_batch() {
    let (config, path) = fixture("invalid");
    let good = batches(&config, 1, 6).pop().unwrap();
    // A sequence longer than max_seq is rejected at plan time.
    let bad = SequenceBatch::new(&[vec![1_u32; config.max_seq + 1]]).unwrap();
    let server = PrismServer::start(
        engine(&config, &path),
        ServeConfig {
            workers: 1,
            max_batch_requests: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let h_bad = server.submit(ServeRequest::new("t", bad, 1)).unwrap();
    let h_good = server.submit(ServeRequest::new("t", good, 2)).unwrap();
    assert!(h_bad.wait().is_err(), "oversized sequence must error");
    assert!(h_good.wait().is_ok(), "batch-mate must still succeed");
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn per_request_option_overrides_match_dedicated_engines() {
    let (config, path) = fixture("overrides");
    let batch = batches(&config, 1, 12).pop().unwrap();
    let server = PrismServer::start(engine(&config, &path), ServeConfig::default()).unwrap();

    // Served with a per-request threshold/pruning override...
    let mut opts = RequestOptions::tagged(4, 5);
    opts.dispersion_threshold = Some(0.45);
    let served_conservative = server
        .submit(ServeRequest::new("t", batch.clone(), 4).with_options(opts))
        .unwrap()
        .wait()
        .unwrap();
    let mut opts = RequestOptions::tagged(4, 5);
    opts.pruning = Some(false);
    let served_unpruned = server
        .submit(ServeRequest::new("t", batch.clone(), 4).with_options(opts))
        .unwrap()
        .wait()
        .unwrap();

    // ...must equal engines *configured* with those options.
    let conservative_engine = PrismEngine::new(
        Container::open(&path).unwrap(),
        config.clone(),
        EngineOptions {
            dispersion_threshold: 0.45,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap();
    let direct = conservative_engine
        .select_with(&batch, RequestOptions::tagged(4, 5))
        .unwrap();
    assert_eq!(
        scores_bits(&served_conservative.selection),
        scores_bits(&direct)
    );

    let unpruned_engine = PrismEngine::new(
        Container::open(&path).unwrap(),
        config.clone(),
        EngineOptions {
            pruning: false,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap();
    let direct = unpruned_engine
        .select_with(&batch, RequestOptions::tagged(4, 5))
        .unwrap();
    assert_eq!(
        scores_bits(&served_unpruned.selection),
        scores_bits(&direct)
    );
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Under a busy single worker, a later High-priority submission must be
/// served before earlier Bulk submissions that are still queued.
#[test]
fn high_priority_overtakes_queued_bulk() {
    use std::sync::{Arc, Mutex};

    let (config, path) = fixture("priority");
    // Throttled streaming keeps each batch slow enough that the queue
    // stays populated while the worker is busy.
    let slow = PrismEngine::new(
        Container::open(&path).unwrap(),
        config.clone(),
        EngineOptions {
            stream_throttle: Some(4_000_000),
            embed_cache: false,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap();
    let server = PrismServer::start(
        slow,
        ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let requests = batches(&config, 5, 8);

    // Occupy the worker, then queue three Bulk requests and one High.
    let head = server
        .submit(ServeRequest::new("p", requests[0].clone(), 3))
        .unwrap();
    let completion_order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let mut waiters = Vec::new();
    for (i, label) in [(1, "bulk"), (2, "bulk"), (3, "bulk"), (4, "high")] {
        let options = RequestOptions::tagged(3, i as u64 + 1).with_priority(if label == "high" {
            prism_core::Priority::High
        } else {
            prism_core::Priority::Bulk
        });
        let handle = server
            .submit(ServeRequest::new("p", requests[i].clone(), 3).with_options(options))
            .unwrap();
        let order = Arc::clone(&completion_order);
        waiters.push(std::thread::spawn(move || {
            handle.wait().unwrap();
            order.lock().unwrap().push(label);
        }));
    }
    head.wait().unwrap();
    for w in waiters {
        w.join().unwrap();
    }
    let order = completion_order.lock().unwrap().clone();
    server.shutdown();
    assert_eq!(
        order.first(),
        Some(&"high"),
        "High must be served before the queued Bulk requests: {order:?}"
    );
    std::fs::remove_file(&path).unwrap();
}
