//! Chaos conformance for the resilience layer: a seeded, replayable
//! fault schedule ([`ChaosPlan`]) driven against a real R=2 shard set
//! must produce selections bit-identical to the fault-free golden run —
//! for every batch size 1..=8 and every spill/compute precision combo —
//! and must leak nothing: every shard's spill directory stays empty and
//! its meter carries zero hidden-state/intermediate bytes after every
//! run, including when a cancellation lands in the middle of a
//! failover replay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use prism_core::{
    CancelToken, ComputePrecision, EngineOptions, PrismEngine, PrismError, RequestOptions,
    SpillPrecision,
};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{audit_shard_hygiene, run_chaos, ChaosPlan, ShardFault, ShardSet};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("prism-chaos-{tag}-{}.prsm", std::process::id()));
    model.write_container(&path).unwrap();
    (config, path)
}

/// A spill-capable shard engine with a *private* spill directory so the
/// hygiene audit can attribute leaks per shard.
fn spill_engine(
    config: &ModelConfig,
    path: &std::path::Path,
    dir: &std::path::Path,
) -> Arc<PrismEngine> {
    std::fs::create_dir_all(dir).unwrap();
    Arc::new(
        PrismEngine::new(
            Container::open(path).unwrap(),
            config.clone(),
            EngineOptions {
                streaming: false,
                embed_cache: false,
                hidden_offload: true,
                chunk_candidates: Some(2),
                ..Default::default()
            },
            MemoryMeter::new(),
        )
        .unwrap()
        .with_spill_dir(dir.to_path_buf()),
    )
}

fn spill_set(
    config: &ModelConfig,
    path: &std::path::Path,
    tag: &str,
    shards: usize,
) -> (ShardSet, Vec<std::path::PathBuf>) {
    let mut dirs = Vec::new();
    let engines = (0..shards)
        .map(|i| {
            let mut dir = std::env::temp_dir();
            dir.push(format!("prism-chaos-{tag}-s{i}-{}", std::process::id()));
            dirs.push(dir.clone());
            spill_engine(config, path, &dir)
        })
        .collect();
    (ShardSet::new(engines).unwrap(), dirs)
}

fn batch_of(config: &ModelConfig, corpus: u64, candidates: usize) -> SequenceBatch {
    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    SequenceBatch::new(&generator.request(corpus, candidates).sequences()).unwrap()
}

fn cleanup(path: &std::path::Path, dirs: &[std::path::PathBuf]) {
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_file(path);
}

/// The acceptance bar of the resilience layer: R=2 over three shards,
/// a seeded chaos schedule (dead shards, stalls straddling the hedge
/// delay), batch sizes 1..=8, and every spill x compute precision
/// combination — every faulted request must be answered bit-identically
/// to the fault-free golden run, and no request may leak spill files or
/// metered bytes on any shard.
#[test]
fn chaos_r2_single_fault_bit_identical_across_batches_and_precisions() {
    let (config, path) = fixture("conf");
    let (mut set, dirs) = spill_set(&config, &path, "conf", 3);
    set = set
        .with_replicas(2)
        .with_hedge(Some(Duration::from_millis(2)));
    let stats = prism_serve::ServeStats::new();
    set.attach_stats(stats.clone());

    // One batch per size in 1..=8, per the conformance envelope.
    let batches: Vec<SequenceBatch> = (1..=8).map(|n| batch_of(&config, n as u64, n)).collect();

    let combos = [
        (SpillPrecision::F32, ComputePrecision::F32),
        (SpillPrecision::F32, ComputePrecision::Int8),
        (SpillPrecision::Int8, ComputePrecision::F32),
        (SpillPrecision::Int8, ComputePrecision::Int8),
    ];
    let plan = ChaosPlan::seeded(0xEED5, 3, batches.len());
    assert!(
        !plan.steps().is_empty(),
        "a chaos run without faults proves nothing"
    );

    for (spill, compute) in combos {
        let options = RequestOptions::top_k(4)
            .with_spill_precision(spill)
            .with_compute_precision(compute);
        // Golden: the same set, same tags, fault-free.
        let golden: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut opts = options.clone();
                opts.tag = Some(0xC4A0_0000 ^ i as u64);
                set.select_with(b, opts).unwrap()
            })
            .collect();
        audit_shard_hygiene(&set).unwrap();

        let report = run_chaos(&set, &batches, &options, &golden, &plan).unwrap();
        assert_eq!(report.requests, batches.len());
        assert_eq!(report.faulted, plan.steps().len());
        assert!(
            report.all_matched(),
            "{spill:?}/{compute:?}: {} of {} requests diverged from golden \
             (partial={}, failed={})",
            report.requests - report.matched,
            report.requests,
            report.partial,
            report.failed
        );
        audit_shard_hygiene(&set).unwrap_or_else(|leak| panic!("{spill:?}/{compute:?}: {leak}"));
    }

    assert!(stats.failovers.get() > 0, "chaos never exercised failover");
    cleanup(&path, &dirs);
}

/// Replaying the same seed replays the same outcomes: two chaos runs
/// from one seed produce identical reports — the property that lets a
/// CI chaos failure be reproduced locally from nothing but the seed.
#[test]
fn chaos_runs_replay_bit_identically_from_the_seed() {
    let (config, path) = fixture("replay");
    let (mut set, dirs) = spill_set(&config, &path, "replay", 3);
    set = set.with_replicas(2);

    let batches: Vec<SequenceBatch> = (0..6).map(|i| batch_of(&config, 100 + i, 6)).collect();
    let options = RequestOptions::top_k(4);
    let golden: Vec<_> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut opts = options.clone();
            opts.tag = Some(0xC4A0_0000 ^ i as u64);
            set.select_with(b, opts).unwrap()
        })
        .collect();

    let plan = ChaosPlan::seeded(31, 3, batches.len());
    let a = run_chaos(&set, &batches, &options, &golden, &plan).unwrap();
    let b = run_chaos(&set, &batches, &options, &golden, &plan).unwrap();
    assert_eq!(a, b, "same seed, same schedule, different outcomes");
    cleanup(&path, &dirs);
}

/// A cancellation landing *mid-failover* — the progress callback kills a
/// shard and cancels at the same layer boundary, so the abort races the
/// replica replay — must leak nothing: every shard's spill directory is
/// empty and its meter zero afterwards, for every kill layer, and the
/// set stays bit-identical for the next request.
#[test]
fn mid_failover_cancellation_leaks_nothing() {
    let (config, path) = fixture("cancel");
    let (mut set, dirs) = spill_set(&config, &path, "cancel", 3);
    set = set.with_replicas(2);
    let set = Arc::new(set);
    let batch = batch_of(&config, 3, 12);
    let reference = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();

    for kill_layer in 0..config.num_layers {
        let token = CancelToken::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let progress = {
            let set = Arc::clone(&set);
            let token = token.clone();
            let fired = Arc::clone(&fired);
            Arc::new(move |u: prism_core::ProgressUpdate| {
                if u.layers_forwarded == kill_layer && fired.fetch_add(1, Ordering::Relaxed) == 0 {
                    set.inject_fault(1, ShardFault::Dead);
                    token.cancel();
                }
            }) as prism_core::ProgressFn
        };
        match set.select_with_controls(
            &batch,
            RequestOptions::tagged(4, 1),
            Some(token),
            None,
            Some(progress),
        ) {
            // The cancel may lose the race to completion; either way the
            // result must be well-formed and nothing may leak.
            Ok(sel) => assert_eq!(
                sel.ranked.len(),
                reference.ranked.len(),
                "kill+cancel at layer {kill_layer}: malformed selection"
            ),
            Err(PrismError::Cancelled) => {}
            Err(other) => panic!("kill+cancel at layer {kill_layer}: {other}"),
        }
        set.inject_fault(1, ShardFault::Healthy);
        audit_shard_hygiene(&set)
            .unwrap_or_else(|leak| panic!("kill+cancel at layer {kill_layer}: {leak}"));
    }

    // Fully serviceable and bit-identical afterwards.
    let again = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();
    assert_eq!(
        again
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        reference
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        "post-chaos selection diverged"
    );
    audit_shard_hygiene(&set).unwrap();
    cleanup(&path, &dirs);
}
