//! Fault injection against the scatter-gather shard set: a dead shard
//! must surface a typed failure without hanging the merge, a slow shard
//! must honour deadlines and cancellation at layer boundaries, an abort
//! mid-scatter must release every shard's spill file and metered bytes,
//! and the per-tenant quota must compose with queue backpressure rather
//! than replace it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use prism_core::{CancelToken, EngineOptions, PrismEngine, PrismError, RequestOptions};
use prism_metrics::{MemCategory, MemoryMeter};
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{PrismServer, ServeConfig, ServiceError, ShardFault, ShardSet};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!(
        "prism-shardfault-{tag}-{}.prsm",
        std::process::id()
    ));
    model.write_container(&path).unwrap();
    (config, path)
}

fn resident_engine(config: &ModelConfig, path: &std::path::Path) -> Arc<PrismEngine> {
    Arc::new(
        PrismEngine::new(
            Container::open(path).unwrap(),
            config.clone(),
            EngineOptions {
                streaming: false,
                embed_cache: false,
                ..Default::default()
            },
            MemoryMeter::new(),
        )
        .unwrap(),
    )
}

fn batch_of(config: &ModelConfig, corpus: u64, candidates: usize) -> SequenceBatch {
    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    SequenceBatch::new(&generator.request(corpus, candidates).sequences()).unwrap()
}

/// A batch that routes work onto every shard of `set` — fault injection
/// is vacuous if the forward map never touches the faulty shard.
fn spanning_batch(config: &ModelConfig, set: &ShardSet, candidates: usize) -> SequenceBatch {
    for corpus in 0..64 {
        let b = batch_of(config, corpus, candidates);
        if set.partition(&b).iter().all(|p| !p.is_empty()) {
            return b;
        }
    }
    panic!("no batch spanning all {} shards in 64 tries", set.shards());
}

/// A dead shard fails the whole selection with the typed shard error —
/// promptly, at the next layer boundary, never by hanging the merge.
#[test]
fn dead_shard_fails_typed_and_promptly() {
    let (config, path) = fixture("dead");
    let set = ShardSet::new((0..3).map(|_| resident_engine(&config, &path)).collect()).unwrap();
    let batch = spanning_batch(&config, &set, 12);
    let reference = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();

    set.inject_fault(1, ShardFault::Dead);
    let t0 = Instant::now();
    let err = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap_err();
    assert!(
        matches!(err, PrismError::ShardFailure(_)),
        "expected ShardFailure, got {err:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "dead shard must fail fast, not hang the merge"
    );

    // Reviving the shard restores bit-identical service.
    set.inject_fault(1, ShardFault::Healthy);
    let again = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();
    assert_eq!(
        again
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        reference
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        "post-recovery selection diverged"
    );
    std::fs::remove_file(&path).unwrap();
}

/// A slow shard trips the absolute deadline at a layer boundary instead
/// of running the scatter to completion.
#[test]
fn slow_shard_trips_deadline_at_layer_boundary() {
    let (config, path) = fixture("slow");
    let set = ShardSet::new((0..2).map(|_| resident_engine(&config, &path)).collect()).unwrap();
    let batch = spanning_batch(&config, &set, 10);

    set.inject_fault(0, ShardFault::Slow(Duration::from_millis(30)));
    let deadline = Instant::now() + Duration::from_millis(10);
    let err = set
        .select_with_controls(
            &batch,
            RequestOptions::tagged(4, 1),
            None,
            Some(deadline),
            None,
        )
        .unwrap_err();
    assert!(
        matches!(err, PrismError::DeadlineExceeded),
        "expected DeadlineExceeded, got {err:?}"
    );
    std::fs::remove_file(&path).unwrap();
}

/// Cancelling mid-scatter — fired from the coordinator's own progress
/// callback at a random-ish layer — aborts every shard and leaks
/// nothing: each shard's spill directory is empty and its meter carries
/// zero hidden-state/intermediate bytes afterwards, and the set serves
/// the next request bit-identically.
#[test]
fn cancel_mid_scatter_releases_every_shards_spill_state() {
    let (config, path) = fixture("cancel");
    // Spill-heavy shard engines, each with its own meter and spill dir
    // so leaks are attributable per shard.
    let mut meters = Vec::new();
    let mut spill_dirs = Vec::new();
    let engines: Vec<Arc<PrismEngine>> = (0..2)
        .map(|i| {
            let meter = MemoryMeter::new();
            let mut dir = std::env::temp_dir();
            dir.push(format!("prism-shardfault-spill-{i}-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            let engine = PrismEngine::new(
                Container::open(&path).unwrap(),
                config.clone(),
                EngineOptions {
                    streaming: false,
                    embed_cache: false,
                    hidden_offload: true,
                    chunk_candidates: Some(2),
                    ..Default::default()
                },
                meter.clone(),
            )
            .unwrap()
            .with_spill_dir(dir.clone());
            meters.push(meter);
            spill_dirs.push(dir);
            Arc::new(engine)
        })
        .collect();
    let set = ShardSet::new(engines).unwrap();
    let batch = spanning_batch(&config, &set, 12);
    let reference = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();

    let assert_clean = |context: &str| {
        for (i, dir) in spill_dirs.iter().enumerate() {
            let files: Vec<_> = std::fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            assert_eq!(
                files,
                Vec::<String>::new(),
                "{context}: shard {i} spill dir"
            );
            assert_eq!(
                meters[i].current(MemCategory::HiddenStates),
                0,
                "{context}: shard {i} hidden-state bytes leaked"
            );
            assert_eq!(
                meters[i].current(MemCategory::Intermediate),
                0,
                "{context}: shard {i} intermediate bytes leaked"
            );
        }
    };

    // Cancel at each possible boundary, including before the first
    // layer and after natural completion (where cancel loses the race).
    for cancel_layer in 0..=config.num_layers + 1 {
        let token = CancelToken::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let progress = {
            let token = token.clone();
            let fired = Arc::clone(&fired);
            Arc::new(move |u: prism_core::ProgressUpdate| {
                if u.layers_forwarded >= cancel_layer {
                    token.cancel();
                    fired.fetch_add(1, Ordering::Relaxed);
                }
            }) as prism_core::ProgressFn
        };
        if cancel_layer == 0 {
            token.cancel();
        }
        match set.select_with_controls(
            &batch,
            RequestOptions::tagged(4, 1),
            Some(token),
            None,
            Some(progress),
        ) {
            Ok(sel) => assert!(!sel.ranked.is_empty()),
            Err(PrismError::Cancelled) => {}
            Err(other) => panic!("unexpected error at layer {cancel_layer}: {other}"),
        }
        assert_clean(&format!("after cancel at layer {cancel_layer}"));
    }

    // The set stays fully serviceable and bit-identical afterwards.
    let again = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();
    assert_eq!(
        again
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        reference
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>()
    );
    assert_clean("after post-cancel reuse");

    for dir in &spill_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    std::fs::remove_file(&path).unwrap();
}

/// Quota and backpressure are different ceilings and both stay typed:
/// a noisy tenant hits `QuotaExceeded` while the shared queue still has
/// room for others, and once *they* fill the queue the error is
/// `Backpressure` — per-tenant fairness composing with, not replacing,
/// global admission control.
#[test]
fn quota_and_backpressure_compose_in_the_sharded_server() {
    let (config, path) = fixture("quota-bp");
    let server = PrismServer::start_sharded(
        (0..2)
            .map(|_| {
                Arc::try_unwrap(resident_engine(&config, &path))
                    .ok()
                    .expect("sole owner")
            })
            .collect(),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            tenant_max_inflight: 1,
            ..Default::default()
        },
    )
    .unwrap();
    // Hold the worker: every layer boundary of shard 0 sleeps.
    server
        .shards()
        .unwrap()
        .inject_fault(0, ShardFault::Slow(Duration::from_millis(40)));

    let batch = spanning_batch(&config, server.shards().unwrap(), 10);
    use prism_api::SelectionService;
    let noisy = server.service("noisy");

    let held = noisy
        .submit(batch.clone(), RequestOptions::tagged(4, 1))
        .unwrap();
    // Give the worker a moment to pick the request up, then saturate.
    std::thread::sleep(Duration::from_millis(50));

    // Second submission from the same tenant: quota, not backpressure.
    let err = noisy
        .submit(batch.clone(), RequestOptions::tagged(4, 2))
        .unwrap_err();
    match err {
        ServiceError::QuotaExceeded { tenant, limit } => {
            assert_eq!(tenant, "noisy");
            assert_eq!(limit, 1);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // Other tenants still get the queue's headroom...
    let q1 = server
        .service("calm-a")
        .submit(batch.clone(), RequestOptions::tagged(4, 3))
        .unwrap();
    let q2 = server
        .service("calm-b")
        .submit(batch.clone(), RequestOptions::tagged(4, 4))
        .unwrap();
    // ...until the shared queue itself is full.
    let err = server
        .service("calm-c")
        .submit(batch.clone(), RequestOptions::tagged(4, 5))
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::Backpressure { .. }),
        "expected Backpressure, got {err:?}"
    );

    // Everything admitted completes; the noisy tenant's slot frees up.
    held.wait().unwrap();
    q1.wait().unwrap();
    q2.wait().unwrap();
    noisy
        .submit(batch, RequestOptions::tagged(4, 6))
        .unwrap()
        .wait()
        .unwrap();

    let snap = server.stats().snapshot();
    assert_eq!(snap.quota_rejected, 1);
    assert_eq!(snap.rejected, 1);
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Helper: the `(id, score_bits)` signature a bit-parity assertion needs.
fn bits(sel: &prism_core::Selection) -> Vec<(usize, u32)> {
    sel.ranked
        .iter()
        .map(|r| (r.id, r.score.to_bits()))
        .collect()
}

/// With R=2, a shard dead *before* the request plans re-homes its whole
/// sub-batch onto each candidate's next-ranked replica, and the merged
/// selection stays bit-identical to the fault-free result — for every
/// choice of dead shard.
#[test]
fn dead_shard_fails_over_to_replica_bit_identically() {
    let (config, path) = fixture("failover-plan");
    let mut set = ShardSet::new((0..3).map(|_| resident_engine(&config, &path)).collect())
        .unwrap()
        .with_replicas(2);
    let stats = prism_serve::ServeStats::new();
    set.attach_stats(stats.clone());
    let batch = spanning_batch(&config, &set, 12);
    let reference = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();
    assert!(reference.is_complete());

    for dead in 0..3 {
        set.inject_fault(dead, ShardFault::Dead);
        let sel = set
            .select_with(&batch, RequestOptions::tagged(4, 1))
            .unwrap();
        assert_eq!(
            bits(&sel),
            bits(&reference),
            "shard {dead} dead: failover diverged from fault-free result"
        );
        assert!(sel.is_complete(), "replication covered the fault");
        set.inject_fault(dead, ShardFault::Healthy);
    }
    assert_eq!(stats.failovers.get(), 3, "one failover per dead shard");
    std::fs::remove_file(&path).unwrap();
}

/// With R=2, a shard dying *mid-request* (injected from the progress
/// callback at every possible layer boundary) has its survivors replayed
/// on replicas and the merged selection stays bit-identical.
#[test]
fn mid_request_death_fails_over_bit_identically() {
    let (config, path) = fixture("failover-mid");
    let mut set = ShardSet::new((0..3).map(|_| resident_engine(&config, &path)).collect())
        .unwrap()
        .with_replicas(2);
    let stats = prism_serve::ServeStats::new();
    set.attach_stats(stats.clone());
    let set = Arc::new(set);
    let batch = spanning_batch(&config, &set, 12);
    let reference = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();

    for kill_layer in 0..config.num_layers {
        let progress = {
            let set = Arc::clone(&set);
            Arc::new(move |u: prism_core::ProgressUpdate| {
                if u.layers_forwarded == kill_layer {
                    set.inject_fault(1, ShardFault::Dead);
                }
            }) as prism_core::ProgressFn
        };
        let sel = set
            .select_with_controls(
                &batch,
                RequestOptions::tagged(4, 1),
                None,
                None,
                Some(progress),
            )
            .unwrap();
        assert_eq!(
            bits(&sel),
            bits(&reference),
            "kill at layer {kill_layer}: mid-request failover diverged"
        );
        assert!(sel.is_complete());
        set.inject_fault(1, ShardFault::Healthy);
    }
    assert!(stats.failovers.get() > 0);
    std::fs::remove_file(&path).unwrap();
}

/// When every replica of a candidate is down, `PartialMode::Fail` (the
/// default) surfaces a typed shard failure, while `PartialMode::Partial`
/// serves a best-effort selection over the survivors with
/// `Selection::coverage < 1` — and the surviving candidates' scores stay
/// bit-identical to their fault-free values.
#[test]
fn replicas_exhausted_degrades_per_partial_mode() {
    use prism_core::PartialMode;
    let (config, path) = fixture("partial");
    let mut set = ShardSet::new((0..2).map(|_| resident_engine(&config, &path)).collect()).unwrap();
    let stats = prism_serve::ServeStats::new();
    set.attach_stats(stats.clone());
    let batch = spanning_batch(&config, &set, 12);
    let dead_ids: Vec<usize> = set.partition(&batch)[1].clone();
    assert!(!dead_ids.is_empty());
    let reference = set
        .select_with(&batch, RequestOptions::tagged(12, 1))
        .unwrap();

    // R=1: shard 1's candidates have no replica to fail over to.
    set.inject_fault(1, ShardFault::Dead);
    let err = set
        .select_with(&batch, RequestOptions::tagged(12, 2))
        .unwrap_err();
    assert!(matches!(err, PrismError::ShardFailure(_)), "{err:?}");

    let sel = set
        .select_with(
            &batch,
            RequestOptions::tagged(12, 3).with_on_partial(PartialMode::Partial),
        )
        .unwrap();
    assert!(!sel.is_complete());
    let expected = (batch.num_sequences() - dead_ids.len()) as f32 / batch.num_sequences() as f32;
    assert!(
        (sel.coverage - expected).abs() < 1e-6,
        "coverage {} != {expected}",
        sel.coverage
    );
    for r in &sel.ranked {
        assert!(
            !dead_ids.contains(&r.id),
            "candidate {} was unrecoverable yet ranked",
            r.id
        );
        let full = reference
            .ranked
            .iter()
            .find(|f| f.id == r.id)
            .expect("survivor present in fault-free ranking");
        assert_eq!(
            full.score.to_bits(),
            r.score.to_bits(),
            "survivor {}'s score diverged in degraded mode",
            r.id
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// A shard stalling past the hedge delay has its sub-batch hedged onto
/// the next replica: the result stays bit-identical, completes without
/// waiting out the stall, and the hedge counters fire.
#[test]
fn hedged_stall_completes_bit_identically() {
    let (config, path) = fixture("hedge");
    let mut set = ShardSet::new((0..3).map(|_| resident_engine(&config, &path)).collect())
        .unwrap()
        .with_replicas(2)
        .with_hedge(Some(Duration::from_millis(5)));
    let stats = prism_serve::ServeStats::new();
    set.attach_stats(stats.clone());
    let batch = spanning_batch(&config, &set, 12);
    let reference = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();

    // Stall long enough that waiting it out at every layer boundary
    // would dwarf the hedged path's latency.
    set.inject_fault(2, ShardFault::Slow(Duration::from_millis(250)));
    let t0 = Instant::now();
    let sel = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();
    let hedged_latency = t0.elapsed();
    assert_eq!(bits(&sel), bits(&reference), "hedged result diverged");
    assert!(sel.is_complete());
    assert!(
        hedged_latency < Duration::from_millis(250),
        "hedge did not cut the stall: {hedged_latency:?}"
    );
    assert_eq!(stats.hedges_fired.get(), 1);
    assert_eq!(stats.hedges_won.get(), 1);
    assert_eq!(stats.failovers.get(), 1);

    // Without a hedge configured the stall is waited out (R=1 behavior
    // preserved): same bits, just slower.
    set.inject_fault(2, ShardFault::Slow(Duration::from_millis(10)));
    let set = ShardSet::new((0..1).map(|_| resident_engine(&config, &path)).collect()).unwrap();
    let single = set
        .select_with(&batch, RequestOptions::tagged(4, 1))
        .unwrap();
    assert_eq!(
        bits(&single),
        bits(&reference),
        "sharded result must match the unsharded engine"
    );
    std::fs::remove_file(&path).unwrap();
}
