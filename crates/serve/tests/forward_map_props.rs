//! Properties of the flat consistent-hash forward map: routing is
//! deterministic and in range, slot ownership is balanced across
//! shards, and growing the shard set moves only the slots claimed by
//! the new shard — the minimal-movement guarantee that keeps resharding
//! from invalidating every shard's working set.

use prism_serve::{candidate_key, ForwardMap, FORWARD_SLOTS};
use proptest::prelude::*;

proptest! {
    /// Two independently built maps route every key identically, and
    /// always onto a real shard — the table is a pure function of the
    /// shard count.
    #[test]
    fn routing_is_deterministic_and_in_range(
        shards in 1_usize..9,
        key in 0_u64..u64::MAX,
    ) {
        let a = ForwardMap::new(shards);
        let b = ForwardMap::new(shards);
        prop_assert_eq!(a.slots(), b.slots());
        let shard = a.shard_of(key);
        prop_assert!(shard < shards);
        prop_assert_eq!(shard, b.shard_of(key));
    }

    /// Equal candidate token sequences derive equal keys (the map may
    /// then be consulted with either), and the key ignores nothing: any
    /// single-token change reroutes the hash input.
    #[test]
    fn candidate_keys_are_a_pure_function_of_tokens(
        tokens in prop::collection::vec(0_u32..50_000, 1..64),
        flip in 0_usize..64,
    ) {
        prop_assert_eq!(candidate_key(&tokens), candidate_key(&tokens.clone()));
        let mut other = tokens.clone();
        let i = flip % other.len();
        other[i] ^= 1;
        prop_assert!(
            candidate_key(&other) != candidate_key(&tokens),
            "single-token flip at {i} collided"
        );
    }

    /// Every shard owns within ±25% of its fair slot share — rendezvous
    /// hashing over 4096 slots keeps the table balanced without any
    /// per-shard state.
    #[test]
    fn slot_ownership_is_balanced(shards in 1_usize..9) {
        let map = ForwardMap::new(shards);
        let mut counts = vec![0_usize; shards];
        for &owner in map.slots() {
            counts[owner as usize] += 1;
        }
        let fair = FORWARD_SLOTS / shards;
        for (shard, &count) in counts.iter().enumerate() {
            prop_assert!(
                count * 4 >= fair * 3 && count * 4 <= fair * 5,
                "shard {shard}/{shards} owns {count} slots (fair share {fair})"
            );
        }
    }

    /// Growing from `n` to `n + 1` shards only reassigns slots *to* the
    /// new shard — every other slot keeps its owner — and the moved
    /// fraction stays near the ideal 1/(n+1).
    #[test]
    fn adding_a_shard_moves_only_the_new_shards_slots(shards in 1_usize..8) {
        let before = ForwardMap::new(shards);
        let after = ForwardMap::new(shards + 1);
        let mut moved = 0_usize;
        for (slot, (&old, &new)) in before.slots().iter().zip(after.slots()).enumerate() {
            if old != new {
                prop_assert_eq!(
                    new as usize,
                    shards,
                    "slot {slot} moved between surviving shards ({old} -> {new})"
                );
                moved += 1;
            }
        }
        let ideal = FORWARD_SLOTS / (shards + 1);
        prop_assert!(
            moved <= ideal * 2,
            "{moved} slots moved adding shard {shards} (ideal {ideal})"
        );
        prop_assert!(moved > 0, "the new shard must claim some slots");
    }
}
