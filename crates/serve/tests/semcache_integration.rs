//! End-to-end behaviour of the semantic result cache inside the serving
//! stack: golden parity of `VerifyAndFallback` with the exact path,
//! full-replay answers under `Aggressive`, and leak-freedom of the cache
//! byte meter under cancellation and shard failure.

use std::time::Duration;

use prism_core::{
    EngineOptions, PrismEngine, RequestOptions, Selection, SemCacheMode, SpillPrecision,
};
use prism_metrics::MemoryMeter;
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_serve::{CacheOutcome, LoadSpec, PrismServer, ServeConfig, ServeRequest, ShardFault};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};

fn fixture(tag: &str) -> (ModelConfig, std::path::PathBuf) {
    let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
    let model = Model::generate(config.clone(), 42).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!(
        "prism-semcache-it-{tag}-{}.prsm",
        std::process::id()
    ));
    model.write_container(&path).unwrap();
    (config, path)
}

fn engine(config: &ModelConfig, path: &std::path::Path) -> PrismEngine {
    PrismEngine::new(
        Container::open(path).unwrap(),
        config.clone(),
        EngineOptions {
            streaming: false,
            embed_cache: false,
            ..Default::default()
        },
        MemoryMeter::new(),
    )
    .unwrap()
}

fn batch_of(config: &ModelConfig, corpus: u64, candidates: usize) -> SequenceBatch {
    let profile = dataset_by_name("wikipedia").unwrap();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, 7);
    SequenceBatch::new(&generator.request(corpus, candidates).sequences()).unwrap()
}

/// A serving config that isolates the semantic cache: the per-session
/// memo cache is off, so every repeat must be answered by the semantic
/// tier or recomputed.
fn semcache_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        session_cache_capacity: 0,
        max_batch_wait: Duration::from_millis(1),
        ..Default::default()
    }
}

/// Full-depth options: semantic replay only engages with effective
/// pruning off, which `opts.pruning = Some(false)` pins per request.
fn full_depth(k: usize, tag: u64, mode: SemCacheMode, spill: SpillPrecision) -> RequestOptions {
    let mut opts = RequestOptions::tagged(k, tag)
        .with_semcache(mode)
        .with_spill_precision(spill);
    opts.pruning = Some(false);
    opts
}

fn ranked_bits(sel: &Selection) -> Vec<(usize, u32, usize)> {
    sel.ranked
        .iter()
        .map(|r| (r.id, r.score.to_bits(), r.decided_at_layer))
        .collect()
}

/// Golden-corpus parity: for batch sizes 1..=8 and both spill
/// precisions, `VerifyAndFallback` answers (first sight, exact-tier
/// replay, and `Aggressive` full replay) are bit-identical to the
/// semcache-off exact path — ids, score bits and decision layers.
#[test]
fn verify_mode_matches_semcache_off_across_batch_sizes_and_precisions() {
    let (config, path) = fixture("golden");
    let server = PrismServer::start(engine(&config, &path), semcache_config()).unwrap();

    for candidates in 1..=8_usize {
        for spill in [SpillPrecision::Int8, SpillPrecision::F32] {
            let batch = batch_of(&config, candidates as u64, candidates);
            let k = candidates.min(3);
            let submit = |mode: SemCacheMode| {
                server
                    .submit(
                        ServeRequest::new("golden", batch.clone(), k).with_options(full_depth(
                            k,
                            candidates as u64,
                            mode,
                            spill,
                        )),
                    )
                    .unwrap()
                    .wait()
                    .unwrap()
            };
            let reference = submit(SemCacheMode::Off);
            // First sight: harvest-only miss, exact execution.
            let first = submit(SemCacheMode::VerifyAndFallback);
            // Repeat: exact-tier replay (or sampled verification — both
            // must stay bit-identical).
            let replay = submit(SemCacheMode::VerifyAndFallback);
            // Aggressive on token-identical candidates resolves in the
            // exact tier, so it is bit-identical here too.
            let aggressive = submit(SemCacheMode::Aggressive);
            for (label, resp) in [
                ("first", &first),
                ("replay", &replay),
                ("aggressive", &aggressive),
            ] {
                assert_eq!(
                    ranked_bits(&resp.selection),
                    ranked_bits(&reference.selection),
                    "{label} diverged at candidates={candidates} spill={spill:?}"
                );
                assert_eq!(
                    resp.selection
                        .last_scores
                        .iter()
                        .map(|s| s.to_bits())
                        .collect::<Vec<_>>(),
                    reference
                        .selection
                        .last_scores
                        .iter()
                        .map(|s| s.to_bits())
                        .collect::<Vec<_>>(),
                    "{label} scores diverged at candidates={candidates} spill={spill:?}"
                );
            }
            assert_eq!(aggressive.cache, CacheOutcome::SemanticHit);
        }
    }
    // No verification mismatch ever fell back, and the meter reconciles.
    let snap = server.stats().snapshot();
    assert_eq!(
        snap.semcache_fallbacks, 0,
        "exact replays must verify clean"
    );
    assert!(snap.semcache_hits > 0);
    let cache = server.semcache().unwrap();
    assert_eq!(cache.audit().unwrap(), cache.bytes());
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// An `Aggressive` repeat is answered entirely from the cache: no engine
/// execution (service time 0), `SemanticHit` outcome, per-candidate hit
/// counters and a live byte gauge.
#[test]
fn aggressive_repeat_replays_without_touching_the_engine() {
    let (config, path) = fixture("replay");
    let server = PrismServer::start(engine(&config, &path), semcache_config()).unwrap();
    let batch = batch_of(&config, 9, 6);
    let opts = |tag| full_depth(3, tag, SemCacheMode::Aggressive, SpillPrecision::Int8);

    let first = server
        .submit(ServeRequest::new("a", batch.clone(), 3).with_options(opts(1)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(first.cache, CacheOutcome::Miss);

    // Same candidates from a *different* session: the semantic tier is
    // cross-session, unlike the per-session memo cache.
    let second = server
        .submit(ServeRequest::new("b", batch.clone(), 3).with_options(opts(2)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(second.cache, CacheOutcome::SemanticHit);
    assert_eq!(second.service_us, 0, "full replay runs zero layers");
    assert_eq!(
        ranked_bits(&second.selection),
        ranked_bits(&first.selection)
    );

    let snap = server.stats().snapshot();
    assert_eq!(snap.semcache_hits, 6, "one hit per candidate");
    assert_eq!(
        snap.semcache_misses, 6,
        "one miss per first-sight candidate"
    );
    assert!(snap.semcache_bytes > 0);
    assert_eq!(snap.semcache_bytes, server.semcache().unwrap().bytes());
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Requests that never complete — cancelled before or during execution —
/// must contribute nothing to the cache: the byte meter still reconciles
/// against the live entries and later exact service is unaffected.
#[test]
fn cancelled_requests_leak_no_cache_bytes() {
    use prism_api::SelectionService;
    let (config, path) = fixture("cancel");
    let server = PrismServer::start(engine(&config, &path), semcache_config()).unwrap();
    let service = server.service("cancel-tenant");

    // Race cancellation against execution at every point from "before
    // pickup" to "after completion".
    for round in 0..12_u64 {
        let batch = batch_of(&config, 100 + round, 5);
        let handle = service
            .submit(
                batch,
                full_depth(2, round + 1, SemCacheMode::Aggressive, SpillPrecision::Int8),
            )
            .unwrap();
        if round % 3 == 0 {
            handle.cancel();
        } else if round % 3 == 1 {
            std::thread::sleep(Duration::from_micros(200 * round));
            handle.cancel();
        }
        let _ = handle.wait();
        let cache = server.semcache().unwrap();
        assert_eq!(
            cache.audit().unwrap(),
            cache.bytes(),
            "meter diverged after round {round}"
        );
    }

    // A completed request still probes/harvests normally afterwards.
    let batch = batch_of(&config, 500, 5);
    for (i, expect) in [CacheOutcome::Miss, CacheOutcome::SemanticHit]
        .into_iter()
        .enumerate()
    {
        let resp = server
            .submit(
                ServeRequest::new("post", batch.clone(), 2).with_options(full_depth(
                    2,
                    900 + i as u64,
                    SemCacheMode::Aggressive,
                    SpillPrecision::Int8,
                )),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.cache, expect);
    }
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Sharded serving: a dead shard fails fresh requests with the typed
/// shard error and harvests nothing (the meter reconciles), while a
/// *fully cached* repeat is still answered — full semantic replay never
/// scatters, so it survives shard loss.
#[test]
fn dead_shard_leaks_nothing_and_full_replays_survive_it() {
    let (config, path) = fixture("shard");
    let server = PrismServer::start_sharded(
        (0..2).map(|_| engine(&config, &path)).collect(),
        semcache_config(),
    )
    .unwrap();
    let warm = batch_of(&config, 7, 8);
    let opts = |tag| full_depth(3, tag, SemCacheMode::Aggressive, SpillPrecision::Int8);

    // Warm the cache through healthy scatter-gather.
    let reference = server
        .submit(ServeRequest::new("s", warm.clone(), 3).with_options(opts(1)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(reference.cache, CacheOutcome::Miss);
    let bytes_before = server.semcache().unwrap().bytes();
    assert!(bytes_before > 0);

    server.shards().unwrap().inject_fault(1, ShardFault::Dead);

    // A novel request dies mid-probe/scatter: typed error, no harvest.
    let err = server
        .submit(ServeRequest::new("s", batch_of(&config, 8, 8), 3).with_options(opts(2)))
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(
        err.to_string().contains("shard"),
        "expected a shard failure, got {err}"
    );
    let cache = server.semcache().unwrap();
    assert_eq!(
        cache.bytes(),
        bytes_before,
        "failed request must not harvest"
    );
    assert_eq!(cache.audit().unwrap(), bytes_before);

    // The warmed repeat full-replays without scattering — it works even
    // with a shard down, bit-identical to the healthy run.
    let replay = server
        .submit(ServeRequest::new("t", warm, 3).with_options(opts(3)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(replay.cache, CacheOutcome::SemanticHit);
    assert_eq!(
        ranked_bits(&replay.selection),
        ranked_bits(&reference.selection)
    );
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Nightly soak: a high-overlap closed-loop run against a sharded server
/// with verification sampling on. After the drain the cache's byte meter
/// must reconcile exactly (zero leaked bytes), stay within budget, and
/// clearing must release everything.
#[test]
#[ignore = "nightly soak: high-overlap sharded drain"]
fn high_overlap_sharded_soak_drains_clean() {
    let (config, path) = fixture("soak");
    let server = PrismServer::start_sharded(
        (0..3).map(|_| engine(&config, &path)).collect(),
        ServeConfig {
            workers: 3,
            session_cache_capacity: 0,
            semcache_capacity_bytes: 256 << 10,
            ..Default::default()
        },
    )
    .unwrap();
    let spec = LoadSpec {
        requests: 300,
        clients: 6,
        candidates: 8,
        k: 3,
        sessions: 5,
        semcache: SemCacheMode::VerifyAndFallback,
        dup_fraction: 0.7,
        ..Default::default()
    };
    let report = prism_serve::run_closed_loop(&server, &spec);
    assert_eq!(report.completed + report.errors, spec.requests);
    assert_eq!(report.errors, 0);
    assert_eq!(report.stats.semcache_fallbacks, 0, "exact replays only");
    assert!(report.stats.semcache_hits > 0, "overlap must produce hits");

    let cache = server.semcache().unwrap();
    let bytes = cache.bytes();
    assert!(bytes <= 256 << 10, "eviction must hold the budget");
    assert_eq!(
        cache.audit().unwrap(),
        bytes,
        "leaked cache bytes after drain"
    );

    // Arc soundness under drop: shutdown then reopen-free cleanup.
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}
