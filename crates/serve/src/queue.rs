//! The bounded submission queue workers coalesce batches from.
//!
//! One `Mutex<VecDeque>` + `Condvar` pair serves both sides: producers
//! fail fast with backpressure when the queue is at capacity, consumers
//! block until the [`BatchPlanner`] tells them to flush an admissible
//! set (waiting out the age bound for under-full batches). Before every
//! planning pass the queue *sheds* dead entries — requests whose caller
//! cancelled and requests whose deadline passed while they waited — and
//! answers them immediately with the typed error, so a worker never
//! spends a weight pass on work nobody wants. Closing the queue wakes
//! every waiter; queued requests are still drained so accepted work is
//! never dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use prism_core::{CancelToken, Priority, RequestOptions};
use prism_model::SequenceBatch;

use crate::request::{Replier, ServeError};
use crate::scheduler::{BatchPlanner, PlanDecision, QueueItem};
use crate::stats::ServeStats;

/// One queued request, carrying everything a worker needs to execute and
/// answer it.
#[derive(Debug)]
pub struct Pending {
    /// Global submission index (1-based) — doubles as the routing tag
    /// unless the caller pinned one.
    pub ticket: u64,
    /// Session key for cache affinity.
    pub session: String,
    /// The candidate batch.
    pub batch: SequenceBatch,
    /// Resolved per-request options (tag always set by the server).
    pub options: RequestOptions,
    /// FNV-1a fingerprint of the batch content (session-cache key).
    pub fingerprint: u64,
    /// Total packed tokens (the planner's budget unit).
    pub tokens: usize,
    /// When the request entered the queue.
    pub enqueued: Instant,
    /// Absolute deadline resolved at admission, if any.
    pub deadline: Option<Instant>,
    /// Caller-side cancellation flag (always present; inert unless the
    /// caller holds a facade handle).
    pub cancel: CancelToken,
    /// The tenant's occupied quota slot, if quotas are enabled. Released
    /// by drop on every exit path — completion, shed, drain.
    pub quota: Option<crate::quota::QuotaToken>,
    /// Reply transport back to the caller.
    pub reply: Replier,
}

impl Pending {
    /// The scheduling class (from the resolved options).
    pub fn priority(&self) -> Priority {
        self.options.priority
    }
}

struct QueueState {
    deque: VecDeque<Pending>,
    closed: bool,
}

/// Bounded MPMC queue with planner-driven batch consumption.
pub struct SubmissionQueue {
    state: Mutex<QueueState>,
    notify: Condvar,
    capacity: usize,
    stats: ServeStats,
    workers: usize,
    /// Clock origin for planner timestamps: the planner is a pure
    /// function of `(snapshot, now_micros)` with both measured against
    /// this epoch, so the serving metasim can drive the identical code
    /// at virtual time.
    epoch: Instant,
}

impl SubmissionQueue {
    /// Creates a queue holding at most `capacity` pending requests;
    /// `stats` receives depth updates and shed/inversion counts, and
    /// `workers` scales the backpressure retry hint.
    pub fn new(capacity: usize, stats: ServeStats, workers: usize) -> Self {
        SubmissionQueue {
            state: Mutex::new(QueueState {
                deque: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            notify: Condvar::new(),
            capacity: capacity.max(1),
            stats,
            workers: workers.max(1),
            epoch: Instant::now(),
        }
    }

    /// Microseconds between the queue epoch and `t` (zero for instants
    /// at or before the epoch — admission always happens after it).
    fn micros_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Enqueues a request, failing fast when full or closed.
    pub fn push(&self, pending: Pending) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.deque.len() >= self.capacity {
            // Dead entries (cancelled / expired while no worker was
            // popping) must not hold capacity against live work.
            self.shed_dead(&mut state, Instant::now());
        }
        if state.deque.len() >= self.capacity {
            return Err(ServeError::Backpressure {
                capacity: self.capacity,
                queue_depth: state.deque.len(),
                retry_after: self
                    .stats
                    .retry_after_hint(state.deque.len(), self.workers)
                    .min(std::time::Duration::from_secs(1)),
            });
        }
        state.deque.push_back(pending);
        self.stats.queue_depth.set(state.deque.len() as u64);
        drop(state);
        self.notify.notify_all();
        Ok(())
    }

    /// Answers and removes every queued request that is already dead:
    /// cancelled by its caller, or past its deadline.
    fn shed_dead(&self, state: &mut QueueState, now: Instant) {
        let mut i = 0;
        while i < state.deque.len() {
            let p = &state.deque[i];
            let verdict = if p.cancel.is_cancelled() {
                Some((ServeError::Cancelled, &self.stats.cancelled))
            } else if p.deadline.is_some_and(|d| now >= d) {
                Some((ServeError::DeadlineExceeded, &self.stats.deadline_missed))
            } else {
                None
            };
            match verdict {
                Some((err, counter)) => {
                    let mut dead = state.deque.remove(i).expect("index in bounds");
                    counter.inc();
                    dead.reply.send(Err(err));
                }
                None => i += 1,
            }
        }
    }

    /// Blocks until a batch is ready and pops it (an admissible set
    /// chosen by `planner`, in scheduling order). Returns `None` once
    /// the queue is closed *and* drained.
    pub fn next_batch(&self, planner: &BatchPlanner) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            let now = Instant::now();
            self.shed_dead(&mut state, now);
            if state.deque.is_empty() {
                self.stats.queue_depth.set(0);
                if state.closed {
                    return None;
                }
                state = self.notify.wait(state).expect("queue lock");
                continue;
            }
            let now_micros = self.micros_since_epoch(now);
            let snapshot: Vec<QueueItem> = state
                .deque
                .iter()
                .map(|p| QueueItem {
                    tokens: p.tokens,
                    enqueued_micros: self.micros_since_epoch(p.enqueued),
                    priority: p.priority(),
                    deadline_micros: p.deadline.map(|d| self.micros_since_epoch(d)),
                })
                .collect();
            let take = match planner.decide(&snapshot, now_micros) {
                PlanDecision::Flush(set) => set,
                // A closing queue flushes what it has instead of waiting
                // for arrivals that will never come.
                PlanDecision::Wait(_) if state.closed => planner.coalesce(&snapshot, now_micros),
                PlanDecision::Wait(us) => {
                    let (next, timeout) = self
                        .notify
                        .wait_timeout(state, std::time::Duration::from_micros(us))
                        .expect("queue lock");
                    state = next;
                    let _ = timeout;
                    continue;
                }
            };
            // The starvation guard may admit an aged request past a
            // higher-priority waiter: surface those as inversions. Only
            // meaningful under the priority policy — the FIFO baseline
            // ignores priorities by design and would report noise.
            if planner.priority_aware {
                let floor = take
                    .iter()
                    .map(|&i| snapshot[i].priority)
                    .min()
                    .unwrap_or(Priority::Bulk);
                let waiting_above =
                    (0..snapshot.len()).any(|i| !take.contains(&i) && snapshot[i].priority > floor);
                if waiting_above {
                    self.stats.priority_inversions.inc();
                }
            }
            // Drain the selected positions, preserving scheduling order.
            let mut slots: Vec<Option<Pending>> = take.iter().map(|_| None).collect();
            let mut kept = VecDeque::with_capacity(state.deque.len());
            for (pos, p) in state.deque.drain(..).enumerate() {
                match take.iter().position(|&t| t == pos) {
                    Some(slot) => slots[slot] = Some(p),
                    None => kept.push_back(p),
                }
            }
            state.deque = kept;
            self.stats.queue_depth.set(state.deque.len() as u64);
            let batch: Vec<Pending> = slots
                .into_iter()
                .map(|p| p.expect("selected position drained"))
                .collect();
            return Some(batch);
        }
    }

    /// Marks the queue closed and wakes all waiters. Already-queued
    /// requests are still served by subsequent [`Self::next_batch`] calls.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.notify.notify_all();
    }

    /// Number of requests currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").deque.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    use crate::request::ServeResponse;

    fn pending(
        ticket: u64,
        tokens: usize,
    ) -> (Pending, mpsc::Receiver<Result<ServeResponse, ServeError>>) {
        let (tx, rx) = mpsc::sync_channel(1);
        let p = Pending {
            ticket,
            session: "s".into(),
            batch: SequenceBatch::new(&[vec![1; tokens]]).unwrap(),
            options: RequestOptions::tagged(1, ticket),
            fingerprint: 0,
            tokens,
            enqueued: Instant::now(),
            deadline: None,
            cancel: CancelToken::new(),
            quota: None,
            reply: Replier::Channel(tx),
        };
        (p, rx)
    }

    fn eager_planner(max_requests: usize) -> BatchPlanner {
        BatchPlanner {
            max_requests,
            max_tokens: usize::MAX,
            max_wait_micros: 0,
            starvation_age_micros: u64::MAX,
            priority_aware: true,
        }
    }

    #[test]
    fn backpressure_when_full() {
        let q = SubmissionQueue::new(2, ServeStats::new(), 1);
        let (a, _ra) = pending(1, 4);
        let (b, _rb) = pending(2, 4);
        let (c, _rc) = pending(3, 4);
        q.push(a).unwrap();
        q.push(b).unwrap();
        match q.push(c) {
            Err(ServeError::Backpressure {
                capacity,
                queue_depth,
                retry_after,
            }) => {
                assert_eq!(capacity, 2);
                assert_eq!(queue_depth, 2);
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn next_batch_pops_fifo_prefix() {
        let q = SubmissionQueue::new(8, ServeStats::new(), 1);
        let mut keep = Vec::new();
        for t in 1..=5 {
            let (p, rx) = pending(t, 2);
            keep.push(rx);
            q.push(p).unwrap();
        }
        let batch = q.next_batch(&eager_planner(3)).unwrap();
        assert_eq!(
            batch.iter().map(|p| p.ticket).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let batch = q.next_batch(&eager_planner(3)).unwrap();
        assert_eq!(batch.iter().map(|p| p.ticket).collect::<Vec<_>>(), [4, 5]);
    }

    #[test]
    fn high_priority_pops_first() {
        let q = SubmissionQueue::new(8, ServeStats::new(), 1);
        let mut keep = Vec::new();
        for t in 1..=3 {
            let (mut p, rx) = pending(t, 2);
            if t == 3 {
                p.options.priority = Priority::High;
            }
            keep.push(rx);
            q.push(p).unwrap();
        }
        let batch = q.next_batch(&eager_planner(2)).unwrap();
        assert_eq!(batch.iter().map(|p| p.ticket).collect::<Vec<_>>(), [3, 1]);
    }

    #[test]
    fn cancelled_requests_are_shed_with_cancelled_error() {
        let stats = ServeStats::new();
        let q = SubmissionQueue::new(8, stats.clone(), 1);
        let (p1, rx1) = pending(1, 2);
        let (p2, rx2) = pending(2, 2);
        let cancel = p1.cancel.clone();
        q.push(p1).unwrap();
        q.push(p2).unwrap();
        cancel.cancel();
        let batch = q.next_batch(&eager_planner(8)).unwrap();
        assert_eq!(batch.iter().map(|p| p.ticket).collect::<Vec<_>>(), [2]);
        assert!(matches!(rx1.recv(), Ok(Err(ServeError::Cancelled))));
        assert!(rx2.try_recv().is_err(), "live request still unanswered");
        assert_eq!(stats.cancelled.get(), 1);
    }

    #[test]
    fn push_sheds_dead_entries_before_reporting_backpressure() {
        let stats = ServeStats::new();
        let q = SubmissionQueue::new(2, stats.clone(), 1);
        let (p1, rx1) = pending(1, 2);
        let (p2, rx2) = pending(2, 2);
        let (c1, c2) = (p1.cancel.clone(), p2.cancel.clone());
        q.push(p1).unwrap();
        q.push(p2).unwrap();
        c1.cancel();
        c2.cancel();
        // The queue is nominally full, but only with dead entries: live
        // work must be admitted, not bounced with backpressure.
        let (p3, _rx3) = pending(3, 2);
        q.push(p3).unwrap();
        assert!(matches!(rx1.recv(), Ok(Err(ServeError::Cancelled))));
        assert!(matches!(rx2.recv(), Ok(Err(ServeError::Cancelled))));
        assert_eq!(stats.cancelled.get(), 2);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn expired_deadlines_are_shed_with_deadline_error() {
        let stats = ServeStats::new();
        let q = SubmissionQueue::new(8, stats.clone(), 1);
        let (mut p1, rx1) = pending(1, 2);
        p1.deadline = Some(Instant::now() - Duration::from_millis(1));
        let (p2, _rx2) = pending(2, 2);
        q.push(p1).unwrap();
        q.push(p2).unwrap();
        let batch = q.next_batch(&eager_planner(8)).unwrap();
        assert_eq!(batch.iter().map(|p| p.ticket).collect::<Vec<_>>(), [2]);
        assert!(matches!(rx1.recv(), Ok(Err(ServeError::DeadlineExceeded))));
        assert_eq!(stats.deadline_missed.get(), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = SubmissionQueue::new(8, ServeStats::new(), 1);
        let (p, _rx) = pending(1, 2);
        q.push(p).unwrap();
        q.close();
        // Closed queue flushes the waiting request instead of aging it.
        let planner = BatchPlanner {
            max_requests: 8,
            max_tokens: usize::MAX,
            max_wait_micros: u64::MAX,
            starvation_age_micros: u64::MAX,
            priority_aware: true,
        };
        assert_eq!(q.next_batch(&planner).unwrap().len(), 1);
        assert!(q.next_batch(&planner).is_none());
        let (p2, _rx2) = pending(2, 2);
        assert!(matches!(q.push(p2), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn waiting_consumer_wakes_on_push() {
        let q = std::sync::Arc::new(SubmissionQueue::new(8, ServeStats::new(), 1));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.next_batch(&eager_planner(4)));
        std::thread::sleep(Duration::from_millis(10));
        let (p, _rx) = pending(7, 1);
        q.push(p).unwrap();
        let batch = consumer.join().unwrap().unwrap();
        assert_eq!(batch[0].ticket, 7);
    }
}
