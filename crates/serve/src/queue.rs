//! The bounded submission queue workers coalesce batches from.
//!
//! One `Mutex<VecDeque>` + `Condvar` pair serves both sides: producers
//! fail fast with backpressure when the queue is at capacity, consumers
//! block until the [`BatchPlanner`] tells them to
//! flush a FIFO prefix (waiting out the age bound for under-full
//! batches). Closing the queue wakes every waiter; queued requests are
//! still drained so accepted work is never dropped.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use prism_core::RequestOptions;
use prism_metrics::Gauge;
use prism_model::SequenceBatch;

use crate::request::{ServeError, ServeResponse};
use crate::scheduler::{BatchPlanner, PlanDecision};

/// One queued request, carrying everything a worker needs to execute and
/// answer it.
#[derive(Debug)]
pub struct Pending {
    /// Global submission index (1-based) — doubles as the routing tag
    /// unless the caller pinned one.
    pub ticket: u64,
    /// Session key for cache affinity.
    pub session: String,
    /// The candidate batch.
    pub batch: SequenceBatch,
    /// Resolved per-request options (tag always set by the server).
    pub options: RequestOptions,
    /// FNV-1a fingerprint of the batch content (session-cache key).
    pub fingerprint: u64,
    /// Total packed tokens (the planner's budget unit).
    pub tokens: usize,
    /// When the request entered the queue.
    pub enqueued: Instant,
    /// Reply channel back to the caller's [`crate::ResponseHandle`].
    pub reply: mpsc::SyncSender<Result<ServeResponse, ServeError>>,
}

struct QueueState {
    deque: VecDeque<Pending>,
    closed: bool,
}

/// Bounded MPMC queue with planner-driven batch consumption.
pub struct SubmissionQueue {
    state: Mutex<QueueState>,
    notify: Condvar,
    capacity: usize,
    depth: Gauge,
}

impl SubmissionQueue {
    /// Creates a queue holding at most `capacity` pending requests;
    /// `depth` is updated on every push/pop.
    pub fn new(capacity: usize, depth: Gauge) -> Self {
        SubmissionQueue {
            state: Mutex::new(QueueState {
                deque: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            notify: Condvar::new(),
            capacity: capacity.max(1),
            depth,
        }
    }

    /// Enqueues a request, failing fast when full or closed.
    pub fn push(&self, pending: Pending) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.deque.len() >= self.capacity {
            return Err(ServeError::Backpressure {
                capacity: self.capacity,
            });
        }
        state.deque.push_back(pending);
        self.depth.set(state.deque.len() as u64);
        drop(state);
        self.notify.notify_all();
        Ok(())
    }

    /// Blocks until a batch is ready and pops it (a contiguous FIFO
    /// prefix chosen by `planner`). Returns `None` once the queue is
    /// closed *and* drained.
    pub fn next_batch(&self, planner: &BatchPlanner) -> Option<Vec<Pending>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if state.deque.is_empty() {
                if state.closed {
                    return None;
                }
                state = self.notify.wait(state).expect("queue lock");
                continue;
            }
            let now = Instant::now();
            let snapshot: Vec<(usize, u64)> = state
                .deque
                .iter()
                .map(|p| (p.tokens, now.duration_since(p.enqueued).as_micros() as u64))
                .collect();
            let take = match planner.decide(&snapshot) {
                PlanDecision::Flush(n) => n,
                // A closing queue flushes what it has instead of waiting
                // for arrivals that will never come.
                PlanDecision::Wait(_) if state.closed => planner.coalesce(&snapshot),
                PlanDecision::Wait(us) => {
                    let (next, timeout) = self
                        .notify
                        .wait_timeout(state, Duration::from_micros(us))
                        .expect("queue lock");
                    state = next;
                    let _ = timeout;
                    continue;
                }
            };
            let take = take.min(state.deque.len());
            let batch: Vec<Pending> = state.deque.drain(..take).collect();
            self.depth.set(state.deque.len() as u64);
            return Some(batch);
        }
    }

    /// Marks the queue closed and wakes all waiters. Already-queued
    /// requests are still served by subsequent [`Self::next_batch`] calls.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.notify.notify_all();
    }

    /// Number of requests currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").deque.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(
        ticket: u64,
        tokens: usize,
    ) -> (Pending, mpsc::Receiver<Result<ServeResponse, ServeError>>) {
        let (tx, rx) = mpsc::sync_channel(1);
        let p = Pending {
            ticket,
            session: "s".into(),
            batch: SequenceBatch::new(&[vec![1; tokens]]).unwrap(),
            options: RequestOptions::tagged(1, ticket),
            fingerprint: 0,
            tokens,
            enqueued: Instant::now(),
            reply: tx,
        };
        (p, rx)
    }

    fn eager_planner(max_requests: usize) -> BatchPlanner {
        BatchPlanner {
            max_requests,
            max_tokens: usize::MAX,
            max_wait_micros: 0,
        }
    }

    #[test]
    fn backpressure_when_full() {
        let q = SubmissionQueue::new(2, Gauge::new());
        let (a, _ra) = pending(1, 4);
        let (b, _rb) = pending(2, 4);
        let (c, _rc) = pending(3, 4);
        q.push(a).unwrap();
        q.push(b).unwrap();
        match q.push(c) {
            Err(ServeError::Backpressure { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn next_batch_pops_fifo_prefix() {
        let q = SubmissionQueue::new(8, Gauge::new());
        let mut keep = Vec::new();
        for t in 1..=5 {
            let (p, rx) = pending(t, 2);
            keep.push(rx);
            q.push(p).unwrap();
        }
        let batch = q.next_batch(&eager_planner(3)).unwrap();
        assert_eq!(
            batch.iter().map(|p| p.ticket).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let batch = q.next_batch(&eager_planner(3)).unwrap();
        assert_eq!(batch.iter().map(|p| p.ticket).collect::<Vec<_>>(), [4, 5]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = SubmissionQueue::new(8, Gauge::new());
        let (p, _rx) = pending(1, 2);
        q.push(p).unwrap();
        q.close();
        // Closed queue flushes the waiting request instead of aging it.
        let planner = BatchPlanner {
            max_requests: 8,
            max_tokens: usize::MAX,
            max_wait_micros: u64::MAX,
        };
        assert_eq!(q.next_batch(&planner).unwrap().len(), 1);
        assert!(q.next_batch(&planner).is_none());
        let (p2, _rx2) = pending(2, 2);
        assert!(matches!(q.push(p2), Err(ServeError::ShuttingDown)));
    }

    #[test]
    fn waiting_consumer_wakes_on_push() {
        let q = std::sync::Arc::new(SubmissionQueue::new(8, Gauge::new()));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.next_batch(&eager_planner(4)));
        std::thread::sleep(Duration::from_millis(10));
        let (p, _rx) = pending(7, 1);
        q.push(p).unwrap();
        let batch = consumer.join().unwrap().unwrap();
        assert_eq!(batch[0].ticket, 7);
    }
}
