//! The serving runtime: worker pool over one shared engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use prism_api::{SelectionHandle, SelectionService, ServiceError};
use prism_baselines::{RankOutcome, Reranker};
use prism_core::{
    rank_full_scores, ActiveRequest, PrismEngine, PrismError, RequestOptions, Selection,
};
use prism_model::layer::ForwardScratch;
use prism_model::SequenceBatch;
use prism_tensor::Tensor;

use crate::config::ServeConfig;
use crate::queue::{Pending, SubmissionQueue};
use crate::quota::{QuotaToken, TenantQuota};
use crate::request::{CacheOutcome, Replier, ResponseHandle, ServeRequest, ServeResponse};
use crate::scheduler::BatchPlanner;
use crate::semantic::{merge_tail_scores, replay_selection, SemState, SemanticLayer};
use crate::session::{fingerprint_batch, CacheLookup, SelectionKey, SessionCache};
use crate::shard::ShardSet;
use crate::stats::ServeStats;

struct ServerShared {
    engine: Arc<PrismEngine>,
    /// Sharded backend: when set, workers execute batches through the
    /// scatter-gather coordinator instead of the single shared engine.
    shards: Option<Arc<ShardSet>>,
    queue: SubmissionQueue,
    planner: BatchPlanner,
    cache: Option<Mutex<SessionCache>>,
    /// Cross-request semantic score cache shared by all sessions and
    /// tenants; `None` when disabled by configuration.
    semcache: Option<SemanticLayer>,
    quota: Option<TenantQuota>,
    stats: ServeStats,
    ticket: AtomicU64,
    workers: usize,
}

/// A running PRISM serving instance.
///
/// Owns the worker threads; dropping (or [`PrismServer::shutdown`])
/// closes the submission queue, drains already-accepted requests and
/// joins the workers. Request handles obtained before shutdown remain
/// valid — accepted work is always answered.
pub struct PrismServer {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl PrismServer {
    /// Starts `config.workers` worker threads over `engine`.
    pub fn start(engine: PrismEngine, config: ServeConfig) -> crate::Result<Self> {
        Self::start_inner(Arc::new(engine), None, config, ServeStats::new())
    }

    /// Starts a *sharded* server: the candidate corpus of every request
    /// is partitioned across `engines` by the consistent-hash forward
    /// map and executed scatter-gather, with results bit-identical to a
    /// single engine. Each shard engine must hold weights resident and
    /// share the selection configuration (seed, mode, precisions).
    ///
    /// `config.replicas` / `config.hedge` configure the resilience
    /// layer: R-way replica sets with mid-request failover, and
    /// tail-latency hedging of stalled shards.
    pub fn start_sharded(engines: Vec<PrismEngine>, config: ServeConfig) -> crate::Result<Self> {
        let stats = ServeStats::new();
        let mut shards = ShardSet::new(engines.into_iter().map(Arc::new).collect())?
            .with_replicas(config.replicas.max(1))
            .with_hedge(config.hedge);
        shards.attach_stats(stats.clone());
        let engine = Arc::clone(shards.engine(0));
        Self::start_inner(engine, Some(Arc::new(shards)), config, stats)
    }

    fn start_inner(
        engine: Arc<PrismEngine>,
        shards: Option<Arc<ShardSet>>,
        config: ServeConfig,
        stats: ServeStats,
    ) -> crate::Result<Self> {
        config.validate()?;
        let semcache = (config.semcache_capacity_bytes > 0)
            .then(|| SemanticLayer::new(config.semcache_config(engine.config().hidden_dim)));
        let shared = Arc::new(ServerShared {
            engine,
            shards,
            queue: SubmissionQueue::new(config.queue_capacity, stats.clone(), config.workers),
            planner: config.planner(),
            cache: (config.session_cache_capacity > 0)
                .then(|| Mutex::new(SessionCache::new(config.session_cache_capacity))),
            semcache,
            quota: (config.tenant_max_inflight > 0)
                .then(|| TenantQuota::new(config.tenant_max_inflight)),
            stats,
            ticket: AtomicU64::new(0),
            workers: config.workers,
        });
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("prism-serve-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| ServiceError::Config(format!("spawning worker {i}: {e}")))?;
            workers.push(handle);
        }
        Ok(PrismServer { shared, workers })
    }

    /// Submits a request; fails fast with [`ServiceError::Backpressure`]
    /// when the queue is full and [`ServiceError::DeadlineExceeded`] when
    /// the request's deadline has already passed at admission.
    pub fn submit(&self, request: ServeRequest) -> crate::Result<ResponseHandle> {
        self.shared.submit(request)
    }

    /// Live serving telemetry (shared handles — cheap to clone).
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// The engine behind this server (shard 0's engine when sharded).
    pub fn engine(&self) -> &PrismEngine {
        &self.shared.engine
    }

    /// The scatter-gather shard set, when started via
    /// [`PrismServer::start_sharded`] (fault injection, routing
    /// diagnostics).
    pub fn shards(&self) -> Option<&ShardSet> {
        self.shared.shards.as_deref()
    }

    /// The cross-request semantic cache tier, when enabled (byte meter
    /// and leak audits for tests and telemetry).
    pub fn semcache(&self) -> Option<&SemanticLayer> {
        self.shared.semcache.as_ref()
    }

    /// A lightweight per-session submission handle (usable as a
    /// [`Reranker`] by the application pipelines).
    pub fn session(&self, name: impl Into<String>) -> ServeSession {
        ServeSession {
            shared: Arc::clone(&self.shared),
            session: name.into(),
        }
    }

    /// The `prism-api` facade over this server: a cloneable
    /// [`SelectionService`] whose submissions return non-blocking
    /// `SelectionHandle`s with cancellation, deadlines and progress.
    pub fn service(&self, session: impl Into<String>) -> RemoteService {
        RemoteService {
            shared: Arc::clone(&self.shared),
            session: session.into(),
        }
    }

    /// Stops accepting requests, drains the queue and joins the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for PrismServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl ServerShared {
    /// Resolves ticket/tag/deadline for one submission; `None` when the
    /// deadline already passed (counted and rejected).
    fn admit(
        &self,
        options: &mut RequestOptions,
        now: Instant,
    ) -> Result<(u64, Option<Instant>), ServiceError> {
        // One admission rule for every backend (prism-api owns it).
        let deadline = prism_api::admission_deadline(options, now).inspect_err(|_| {
            self.stats.deadline_rejected.inc();
        })?;
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed) + 1;
        if options.tag.is_none() {
            // Pin the routing stream to the submission order so a serving
            // run is reproducible against a sequential reference.
            options.tag = Some(ticket);
        }
        Ok((ticket, deadline))
    }

    /// Takes the tenant's quota slot (when quotas are configured),
    /// counting and surfacing the typed rejection at its ceiling.
    fn acquire_quota(&self, tenant: &str) -> Result<Option<QuotaToken>, ServiceError> {
        match &self.quota {
            Some(quota) => match quota.acquire(tenant) {
                Ok(token) => Ok(Some(token)),
                Err(e) => {
                    self.stats.quota_rejected.inc();
                    Err(e)
                }
            },
            None => Ok(None),
        }
    }

    fn enqueue(&self, mut pending: Pending) -> crate::Result<()> {
        pending.tokens = pending.batch.total_tokens();
        // Only the cache reads the fingerprint; skip the O(tokens) hash
        // for cache-off deployments.
        pending.fingerprint = if self.cache.is_some() {
            fingerprint_batch(&pending.batch)
        } else {
            0
        };
        match self.queue.push(pending) {
            Ok(()) => {
                self.stats.submitted.inc();
                Ok(())
            }
            Err(e) => {
                if matches!(e, ServiceError::Backpressure { .. }) {
                    self.stats.rejected.inc();
                }
                Err(e)
            }
        }
    }

    fn submit(&self, request: ServeRequest) -> crate::Result<ResponseHandle> {
        let now = Instant::now();
        let mut options = request.options;
        let (ticket, deadline) = self.admit(&mut options, now)?;
        let quota = self.acquire_quota(&request.session)?;
        let (tx, rx) = mpsc::sync_channel(1);
        self.enqueue(Pending {
            ticket,
            session: request.session,
            batch: request.batch,
            options,
            fingerprint: 0,
            tokens: 0,
            enqueued: now,
            deadline,
            cancel: prism_core::CancelToken::new(),
            quota,
            reply: Replier::Channel(tx),
        })?;
        Ok(ResponseHandle { ticket, rx })
    }

    fn submit_handle(
        &self,
        session: String,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> Result<SelectionHandle, ServiceError> {
        let now = Instant::now();
        let mut options = options;
        let (ticket, deadline) = self.admit(&mut options, now)?;
        let quota = self.acquire_quota(&session)?;
        let (handle, completion) = SelectionHandle::channel(ticket, deadline);
        self.enqueue(Pending {
            ticket,
            session,
            batch,
            options,
            fingerprint: 0,
            tokens: 0,
            enqueued: now,
            deadline,
            cancel: handle.cancel_token(),
            quota,
            reply: Replier::Handle(completion),
        })?;
        Ok(handle)
    }
}

fn worker_loop(shared: &ServerShared) {
    let mut scratch: Vec<ForwardScratch> = Vec::new();
    while let Some(batch) = shared.queue.next_batch(&shared.planner) {
        execute_batch(shared, batch, &mut scratch);
    }
}

/// One request bound for engine execution (cache probes resolved).
struct RunItem {
    pending: Pending,
    outcome: CacheOutcome,
    queued_us: u64,
    /// Semantic-cache bookkeeping when the request engaged that tier
    /// (partial replay merge, verification, harvest happen after
    /// finalize).
    sem: Option<SemState>,
}

/// Probes the semantic cache for one eligible request. Returns
/// `Ok(selection)` when every candidate hit (the request is answered
/// without touching the engine), `Err(state)` when at least one
/// candidate is novel or the request sampled into verification.
fn probe_semantic(
    shared: &ServerShared,
    layer: &SemanticLayer,
    pending: &Pending,
    embed: &Tensor,
) -> Result<Selection, SemState> {
    let stats = &shared.stats;
    let mode = pending.options.semcache;
    let profile = SemanticLayer::profile_byte(&pending.options);
    let pooled = SemanticLayer::pooled_candidates(embed, &pending.batch);
    let probes = layer.probe_batch(&pending.batch, &pooled, profile, mode);
    let hits = probes.iter().filter(|p| p.is_hit()).count();
    stats.semcache_hits.inc_by(hits as u64);
    stats.semcache_misses.inc_by((probes.len() - hits) as u64);
    let verify = layer.wants_verify(mode, &probes);
    if hits == probes.len() && !verify {
        // Full replay: every candidate's full-depth score is cached, so
        // the exact pruning-off ranking is reproducible without running
        // a single layer.
        let scores: Vec<f32> = probes.iter().map(|p| p.score().unwrap_or(0.0)).collect();
        return Ok(replay_selection(
            scores,
            pending.options.k,
            shared.engine.config().num_layers,
        ));
    }
    Err(SemState {
        profile,
        pooled,
        probes,
        novel: None,
        verify,
    })
}

/// Merges, verifies and harvests one finalized request's semantic-cache
/// state, returning the selection to answer with. Only runs on the
/// success path: a cancelled, expired or failed request harvests
/// nothing, so no cache or meter bytes can leak from aborted work.
fn resolve_semantic(
    shared: &ServerShared,
    layer: &SemanticLayer,
    pending: &Pending,
    sem: &SemState,
    mut selection: Selection,
) -> Selection {
    let stats = &shared.stats;
    if let Some(novel) = &sem.novel {
        // Partial replay: the engine computed only the novel tail;
        // scatter its scores back through the keep mask and re-rank at
        // the original `k` so the merged result is exactly the full
        // pruning-off order.
        let merged = merge_tail_scores(&sem.probes, novel, &selection.last_scores);
        let trace = std::mem::take(&mut selection.trace);
        let coverage = selection.coverage;
        selection = Selection {
            ranked: rank_full_scores(
                &merged,
                pending.options.k,
                shared.engine.config().num_layers,
            ),
            last_scores: merged,
            coverage,
            trace,
        };
        layer.harvest(
            &pending.batch,
            &sem.pooled,
            sem.profile,
            novel,
            &selection.last_scores,
        );
    } else {
        // Full compute: either nothing hit (harvest-only pass) or the
        // request sampled into verification — compare every replayed
        // score bit-for-bit and poison the bucket of any mismatch; the
        // caller gets the exact result either way.
        if sem.verify {
            let fallbacks = layer.verify_replays(&sem.probes, &selection.last_scores);
            stats.semcache_fallbacks.inc_by(fallbacks);
        }
        let all: Vec<usize> = (0..sem.probes.len()).collect();
        layer.harvest(
            &pending.batch,
            &sem.pooled,
            sem.profile,
            &all,
            &selection.last_scores,
        );
    }
    stats.semcache_bytes.set(layer.bytes());
    selection
}

fn execute_batch(shared: &ServerShared, batch: Vec<Pending>, scratch: &mut Vec<ForwardScratch>) {
    let picked_at = Instant::now();
    let stats = &shared.stats;

    // Last pre-execution cancellation/deadline point: the queue shed
    // dead work when the batch was popped, but the caller may have
    // acted in the window since. Shed first so the batch telemetry and
    // per-response `batch_size` describe what actually executes.
    let batch: Vec<Pending> = batch
        .into_iter()
        .filter_map(|mut pending| {
            if pending.cancel.is_cancelled() {
                stats.cancelled.inc();
                pending.reply.send(Err(ServiceError::Cancelled));
                return None;
            }
            if pending.deadline.is_some_and(|d| picked_at >= d) {
                stats.deadline_missed.inc();
                pending.reply.send(Err(ServiceError::DeadlineExceeded));
                return None;
            }
            Some(pending)
        })
        .collect();
    if batch.is_empty() {
        return;
    }
    let size = batch.len();
    stats.batches.inc();
    stats.batch_size.record(size as u64);
    stats
        .batch_tokens
        .record(batch.iter().map(|p| p.tokens as u64).sum());
    stats.in_flight.add(size as u64);

    // ---- Sharded backend: scatter-gather per request ----
    if let Some(shards) = &shared.shards {
        execute_sharded_batch(shared, shards, batch, size, picked_at);
        stats.in_flight.sub(size as u64);
        return;
    }

    let mut items: Vec<RunItem> = Vec::with_capacity(size);
    let mut planned: Vec<ActiveRequest> = Vec::with_capacity(size);
    for mut pending in batch {
        let queued_us = picked_at.duration_since(pending.enqueued).as_micros() as u64;
        stats.queued_us.record(queued_us);
        let key = SelectionKey::from_options(&pending.options);

        // ---- Session-cache probe ----
        let lookup = match &shared.cache {
            Some(cache) => cache.lock().expect("session cache lock").lookup(
                &pending.session,
                pending.fingerprint,
                &pending.batch,
                &key,
            ),
            None => CacheLookup::Miss,
        };
        if let CacheLookup::Selection(sel) = lookup {
            stats.cache_selection_hits.inc();
            stats.service_us.record(0);
            stats.completed.inc();
            let response = ServeResponse {
                selection: *sel,
                ticket: pending.ticket,
                batch_size: size,
                queued_us,
                service_us: 0,
                cache: CacheOutcome::SelectionHit,
            };
            pending.reply.send(Ok(response));
            continue;
        }

        // ---- Resolve the candidate embedding (replayed or computed).
        // The embedding is needed up front both for embed-replay
        // planning and for the semantic cache's pooled probe vectors.
        let semcache = shared
            .semcache
            .as_ref()
            .filter(|_| SemanticLayer::eligible(&pending.options, shared.engine.options().pruning));
        let (embed, outcome) = match lookup {
            CacheLookup::Embed(embed) => {
                stats.cache_embed_hits.inc();
                (Some(embed), CacheOutcome::EmbedHit)
            }
            _ => {
                stats.cache_misses.inc();
                if shared.cache.is_some() || semcache.is_some() {
                    match shared.engine.embed_batch(&pending.batch) {
                        Ok(embed) => {
                            if let Some(cache) = &shared.cache {
                                cache.lock().expect("session cache lock").store_embed(
                                    &pending.session,
                                    pending.fingerprint,
                                    &pending.batch,
                                    embed.clone(),
                                );
                            }
                            (Some(embed), CacheOutcome::Miss)
                        }
                        Err(e) => {
                            stats.completed.inc();
                            pending.reply.send(Err(ServiceError::from(e)));
                            continue;
                        }
                    }
                } else {
                    (None, CacheOutcome::Miss)
                }
            }
        };

        // ---- Semantic-cache probe (opted-in, full-depth requests) ----
        let mut sem: Option<SemState> = None;
        if let (Some(layer), Some(embed)) = (semcache, embed.as_ref()) {
            match probe_semantic(shared, layer, &pending, embed) {
                Ok(selection) => {
                    stats.service_us.record(0);
                    stats.completed.inc();
                    store_selection(shared, &pending, &selection);
                    let response = ServeResponse {
                        selection,
                        ticket: pending.ticket,
                        batch_size: size,
                        queued_us,
                        service_us: 0,
                        cache: CacheOutcome::SemanticHit,
                    };
                    pending.reply.send(Ok(response));
                    continue;
                }
                Err(state) => sem = Some(state),
            }
        }

        // ---- Plan: the full request, or only the novel tail of a
        // partially-hit semantic probe ----
        let plan = match (&mut sem, &embed) {
            (Some(state), Some(embed)) if !state.verify && state.hits() > 0 => {
                let novel: Vec<usize> = state
                    .probes
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| !p.is_hit())
                    .map(|(i, _)| i)
                    .collect();
                let seqs: Vec<Vec<u32>> = novel
                    .iter()
                    .map(|&i| pending.batch.sequence(i).to_vec())
                    .collect();
                // Sub-views of an already-validated batch stay valid,
                // and per-candidate embedding rows are position-local,
                // so the original rows transplant unchanged.
                let sub_batch = SequenceBatch::new(&seqs).expect("novel sub-batch");
                let dim = embed.cols();
                let data = embed.data();
                let mut rows = Vec::new();
                for &i in &novel {
                    let (s, e) = pending.batch.ranges()[i];
                    rows.extend_from_slice(&data[s * dim..e * dim]);
                }
                let sub_embed =
                    Tensor::from_vec(rows.len() / dim, dim, rows).expect("novel sub-embed");
                let mut sub_options = pending.options.clone();
                sub_options.k = sub_options.k.min(novel.len());
                state.novel = Some(novel);
                shared
                    .engine
                    .plan_request_with_embed(&sub_batch, sub_options, Some(&sub_embed))
            }
            (_, Some(embed)) => shared.engine.plan_request_with_embed(
                &pending.batch,
                pending.options.clone(),
                Some(embed),
            ),
            (_, None) => shared
                .engine
                .plan_request(&pending.batch, pending.options.clone()),
        };
        match plan {
            Ok(mut p) => {
                // Wire the caller's controls into the engine: cancel and
                // deadline abort at layer boundaries, progress streams
                // back through the facade handle.
                p.attach_cancel(pending.cancel.clone());
                if let Some(d) = pending.deadline {
                    p.attach_deadline(d);
                }
                if let Replier::Handle(completion) = &pending.reply {
                    p.attach_progress(completion.progress_fn());
                }
                planned.push(p);
                items.push(RunItem {
                    pending,
                    outcome,
                    queued_us,
                    sem,
                });
            }
            Err(e) => {
                stats.completed.inc();
                pending.reply.send(Err(ServiceError::from(e)));
            }
        }
    }

    // ---- Execute the coalesced batch: one pass over the weights ----
    if !planned.is_empty() {
        let t0 = Instant::now();
        let run = shared.engine.run_planned(&mut planned, scratch);
        let service_us = t0.elapsed().as_micros() as u64;
        match run {
            Ok(()) => {
                for (mut item, req) in items.into_iter().zip(planned) {
                    // Finalize per request: an aborted member of the
                    // batch (cancelled / past deadline) surfaces as its
                    // typed error without failing its batch-mates.
                    match shared.engine.finalize_request(req) {
                        Ok(selection) => {
                            stats
                                .slots_quarantined
                                .inc_by(selection.trace.spill_stats.quarantined);
                            // Semantic-cache epilogue: merge a partial
                            // replay with its computed tail, verify and
                            // harvest. Aborted batch-mates skip this, so
                            // they contribute no cache bytes.
                            let selection = match (&item.sem, &shared.semcache) {
                                (Some(sem), Some(layer)) => {
                                    resolve_semantic(shared, layer, &item.pending, sem, selection)
                                }
                                _ => selection,
                            };
                            stats.service_us.record(service_us);
                            stats.completed.inc();
                            store_selection(shared, &item.pending, &selection);
                            let response = ServeResponse {
                                selection,
                                ticket: item.pending.ticket,
                                batch_size: size,
                                queued_us: item.queued_us,
                                service_us,
                                cache: item.outcome,
                            };
                            item.pending.reply.send(Ok(response));
                        }
                        Err(PrismError::Cancelled) => {
                            stats.cancelled.inc();
                            item.pending.reply.send(Err(ServiceError::Cancelled));
                        }
                        Err(PrismError::DeadlineExceeded) => {
                            stats.deadline_missed.inc();
                            item.pending.reply.send(Err(ServiceError::DeadlineExceeded));
                        }
                        Err(e) => {
                            stats.completed.inc();
                            item.pending.reply.send(Err(ServiceError::from(e)));
                        }
                    }
                }
            }
            Err(e) => {
                let err = ServiceError::from(e);
                for mut item in items {
                    stats.completed.inc();
                    item.pending.reply.send(Err(err.clone()));
                }
            }
        }
    }
    stats.in_flight.sub(size as u64);
}

/// Executes one coalesced batch through the scatter-gather coordinator.
///
/// Planning happens inside each shard (the corpus partition is
/// per-request), so the embed-replay tier of the session cache does not
/// apply here — only full-selection replays are probed and stored. Each
/// request runs the deterministic lockstep scatter loop with the
/// caller's cancel token, deadline and progress sink attached; a dead or
/// slow shard surfaces as its typed error without failing batch-mates.
fn execute_sharded_batch(
    shared: &ServerShared,
    shards: &ShardSet,
    batch: Vec<Pending>,
    size: usize,
    picked_at: Instant,
) {
    let stats = &shared.stats;
    for mut pending in batch {
        let queued_us = picked_at.duration_since(pending.enqueued).as_micros() as u64;
        stats.queued_us.record(queued_us);
        let key = SelectionKey::from_options(&pending.options);

        let lookup = match &shared.cache {
            Some(cache) => cache.lock().expect("session cache lock").lookup(
                &pending.session,
                pending.fingerprint,
                &pending.batch,
                &key,
            ),
            None => CacheLookup::Miss,
        };
        if let CacheLookup::Selection(sel) = lookup {
            stats.cache_selection_hits.inc();
            stats.service_us.record(0);
            stats.completed.inc();
            let response = ServeResponse {
                selection: *sel,
                ticket: pending.ticket,
                batch_size: size,
                queued_us,
                service_us: 0,
                cache: CacheOutcome::SelectionHit,
            };
            pending.reply.send(Ok(response));
            continue;
        }
        stats.cache_misses.inc();

        // ---- Semantic-cache probe: all-or-nothing in the sharded path.
        // Planning happens inside each shard over its corpus partition,
        // so a partial tail cannot be transplanted here; a full hit
        // answers without scattering, anything less runs the full
        // request (then verifies/harvests).
        let mut sem: Option<SemState> = None;
        if let Some(layer) = &shared.semcache {
            if SemanticLayer::eligible(&pending.options, shared.engine.options().pruning) {
                // Shard engines share the full embedding weights, so
                // shard 0's embedding is the probe's pooling source.
                if let Ok(embed) = shared.engine.embed_batch(&pending.batch) {
                    match probe_semantic(shared, layer, &pending, &embed) {
                        Ok(selection) => {
                            stats.service_us.record(0);
                            stats.completed.inc();
                            store_selection(shared, &pending, &selection);
                            let response = ServeResponse {
                                selection,
                                ticket: pending.ticket,
                                batch_size: size,
                                queued_us,
                                service_us: 0,
                                cache: CacheOutcome::SemanticHit,
                            };
                            pending.reply.send(Ok(response));
                            continue;
                        }
                        Err(mut state) => {
                            // The full request runs below; never a tail.
                            state.novel = None;
                            sem = Some(state);
                        }
                    }
                }
            }
        }

        let progress = match &pending.reply {
            Replier::Handle(completion) => Some(completion.progress_fn()),
            _ => None,
        };
        let t0 = Instant::now();
        let run = shards.select_with_controls(
            &pending.batch,
            pending.options.clone(),
            Some(pending.cancel.clone()),
            pending.deadline,
            progress,
        );
        let service_us = t0.elapsed().as_micros() as u64;
        match run {
            Ok(selection) => {
                let selection = match (&sem, &shared.semcache) {
                    (Some(sem), Some(layer)) => {
                        resolve_semantic(shared, layer, &pending, sem, selection)
                    }
                    _ => selection,
                };
                if !selection.is_complete() {
                    stats.partial_results.inc();
                }
                stats.service_us.record(service_us);
                stats.completed.inc();
                if let Some(cache) = &shared.cache {
                    cache.lock().expect("session cache lock").store_selection(
                        &pending.session,
                        pending.fingerprint,
                        &pending.batch,
                        key,
                        &selection,
                    );
                }
                let response = ServeResponse {
                    selection,
                    ticket: pending.ticket,
                    batch_size: size,
                    queued_us,
                    service_us,
                    cache: CacheOutcome::Miss,
                };
                pending.reply.send(Ok(response));
            }
            Err(PrismError::Cancelled) => {
                stats.cancelled.inc();
                pending.reply.send(Err(ServiceError::Cancelled));
            }
            Err(PrismError::DeadlineExceeded) => {
                stats.deadline_missed.inc();
                pending.reply.send(Err(ServiceError::DeadlineExceeded));
            }
            Err(e) => {
                stats.completed.inc();
                pending.reply.send(Err(ServiceError::from(e)));
            }
        }
    }
}

fn store_selection(shared: &ServerShared, pending: &Pending, selection: &Selection) {
    if let Some(cache) = &shared.cache {
        cache.lock().expect("session cache lock").store_selection(
            &pending.session,
            pending.fingerprint,
            &pending.batch,
            SelectionKey::from_options(&pending.options),
            selection,
        );
    }
}

/// A per-session handle: submissions inherit the session key, and the
/// blocking [`ServeSession::select`] makes the server a drop-in
/// [`Reranker`] for the application pipelines (RAG, agent memory).
#[derive(Clone)]
pub struct ServeSession {
    shared: Arc<ServerShared>,
    session: String,
}

impl ServeSession {
    /// The session key.
    pub fn name(&self) -> &str {
        &self.session
    }

    /// Submits a batch under this session.
    pub fn submit(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> crate::Result<ResponseHandle> {
        self.shared.submit(ServeRequest {
            session: self.session.clone(),
            batch,
            options,
        })
    }

    /// Submits and blocks for the response.
    pub fn select(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> crate::Result<ServeResponse> {
        self.submit(batch, options)?.wait()
    }
}

impl Reranker for ServeSession {
    fn name(&self) -> &str {
        "PRISM-SERVE"
    }

    fn rerank(&mut self, batch: &SequenceBatch, k: usize) -> prism_core::Result<RankOutcome> {
        let response = self
            .select(batch.clone(), RequestOptions::top_k(k))
            .map_err(|e| PrismError::InvalidRequest(format!("serving: {e}")))?;
        Ok(RankOutcome {
            ranked: response
                .selection
                .ranked
                .iter()
                .map(|r| (r.id, r.score))
                .collect(),
            scores: response.selection.last_scores,
        })
    }
}

/// The serving backend of the `prism-api` facade: a cloneable
/// [`SelectionService`] bound to one session of a [`PrismServer`].
/// Submissions flow through the bounded queue and priority-then-EDF
/// scheduler like every other request; the returned `SelectionHandle`
/// adds mid-flight cancellation and layer-granularity progress on top.
#[derive(Clone)]
pub struct RemoteService {
    shared: Arc<ServerShared>,
    session: String,
}

impl RemoteService {
    /// The session key submissions run under.
    pub fn session(&self) -> &str {
        &self.session
    }

    /// Server-side worker count (used by backoff heuristics).
    pub fn workers(&self) -> usize {
        self.shared.workers
    }
}

impl SelectionService for RemoteService {
    fn submit(
        &self,
        batch: SequenceBatch,
        options: RequestOptions,
    ) -> Result<SelectionHandle, ServiceError> {
        self.shared
            .submit_handle(self.session.clone(), batch, options)
    }
}
