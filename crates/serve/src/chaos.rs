//! Deterministic chaos harness for the resilience layer.
//!
//! A [`ChaosPlan`] is a *seeded, replayable* fault schedule: for each
//! request in a run it may bring one shard down ([`ShardFault::Dead`])
//! or make it stall ([`ShardFault::Slow`]) for exactly that request,
//! healing it afterwards. [`run_chaos`] drives the schedule against a
//! real [`ShardSet`] and checks the two properties the resilience layer
//! promises:
//!
//! 1. **Parity** — whenever replication covers the fault (R ≥ 2, single
//!    shard down), the merged selection is bit-identical to the
//!    fault-free golden result.
//! 2. **Hygiene** — no request, faulted or not, leaks spill files or
//!    metered hidden-state/intermediate bytes on any shard
//!    ([`audit_shard_hygiene`]).
//!
//! Determinism is load-bearing: the same seed always produces the same
//! schedule, so a chaos failure from CI replays locally with nothing
//! but the seed. The nightly soak runs the same harness over loopback
//! TCP with concurrent clients (see `tests/chaos_conformance.rs`).

use std::time::Duration;

use prism_core::{PrismError, RequestOptions, Selection};
use prism_metrics::MemCategory;
use prism_model::SequenceBatch;

use crate::shard::{ShardFault, ShardSet};

/// One scheduled fault: `shard` runs under `fault` for the whole of one
/// request, then is healed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStep {
    /// Index of the request this fault brackets.
    pub request: usize,
    /// The shard it lands on.
    pub shard: usize,
    /// The injected failure mode.
    pub fault: ShardFault,
}

/// A seeded, replayable fault schedule over `requests` requests against
/// `shards` shards. At most one fault per request — the single-fault
/// envelope R=2 replication is expected to cover with bit-parity.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed that generated (and replays) this schedule.
    pub seed: u64,
    steps: Vec<ChaosStep>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosPlan {
    /// Generates the schedule for `seed`: ~2/3 of requests get a fault
    /// (uniform shard; `Dead` twice as often as `Slow`, whose stall is
    /// drawn from 1–4 ms so it straddles typical hedge delays — some
    /// stalls hedge away, some are waited out).
    pub fn seeded(seed: u64, shards: usize, requests: usize) -> Self {
        let mut rng = seed ^ 0xC4A0_5C4A_05C4_A05C;
        let mut steps = Vec::new();
        for request in 0..requests {
            if splitmix64(&mut rng).is_multiple_of(3) {
                continue; // fault-free request
            }
            let shard = (splitmix64(&mut rng) % shards.max(1) as u64) as usize;
            let fault = if splitmix64(&mut rng) % 3 < 2 {
                ShardFault::Dead
            } else {
                let ms = 1 + splitmix64(&mut rng) % 4;
                ShardFault::Slow(Duration::from_millis(ms))
            };
            steps.push(ChaosStep {
                request,
                shard,
                fault,
            });
        }
        ChaosPlan { seed, steps }
    }

    /// Every scheduled step, in request order.
    pub fn steps(&self) -> &[ChaosStep] {
        &self.steps
    }

    /// The steps bracketing request `request`.
    pub fn steps_for(&self, request: usize) -> impl Iterator<Item = &ChaosStep> {
        self.steps.iter().filter(move |s| s.request == request)
    }
}

/// What one chaos run observed, request by request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Requests driven.
    pub requests: usize,
    /// Requests that ran under an injected fault.
    pub faulted: usize,
    /// Requests whose selection matched the golden result bit-for-bit.
    pub matched: usize,
    /// Requests answered with partial coverage
    /// ([`prism_core::PartialMode::Partial`] only).
    pub partial: usize,
    /// Requests that failed with a typed error (replicas exhausted under
    /// the default fail-fast mode).
    pub failed: usize,
}

impl ChaosReport {
    /// True when every request matched its golden bits — the
    /// conformance bar whenever replication covers the schedule.
    pub fn all_matched(&self) -> bool {
        self.matched == self.requests
    }
}

/// Drives `plan` against `set`: per request, inject the scheduled
/// fault, run the selection, heal, and compare against the golden
/// (fault-free) result bit-for-bit. Golden results must come from the
/// same batches/options on a fault-free engine (sharded or not — they
/// are bit-identical by the scatter conformance contract).
///
/// Typed per-request failures are *counted*, not propagated — a chaos
/// schedule that exhausts replicas under fail-fast mode is a legitimate
/// outcome the report surfaces as `failed`. Only infrastructure errors
/// (a failure on a fault-free request) propagate as `Err`.
pub fn run_chaos(
    set: &ShardSet,
    batches: &[SequenceBatch],
    options: &RequestOptions,
    golden: &[Selection],
    plan: &ChaosPlan,
) -> Result<ChaosReport, PrismError> {
    assert_eq!(
        batches.len(),
        golden.len(),
        "one golden selection per batch"
    );
    let mut report = ChaosReport {
        requests: batches.len(),
        ..Default::default()
    };
    for (i, (batch, gold)) in batches.iter().zip(golden).enumerate() {
        let mut faulted = false;
        for step in plan.steps_for(i) {
            set.inject_fault(step.shard, step.fault);
            faulted = true;
        }
        if faulted {
            report.faulted += 1;
        }
        let mut opts = options.clone();
        opts.tag = Some(0xC4A0_0000 ^ i as u64);
        let outcome = set.select_with(batch, opts);
        for step in plan.steps_for(i) {
            set.inject_fault(step.shard, ShardFault::Healthy);
        }
        match outcome {
            Ok(sel) => {
                let same = sel.ranked.len() == gold.ranked.len()
                    && sel
                        .ranked
                        .iter()
                        .zip(&gold.ranked)
                        .all(|(a, b)| a.id == b.id && a.score.to_bits() == b.score.to_bits());
                if !sel.is_complete() {
                    report.partial += 1;
                } else if same {
                    report.matched += 1;
                }
            }
            Err(e) if faulted => {
                // Replicas exhausted (or deadline under a stall): a
                // counted, typed outcome — never a panic or wrong bits.
                let _ = e;
                report.failed += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(report)
}

/// Audits every shard of `set` for leaked resources: spill directories
/// must be empty and the per-shard meters must carry zero hidden-state
/// and intermediate bytes. Call between requests or after a run —
/// anything non-zero is a leak (the engines release request state at
/// finalize/abort, not lazily).
pub fn audit_shard_hygiene(set: &ShardSet) -> Result<(), String> {
    for i in 0..set.shards() {
        let engine = set.engine(i);
        let dir = engine.spill_dir();
        // Only audit private spill dirs: the system temp dir holds
        // unrelated files by design.
        if dir != std::env::temp_dir() {
            let leftover: Vec<String> = std::fs::read_dir(dir)
                .map_err(|e| format!("shard {i}: reading spill dir {}: {e}", dir.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            if !leftover.is_empty() {
                return Err(format!("shard {i} leaked spill files: {leftover:?}"));
            }
        }
        for cat in [MemCategory::HiddenStates, MemCategory::Intermediate] {
            let bytes = engine.meter().current(cat);
            if bytes != 0 {
                return Err(format!("shard {i} leaked {bytes} bytes of {cat:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_replay_deterministically() {
        let a = ChaosPlan::seeded(42, 3, 64);
        let b = ChaosPlan::seeded(42, 3, 64);
        assert_eq!(a.steps(), b.steps());
        let c = ChaosPlan::seeded(43, 3, 64);
        assert_ne!(a.steps(), c.steps(), "different seeds must differ");
    }

    #[test]
    fn plans_stay_in_the_single_fault_envelope() {
        let plan = ChaosPlan::seeded(7, 4, 256);
        assert!(!plan.steps().is_empty(), "fault probability too low");
        for w in plan.steps().windows(2) {
            assert!(
                w[1].request > w[0].request,
                "at most one fault per request, in order"
            );
        }
        for s in plan.steps() {
            assert!(s.shard < 4);
            assert_eq!(plan.steps_for(s.request).count(), 1);
        }
        // Both fault flavors appear over a long enough schedule.
        assert!(plan.steps().iter().any(|s| s.fault == ShardFault::Dead));
        assert!(plan
            .steps()
            .iter()
            .any(|s| matches!(s.fault, ShardFault::Slow(_))));
    }

    #[test]
    fn report_matters() {
        let r = ChaosReport {
            requests: 4,
            matched: 4,
            ..Default::default()
        };
        assert!(r.all_matched());
        let r = ChaosReport {
            requests: 4,
            matched: 3,
            partial: 1,
            ..Default::default()
        };
        assert!(!r.all_matched());
    }
}
