//! Request/response types of the serving API.
//!
//! Since the `prism-api` facade landed, the serving layer's error type
//! *is* the facade's [`ServiceError`] (the old ad-hoc `ServeError` enum
//! survives only as a type alias), and a request can be answered through
//! either transport: the legacy [`ResponseHandle`] channel or a facade
//! `SelectionHandle` completion ([`Replier`]).

use std::sync::mpsc;

use prism_api::{Completion, SelectionOutcome};
use prism_core::{RequestOptions, Selection};
use prism_model::SequenceBatch;
use serde::Serialize;

pub use prism_api::ServiceError;

/// The serving layer's historical error name, now the facade hierarchy.
pub type ServeError = ServiceError;

/// A serving request: one candidate batch to select from, bound to a
/// session.
///
/// The session identifies the tenant for cache affinity and FIFO
/// guarantees; the [`RequestOptions`] carry `k`, per-request routing
/// overrides, the scheduling `priority`, an optional relative
/// `deadline_us`, and optionally an explicit routing `tag`. When no tag
/// is given the server assigns the request's ticket number (its global
/// submission index, starting at 1), which makes a serving run
/// reproducible against a sequential reference that processes the same
/// requests in submission order.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Session (tenant) key.
    pub session: String,
    /// The packed candidate batch.
    pub batch: SequenceBatch,
    /// Per-request selection parameters.
    pub options: RequestOptions,
}

impl ServeRequest {
    /// A plain top-`k` request for `session`.
    pub fn new(session: impl Into<String>, batch: SequenceBatch, k: usize) -> Self {
        ServeRequest {
            session: session.into(),
            batch,
            options: RequestOptions::top_k(k),
        }
    }

    /// Replaces the request options.
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }
}

/// How the session cache participated in answering a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CacheOutcome {
    /// Corpus not cached (or cache disabled): full execution.
    Miss,
    /// Candidate embeddings replayed from the session cache; transformer
    /// layers still executed.
    EmbedHit,
    /// Exact repeat: the whole [`Selection`] was served from the cache.
    SelectionHit,
    /// Every candidate's full-depth score was replayed from the
    /// cross-request semantic cache ([`crate::SemanticLayer`]): no
    /// transformer layers executed for this request.
    SemanticHit,
}

/// A completed serving response.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The selection, bit-identical to a direct engine call with the same
    /// batch, options and tag.
    pub selection: Selection,
    /// Global submission index of the request (1-based).
    pub ticket: u64,
    /// Number of requests coalesced into the executing batch.
    pub batch_size: usize,
    /// Microseconds spent queued before a worker picked the request up.
    pub queued_us: u64,
    /// Microseconds of batch execution (shared across the batch).
    pub service_us: u64,
    /// Session-cache participation.
    pub cache: CacheOutcome,
}

impl ServeResponse {
    /// Converts into the facade's backend-independent outcome.
    pub fn into_outcome(self) -> SelectionOutcome {
        SelectionOutcome {
            served_from_cache: self.cache != CacheOutcome::Miss,
            selection: self.selection,
            ticket: self.ticket,
            queued_us: self.queued_us,
            service_us: self.service_us,
            batch_size: self.batch_size,
        }
    }
}

/// The way one request's answer travels back to its caller: the legacy
/// sync-channel behind [`ResponseHandle`], or a facade completion
/// behind a `prism_api::SelectionHandle`.
#[derive(Debug)]
pub enum Replier {
    /// Legacy channel transport.
    Channel(mpsc::SyncSender<std::result::Result<ServeResponse, ServeError>>),
    /// Facade handle transport.
    Handle(Completion),
}

impl Replier {
    /// Delivers the result. Safe to call once per request from whichever
    /// component resolves it first (queue shed or worker); a dropped
    /// caller-side handle is not an error.
    pub fn send(&mut self, result: std::result::Result<ServeResponse, ServeError>) {
        match self {
            Replier::Channel(tx) => {
                let _ = tx.send(result);
            }
            Replier::Handle(completion) => {
                completion.complete(result.map(ServeResponse::into_outcome));
            }
        }
    }
}

/// Waits for the response to one submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    pub(crate) ticket: u64,
    pub(crate) rx: mpsc::Receiver<std::result::Result<ServeResponse, ServeError>>,
}

impl ResponseHandle {
    /// The request's global submission index (1-based; also its routing
    /// tag unless one was set explicitly).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> crate::Result<ServeResponse> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Disconnected),
        }
    }

    /// Returns the response if it is already available.
    pub fn try_wait(&self) -> Option<crate::Result<ServeResponse>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::Priority;

    #[test]
    fn request_builder_defaults() {
        let batch = SequenceBatch::new(&[vec![1, 2, 3]]).unwrap();
        let r = ServeRequest::new("tenant-a", batch, 2);
        assert_eq!(r.session, "tenant-a");
        assert_eq!(r.options.k, 2);
        assert!(r.options.tag.is_none());
        assert_eq!(r.options.priority, Priority::Normal);
        let r = r.with_options(RequestOptions::tagged(1, 9).with_priority(Priority::High));
        assert_eq!(r.options.tag, Some(9));
        assert_eq!(r.options.priority, Priority::High);
    }

    #[test]
    fn errors_display() {
        let e = ServeError::Backpressure {
            capacity: 4,
            queue_depth: 4,
            retry_after: std::time::Duration::from_millis(3),
        };
        assert!(e.to_string().contains("4/4"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }

    #[test]
    fn handle_try_wait_reports_states() {
        let (tx, rx) = mpsc::sync_channel(1);
        let h = ResponseHandle { ticket: 3, rx };
        assert_eq!(h.ticket(), 3);
        assert!(h.try_wait().is_none());
        drop(tx);
        assert!(matches!(h.try_wait(), Some(Err(ServeError::Disconnected))));
    }

    #[test]
    fn response_converts_to_outcome() {
        let response = ServeResponse {
            selection: Selection {
                ranked: Vec::new(),
                last_scores: Vec::new(),
                coverage: 1.0,
                trace: Default::default(),
            },
            ticket: 11,
            batch_size: 3,
            queued_us: 5,
            service_us: 9,
            cache: CacheOutcome::SelectionHit,
        };
        let outcome = response.into_outcome();
        assert_eq!(outcome.ticket, 11);
        assert_eq!(outcome.batch_size, 3);
        assert!(outcome.served_from_cache);
    }
}
