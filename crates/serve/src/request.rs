//! Request/response types of the serving API.

use std::sync::mpsc;

use prism_core::{RequestOptions, Selection};
use prism_model::SequenceBatch;
use serde::Serialize;

/// A serving request: one candidate batch to select from, bound to a
/// session.
///
/// The session identifies the tenant for cache affinity and FIFO
/// guarantees; the [`RequestOptions`] carry `k`, per-request routing
/// overrides, and optionally an explicit routing `tag`. When no tag is
/// given the server assigns the request's ticket number (its global
/// submission index, starting at 1), which makes a serving run
/// reproducible against a sequential reference that processes the same
/// requests in submission order.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Session (tenant) key.
    pub session: String,
    /// The packed candidate batch.
    pub batch: SequenceBatch,
    /// Per-request selection parameters.
    pub options: RequestOptions,
}

impl ServeRequest {
    /// A plain top-`k` request for `session`.
    pub fn new(session: impl Into<String>, batch: SequenceBatch, k: usize) -> Self {
        ServeRequest {
            session: session.into(),
            batch,
            options: RequestOptions::top_k(k),
        }
    }

    /// Replaces the request options.
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }
}

/// How the session cache participated in answering a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CacheOutcome {
    /// Corpus not cached (or cache disabled): full execution.
    Miss,
    /// Candidate embeddings replayed from the session cache; transformer
    /// layers still executed.
    EmbedHit,
    /// Exact repeat: the whole [`Selection`] was served from the cache.
    SelectionHit,
}

/// A completed serving response.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The selection, bit-identical to a direct engine call with the same
    /// batch, options and tag.
    pub selection: Selection,
    /// Global submission index of the request (1-based).
    pub ticket: u64,
    /// Number of requests coalesced into the executing batch.
    pub batch_size: usize,
    /// Microseconds spent queued before a worker picked the request up.
    pub queued_us: u64,
    /// Microseconds of batch execution (shared across the batch).
    pub service_us: u64,
    /// Session-cache participation.
    pub cache: CacheOutcome,
}

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded submission queue is full — the caller should retry
    /// later or shed load.
    Backpressure {
        /// Queue capacity that was exhausted.
        capacity: usize,
    },
    /// The server is shutting down (or has shut down).
    ShuttingDown,
    /// The engine rejected or failed the request.
    Engine(String),
    /// The worker serving this request disappeared before replying.
    Disconnected,
    /// Invalid serving configuration.
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Backpressure { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Disconnected => write!(f, "worker disconnected before replying"),
            ServeError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Waits for the response to one submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    pub(crate) ticket: u64,
    pub(crate) rx: mpsc::Receiver<std::result::Result<ServeResponse, ServeError>>,
}

impl ResponseHandle {
    /// The request's global submission index (1-based; also its routing
    /// tag unless one was set explicitly).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> crate::Result<ServeResponse> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => Err(ServeError::Disconnected),
        }
    }

    /// Returns the response if it is already available.
    pub fn try_wait(&self) -> Option<crate::Result<ServeResponse>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_defaults() {
        let batch = SequenceBatch::new(&[vec![1, 2, 3]]).unwrap();
        let r = ServeRequest::new("tenant-a", batch, 2);
        assert_eq!(r.session, "tenant-a");
        assert_eq!(r.options.k, 2);
        assert!(r.options.tag.is_none());
        let r = r.with_options(RequestOptions::tagged(1, 9));
        assert_eq!(r.options.tag, Some(9));
    }

    #[test]
    fn errors_display() {
        let e = ServeError::Backpressure { capacity: 4 };
        assert!(e.to_string().contains("capacity 4"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }

    #[test]
    fn handle_try_wait_reports_states() {
        let (tx, rx) = mpsc::sync_channel(1);
        let h = ResponseHandle { ticket: 3, rx };
        assert_eq!(h.ticket(), 3);
        assert!(h.try_wait().is_none());
        drop(tx);
        assert!(matches!(h.try_wait(), Some(Err(ServeError::Disconnected))));
    }
}
