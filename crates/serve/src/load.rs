//! Closed-loop load generation against a [`PrismServer`].
//!
//! `clients` threads each own a slice of the request stream and submit
//! synchronously (submit → wait → next), the classic closed-loop model:
//! offered load adapts to service rate, so the measured quantity is
//! per-request latency at full utilization. Latencies are collected
//! exactly (client-side, sorted) rather than from the server's bucketed
//! histograms. `prsm serve`, `prsm bench-serve` and the `repro perf`
//! serving section all drive this one generator.

use std::time::{Duration, Instant};

use prism_core::{
    ComputePrecision, PartialMode, Priority, RequestOptions, SemCacheMode, SpillPrecision,
};
use prism_model::SequenceBatch;
use prism_workload::{dataset_by_name, WorkloadGenerator};
use serde::Serialize;

use crate::request::ServeError;
use crate::server::PrismServer;
use crate::stats::ServeStatsSnapshot;

/// Shape of one synthetic serving workload.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Total requests to send.
    pub requests: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Candidates per request.
    pub candidates: usize,
    /// Top-K per request.
    pub k: usize,
    /// Workload dataset profile (e.g. `"wikipedia"`).
    pub dataset: String,
    /// Base RNG seed for request generation.
    pub seed: u64,
    /// Distinct sessions the stream cycles through.
    pub sessions: usize,
    /// Consecutive same-session requests sharing one corpus: `1` makes
    /// every request a fresh corpus (no cache reuse), `r > 1` lets the
    /// session cache serve `r - 1` of every `r` requests.
    pub corpus_repeat: usize,
    /// Base scheduling class of every request.
    pub priority: Priority,
    /// Fraction of requests submitted as [`Priority::High`] instead of
    /// the base class (`0.0` = uniform load). High requests are spread
    /// evenly through the stream.
    pub high_fraction: f64,
    /// Relative deadline attached to every *high-priority* request,
    /// microseconds (`None` = no deadline).
    pub high_deadline_us: Option<u64>,
    /// Relative deadline attached to every *base-class* request.
    pub deadline_us: Option<u64>,
    /// Hidden-state spill precision stamped on every request (only
    /// observable when the served engine offloads hidden states).
    pub spill_precision: SpillPrecision,
    /// Forward-compute precision stamped on every request.
    pub compute_precision: ComputePrecision,
    /// Semantic-cache mode stamped on every request. Any mode other
    /// than [`SemCacheMode::Off`] also pins the request to full depth
    /// (`pruning = Some(false)`): cross-request score replay is only
    /// sound for full-depth scores, so the knob implies the eligibility
    /// requirement instead of silently not engaging.
    pub semcache: SemCacheMode,
    /// Fraction of requests drawn from a small *cross-session* shared
    /// corpus pool instead of the session's own stream (`0.0` = none).
    /// Duplicate requests land in different sessions, so only a
    /// cross-request tier (the semantic cache) can serve them from
    /// memory; the per-session cache cannot. Spread evenly like
    /// `high_fraction`.
    pub dup_fraction: f64,
    /// Degraded-mode policy stamped on every request: what a sharded
    /// deployment does when every replica of a candidate is down
    /// ([`PartialMode::Fail`] keeps the exact-or-error contract,
    /// [`PartialMode::Partial`] serves the survivors).
    pub on_partial: PartialMode,
}

/// Distinct corpora the cross-session duplicate stream cycles through
/// (small on purpose: each is requested many times under high
/// `dup_fraction`).
pub const DUP_POOL: usize = 8;

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            requests: 32,
            clients: 4,
            candidates: 12,
            k: 4,
            dataset: "wikipedia".into(),
            seed: 0xC0FFEE,
            sessions: 4,
            corpus_repeat: 1,
            priority: Priority::Normal,
            high_fraction: 0.0,
            high_deadline_us: None,
            deadline_us: None,
            spill_precision: SpillPrecision::default(),
            compute_precision: ComputePrecision::default(),
            semcache: SemCacheMode::Off,
            dup_fraction: 0.0,
            on_partial: PartialMode::Fail,
        }
    }
}

impl LoadSpec {
    /// Whether global request index `i` runs as [`Priority::High`]
    /// (high requests are spaced evenly: one every
    /// `round(1 / high_fraction)` submissions).
    pub fn is_high(&self, i: usize) -> bool {
        if self.high_fraction <= 0.0 {
            return false;
        }
        if self.high_fraction >= 1.0 {
            return true;
        }
        let every = (1.0 / self.high_fraction).round().max(1.0) as usize;
        i.is_multiple_of(every)
    }

    /// Whether global request index `i` draws from the cross-session
    /// duplicate pool (same even spacing as [`LoadSpec::is_high`]).
    pub fn is_dup(&self, i: usize) -> bool {
        if self.dup_fraction <= 0.0 {
            return false;
        }
        if self.dup_fraction >= 1.0 {
            return true;
        }
        let every = (1.0 / self.dup_fraction).round().max(1.0) as usize;
        i.is_multiple_of(every)
    }

    /// The resolved options decoration for request `i` (class +
    /// deadline on top of the routing options).
    fn decorate(&self, i: usize, options: RequestOptions) -> RequestOptions {
        let mut options = options
            .with_spill_precision(self.spill_precision)
            .with_compute_precision(self.compute_precision)
            .with_semcache(self.semcache)
            .with_on_partial(self.on_partial);
        if self.semcache != SemCacheMode::Off {
            // Semantic replay is only sound at full depth; the knob
            // implies it rather than silently not engaging.
            options.pruning = Some(false);
        }
        if self.is_high(i) {
            let o = options.with_priority(Priority::High);
            match self.high_deadline_us {
                Some(us) => o.with_deadline_us(us),
                None => o,
            }
        } else {
            let o = options.with_priority(self.priority);
            match self.deadline_us {
                Some(us) => o.with_deadline_us(us),
                None => o,
            }
        }
    }
}

/// Latency summary of one scheduling class within a mixed run.
#[derive(Debug, Clone, Serialize)]
pub struct ClassReport {
    /// `"high"` or `"bulk"` (the base class).
    pub label: String,
    /// Requests of the class that completed.
    pub completed: usize,
    /// Requests of the class that errored (deadline misses included).
    pub errors: usize,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

fn class_report(label: &str, mut latencies: Vec<u64>, errors: usize) -> ClassReport {
    latencies.sort_unstable();
    let completed = latencies.len();
    let mean_us = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / completed as f64
    };
    ClassReport {
        label: label.to_string(),
        completed,
        errors,
        mean_us,
        p50_us: exact_quantile(&latencies, 0.50),
        p95_us: exact_quantile(&latencies, 0.95),
        p99_us: exact_quantile(&latencies, 0.99),
    }
}

/// Outcome of one closed-loop run. Latency percentiles are exact
/// (client-side measurements, sorted).
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Requests sent (and answered — the loop is closed).
    pub completed: usize,
    /// Requests that came back as errors.
    pub errors: usize,
    /// Backpressure rejections absorbed by retry.
    pub backpressure_retries: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Mean end-to-end latency, microseconds.
    pub mean_us: f64,
    /// Median end-to-end latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst request, microseconds.
    pub max_us: u64,
    /// Per-class latency breakdown for mixed-priority runs (empty when
    /// `high_fraction` is 0: the run is uniform).
    pub classes: Vec<ClassReport>,
    /// Server-side telemetry snapshot at the end of the run.
    pub stats: ServeStatsSnapshot,
}

impl LoadReport {
    /// The class summary with this label, if the run was mixed.
    pub fn class(&self, label: &str) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.label == label)
    }
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs `spec` against `server` and reports exact latency percentiles.
pub fn run_closed_loop(server: &PrismServer, spec: &LoadSpec) -> LoadReport {
    let profile = dataset_by_name(&spec.dataset)
        .unwrap_or_else(|| panic!("unknown dataset `{}`", spec.dataset));
    let config = server.engine().config();
    let generator = WorkloadGenerator::new(profile, config.vocab_size, config.max_seq, spec.seed);
    let sessions = spec.sessions.max(1);
    let repeat = spec.corpus_repeat.max(1);
    let clients = spec.clients.max(1).min(spec.requests.max(1));

    let started = Instant::now();
    let mut all_samples: Vec<(bool, u64)> = Vec::with_capacity(spec.requests);
    let mut errors = 0_usize;
    let mut high_errors = 0_usize;
    let mut retries = 0_u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for c in 0..clients {
            let generator = &generator;
            let spec_ref = &spec;
            let handle = scope.spawn(move || {
                let mut samples: Vec<(bool, u64)> = Vec::new();
                let mut errors = 0_usize;
                let mut high_errors = 0_usize;
                let mut retries = 0_u64;
                // Generous bounds: a closed-loop client should outwait
                // transient saturation, not convert it into errors — but
                // never spin unbounded against a wedged server. Per-client
                // seeds decorrelate the herd.
                let retry_policy = prism_api::RetryPolicy::default()
                    .with_max_attempts(64)
                    .with_backoff(Duration::from_micros(200), Duration::from_millis(50))
                    .with_budget(Duration::from_secs(5))
                    .with_seed(0xC11E_0000 ^ c as u64);
                let mut i = c;
                while i < spec_ref.requests {
                    let session_idx = i % sessions;
                    let round = i / sessions;
                    // Requests of one session advance to a fresh corpus
                    // every `repeat` rounds; in between they repeat it.
                    // Duplicate-stream requests instead cycle a small
                    // corpus pool shared by *all* sessions, so reuse is
                    // only visible to a cross-request cache tier.
                    let corpus = if spec_ref.is_dup(i) {
                        0xD0B0_0000_0000_0000 | (i % DUP_POOL) as u64
                    } else {
                        (session_idx as u64) << 32 | (round / repeat) as u64
                    };
                    let request = generator.request(corpus, spec_ref.candidates);
                    let batch = SequenceBatch::new(&request.sequences()).expect("load batch");
                    // Tag by corpus so repeats are exact (cacheable) and
                    // results stay independent of arrival interleaving.
                    let is_high = spec_ref.is_high(i);
                    let options = spec_ref
                        .decorate(i, RequestOptions::tagged(spec_ref.k, corpus ^ 0x5E55_1011));
                    let t0 = Instant::now();
                    // Typed, bounded backpressure handling: each submit
                    // runs its own decorrelated-jitter schedule, and the
                    // server's `retry_after` hint floors every sleep. A
                    // schedule that gives up counts as a client error.
                    let mut schedule = retry_policy.schedule();
                    let handle = loop {
                        match server.submit(crate::ServeRequest {
                            session: format!("session-{session_idx}"),
                            batch: batch.clone(),
                            options: options.clone(),
                        }) {
                            Ok(h) => break Some(h),
                            Err(err @ ServeError::Backpressure { .. }) => {
                                match schedule.next_delay(&err) {
                                    Some(delay) => {
                                        retries += 1;
                                        std::thread::sleep(delay);
                                    }
                                    None => break None,
                                }
                            }
                            Err(_) => break None,
                        }
                    };
                    match handle.map(|h| h.wait()) {
                        Some(Ok(_)) => samples.push((is_high, t0.elapsed().as_micros() as u64)),
                        _ => {
                            errors += 1;
                            if is_high {
                                high_errors += 1;
                            }
                        }
                    }
                    i += clients;
                }
                (samples, errors, high_errors, retries)
            });
            handles.push(handle);
        }
        for h in handles {
            let (s, err, herr, rts) = h.join().expect("load client panicked");
            all_samples.extend(s);
            errors += err;
            high_errors += herr;
            retries += rts;
        }
    });
    // Backpressure retries land on the server's resilience instruments
    // so `prsm serve` summaries show them next to failovers/hedges.
    server.stats().retried.inc_by(retries);
    let elapsed_s = started.elapsed().as_secs_f64();

    let classes = if spec.high_fraction > 0.0 {
        let high: Vec<u64> = all_samples
            .iter()
            .filter(|(h, _)| *h)
            .map(|&(_, l)| l)
            .collect();
        let bulk: Vec<u64> = all_samples
            .iter()
            .filter(|(h, _)| !*h)
            .map(|&(_, l)| l)
            .collect();
        vec![
            class_report("high", high, high_errors),
            class_report("bulk", bulk, errors - high_errors),
        ]
    } else {
        Vec::new()
    };
    let mut all_latencies: Vec<u64> = all_samples.into_iter().map(|(_, l)| l).collect();
    all_latencies.sort_unstable();
    let completed = all_latencies.len();
    let mean_us = if completed == 0 {
        0.0
    } else {
        all_latencies.iter().sum::<u64>() as f64 / completed as f64
    };
    LoadReport {
        completed,
        errors,
        backpressure_retries: retries,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        mean_us,
        p50_us: exact_quantile(&all_latencies, 0.50),
        p95_us: exact_quantile(&all_latencies, 0.95),
        p99_us: exact_quantile(&all_latencies, 0.99),
        max_us: all_latencies.last().copied().unwrap_or(0),
        classes,
        stats: server.stats().snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_small_samples() {
        assert_eq!(exact_quantile(&[], 0.5), 0);
        assert_eq!(exact_quantile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_quantile(&v, 0.0), 1);
        assert_eq!(exact_quantile(&v, 0.5), 51);
        assert_eq!(exact_quantile(&v, 1.0), 100);
    }

    #[test]
    fn default_spec_is_sane() {
        let s = LoadSpec::default();
        assert!(s.requests > 0 && s.clients > 0 && s.corpus_repeat >= 1);
        assert_eq!(s.high_fraction, 0.0);
        assert!(s.deadline_us.is_none() && s.high_deadline_us.is_none());
    }

    #[test]
    fn high_fraction_spaces_requests_evenly() {
        let spec = LoadSpec {
            high_fraction: 0.1,
            ..Default::default()
        };
        let high = (0..100).filter(|&i| spec.is_high(i)).count();
        assert_eq!(high, 10, "10% of 100 requests");
        assert!(spec.is_high(0) && spec.is_high(10) && !spec.is_high(5));
        let uniform = LoadSpec::default();
        assert!((0..100).all(|i| !uniform.is_high(i)));
        let all = LoadSpec {
            high_fraction: 1.0,
            ..Default::default()
        };
        assert!((0..10).all(|i| all.is_high(i)));
    }

    #[test]
    fn semcache_decoration_pins_full_depth() {
        let spec = LoadSpec {
            semcache: SemCacheMode::Aggressive,
            ..Default::default()
        };
        let o = spec.decorate(0, RequestOptions::top_k(2));
        assert_eq!(o.semcache, SemCacheMode::Aggressive);
        assert_eq!(o.pruning, Some(false), "semcache implies full depth");
        let off = LoadSpec::default().decorate(0, RequestOptions::top_k(2));
        assert_eq!(off.semcache, SemCacheMode::Off);
        assert_eq!(off.pruning, None, "Off leaves pruning to the engine");
    }

    #[test]
    fn dup_fraction_spaces_duplicates_evenly() {
        let spec = LoadSpec {
            dup_fraction: 0.5,
            ..Default::default()
        };
        assert_eq!((0..100).filter(|&i| spec.is_dup(i)).count(), 50);
        assert!(!LoadSpec::default().is_dup(0), "default stream has none");
        let all = LoadSpec {
            dup_fraction: 1.0,
            ..Default::default()
        };
        assert!((0..10).all(|i| all.is_dup(i)));
    }

    #[test]
    fn class_report_math() {
        let r = class_report("high", vec![30, 10, 20], 2);
        assert_eq!(r.completed, 3);
        assert_eq!(r.errors, 2);
        assert_eq!(r.p50_us, 20);
        assert!((r.mean_us - 20.0).abs() < 1e-9);
        let empty = class_report("bulk", Vec::new(), 0);
        assert_eq!(empty.completed, 0);
        assert_eq!(empty.p99_us, 0);
    }
}
