//! Per-tenant in-flight quotas.
//!
//! The bounded [`crate::queue::SubmissionQueue`] protects the *server*
//! from overload, but one noisy tenant could fill it and convert the
//! shared headroom into its own. A [`TenantQuota`] caps how many requests
//! a single tenant (session key) may have in flight — from admission
//! until its reply is sent — and rejects the excess with the typed
//! [`ServiceError::QuotaExceeded`] so well-behaved tenants keep their
//! latency. Tokens release on drop, so every exit path (completion,
//! cancellation, deadline shed, queue-close drain) returns the slot
//! without bookkeeping at each site.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use prism_api::ServiceError;

type InflightMap = Arc<Mutex<HashMap<String, usize>>>;

/// Admission-time quota ledger: at most `limit` in-flight requests per
/// tenant key.
#[derive(Clone)]
pub struct TenantQuota {
    limit: usize,
    inflight: InflightMap,
}

impl TenantQuota {
    /// A quota allowing `limit` concurrent requests per tenant
    /// (`limit >= 1`; use no quota at all for "unlimited").
    pub fn new(limit: usize) -> Self {
        TenantQuota {
            limit: limit.max(1),
            inflight: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The configured per-tenant ceiling.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Takes one in-flight slot for `tenant`, or fails with
    /// [`ServiceError::QuotaExceeded`] if the tenant is at its ceiling.
    pub fn acquire(&self, tenant: &str) -> Result<QuotaToken, ServiceError> {
        let mut map = self.inflight.lock().expect("quota lock");
        let count = map.entry(tenant.to_string()).or_insert(0);
        if *count >= self.limit {
            return Err(ServiceError::QuotaExceeded {
                tenant: tenant.to_string(),
                limit: self.limit,
            });
        }
        *count += 1;
        Ok(QuotaToken {
            tenant: tenant.to_string(),
            inflight: Arc::clone(&self.inflight),
        })
    }

    /// Requests currently in flight for `tenant` (telemetry/tests).
    pub fn in_flight(&self, tenant: &str) -> usize {
        self.inflight
            .lock()
            .expect("quota lock")
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }
}

/// One tenant's occupied in-flight slot; dropping it releases the slot.
pub struct QuotaToken {
    tenant: String,
    inflight: InflightMap,
}

impl std::fmt::Debug for QuotaToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuotaToken")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for QuotaToken {
    fn drop(&mut self) {
        let mut map = self.inflight.lock().expect("quota lock");
        if let Some(count) = map.get_mut(&self.tenant) {
            *count -= 1;
            if *count == 0 {
                map.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_until_limit_then_typed_rejection() {
        let q = TenantQuota::new(2);
        let a = q.acquire("t").unwrap();
        let _b = q.acquire("t").unwrap();
        match q.acquire("t") {
            Err(ServiceError::QuotaExceeded { tenant, limit }) => {
                assert_eq!(tenant, "t");
                assert_eq!(limit, 2);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Another tenant is unaffected.
        let _c = q.acquire("u").unwrap();
        assert_eq!(q.in_flight("t"), 2);
        drop(a);
        assert_eq!(q.in_flight("t"), 1);
        q.acquire("t").expect("slot released by drop");
    }

    #[test]
    fn ledger_entry_removed_at_zero() {
        let q = TenantQuota::new(1);
        let t = q.acquire("gone").unwrap();
        drop(t);
        assert_eq!(q.in_flight("gone"), 0);
        assert!(q.inflight.lock().unwrap().is_empty());
    }
}
