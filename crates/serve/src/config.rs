//! Serving configuration and the device-derived token budget.

use std::time::Duration;

use prism_device::DeviceSpec;
use prism_metrics::MemoryMeter;
use prism_model::layer::intermediate_bytes;
use prism_model::ModelConfig;

use crate::request::ServeError;
use crate::scheduler::BatchPlanner;

/// Configuration of a [`crate::PrismServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each driving the shared engine with its own
    /// scratch pool.
    pub workers: usize,
    /// Capacity of the bounded submission queue (beyond it, `submit`
    /// returns [`ServeError::Backpressure`]).
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch_requests: usize,
    /// Maximum total packed tokens per coalesced batch — the serving
    /// memory budget (see [`ServeConfig::for_device`]).
    pub max_batch_tokens: usize,
    /// Longest an under-full batch waits for more arrivals before
    /// flushing (the coalescing age bound).
    pub max_batch_wait: Duration,
    /// Sessions retained by the LRU session cache; `0` disables caching.
    pub session_cache_capacity: usize,
    /// Queue age past which a request outranks every priority class —
    /// the anti-starvation guard keeping bulk work alive under sustained
    /// high-priority load.
    pub starvation_age: Duration,
    /// `true` schedules priority-then-EDF (with the starvation guard);
    /// `false` keeps the historical pure-FIFO planner — the measurable
    /// baseline for `bench-serve --high-frac` and `repro perf`.
    pub priority_scheduling: bool,
    /// Per-tenant in-flight request ceiling (`0` disables quotas). A
    /// tenant is a session key; past the ceiling its submissions are
    /// rejected with the typed quota error so one noisy session cannot
    /// convert the shared queue's headroom into its own.
    pub tenant_max_inflight: usize,
    /// Byte budget of the semantic result cache (`prism-semcache`), the
    /// cross-request candidate-score cache shared by every session and
    /// tenant; `0` disables it. Even when allocated, the cache only
    /// engages on requests that opt in via
    /// [`prism_core::SemCacheMode`] *and* run at full depth (effective
    /// pruning off).
    pub semcache_capacity_bytes: u64,
    /// LSH signature bits of the semantic cache's similarity index.
    pub semcache_lsh_bits: u32,
    /// Cosine threshold for `Aggressive` near-duplicate replay.
    pub semcache_similarity: f32,
    /// Fraction of semantic-cache hits re-scored against the exact path
    /// under `VerifyAndFallback`.
    pub semcache_verify_fraction: f64,
    /// Seed of the semantic cache's hyperplanes and bucket summaries.
    pub semcache_seed: u64,
    /// Replication factor R of the sharded scatter path: each routing
    /// key carries an R-way replica set (rendezvous rank order) and a
    /// dead or hedged-away shard's sub-batch is replayed on the next
    /// rank mid-request. `1` (the default) disables failover; ignored
    /// by unsharded servers; clamped to the shard count at start.
    pub replicas: usize,
    /// Tail-latency hedge delay of the sharded scatter path: a shard
    /// stalling at least this long at a layer boundary has its
    /// sub-batch re-sent to the next replica (first success wins, the
    /// straggler is cancelled). `None` disables hedging; needs
    /// `replicas >= 2` to have any effect.
    pub hedge: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch_requests: 8,
            max_batch_tokens: 4096,
            max_batch_wait: Duration::from_millis(2),
            session_cache_capacity: 64,
            starvation_age: Duration::from_millis(50),
            priority_scheduling: true,
            tenant_max_inflight: 0,
            semcache_capacity_bytes: 8 << 20,
            semcache_lsh_bits: 16,
            semcache_similarity: 0.95,
            semcache_verify_fraction: 0.25,
            semcache_seed: 0x5EED_CACE,
            replicas: 1,
            hedge: None,
        }
    }
}

impl ServeConfig {
    /// The no-amortization reference configuration: one worker, one
    /// request per batch, no session cache. `prsm bench-serve` measures
    /// batching gains against this.
    pub fn serial() -> Self {
        ServeConfig {
            workers: 1,
            max_batch_requests: 1,
            session_cache_capacity: 0,
            ..Default::default()
        }
    }

    /// Derives the batch token budget from a device spec: the largest
    /// token count whose transient forward footprint (intermediate
    /// tensors + hidden states) fits the memory left after weights and
    /// framework overhead already metered on `meter`.
    pub fn for_device(config: &ModelConfig, device: &DeviceSpec, meter: &MemoryMeter) -> Self {
        let available = device
            .mem_capacity
            .saturating_sub(device.framework_overhead)
            .saturating_sub(meter.current_total());
        let per_token_hidden = (config.hidden_dim * 4) as u64;
        let fits = |tokens: usize| {
            intermediate_bytes(config, tokens, config.max_seq)
                .saturating_add(per_token_hidden * tokens as u64)
                <= available
        };
        // Binary search the largest fitting token count in [max_seq, 2^20].
        let floor = config.max_seq.max(1);
        let mut lo = floor;
        let mut hi = 1_usize << 20;
        if !fits(lo) {
            hi = lo; // Degenerate budget: still admit one sequence.
        }
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        ServeConfig {
            max_batch_tokens: lo.max(floor),
            ..Default::default()
        }
    }

    /// Device-tuned defaults: the scheduling knobs picked by the serving
    /// metasim sweep (`prsm simulate-serve --tune`, 181 grid points over
    /// batch budget, coalescing wait, starvation age and cache size per
    /// device preset) on top of [`ServeConfig::for_device`]'s
    /// memory-derived token budget.
    ///
    /// At the deployment operating point — paper-scale models streaming
    /// weights from a device SSD — the per-batch fixed cost dominates, so
    /// the sweep lands on the same scheduling knobs for every preset
    /// (batches of 8 requests, 2 ms coalescing wait, 50 ms starvation
    /// bound, 64 cached sessions) and the device-specific part is the
    /// token budget. The knobs only shift when service turns
    /// compute-bound (mini-scale models), where coalescing gains saturate
    /// at smaller batches; `prism-metasim`'s autotune tests keep these
    /// constants honest against a fresh sweep.
    pub fn tuned_for(config: &ModelConfig, device: &DeviceSpec, meter: &MemoryMeter) -> Self {
        ServeConfig {
            max_batch_requests: 8,
            max_batch_wait: Duration::from_millis(2),
            starvation_age: Duration::from_millis(50),
            session_cache_capacity: 64,
            ..Self::for_device(config, device, meter)
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::Config("workers must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue capacity must be >= 1".into()));
        }
        if self.max_batch_requests == 0 {
            return Err(ServeError::Config("batch size must be >= 1".into()));
        }
        if self.max_batch_tokens == 0 {
            return Err(ServeError::Config("token budget must be >= 1".into()));
        }
        if self.starvation_age < self.max_batch_wait {
            return Err(ServeError::Config(
                "starvation age must be >= the batch wait bound".into(),
            ));
        }
        if self.replicas == 0 {
            return Err(ServeError::Config(
                "replicas must be >= 1 (1 disables failover)".into(),
            ));
        }
        if let Some(h) = self.hedge {
            if h.is_zero() {
                return Err(ServeError::Config(
                    "hedge delay must be positive (None disables hedging)".into(),
                ));
            }
        }
        if self.semcache_capacity_bytes > 0 {
            // Delegate range checks to the cache's own validator (dim is
            // engine-derived at start; validate with a placeholder).
            self.semcache_config(1)
                .validate()
                .map_err(ServeError::Config)?;
        }
        Ok(())
    }

    /// The semantic-cache configuration these knobs induce for a model
    /// with hidden dimensionality `dim`.
    pub fn semcache_config(&self, dim: usize) -> prism_semcache::SemCacheConfig {
        prism_semcache::SemCacheConfig {
            dim,
            capacity_bytes: self.semcache_capacity_bytes,
            lsh_bits: self.semcache_lsh_bits,
            similarity_threshold: self.semcache_similarity,
            verify_fraction: self.semcache_verify_fraction,
            seed: self.semcache_seed,
        }
    }

    /// The scheduler policy this configuration induces.
    pub fn planner(&self) -> BatchPlanner {
        BatchPlanner {
            max_requests: self.max_batch_requests,
            max_tokens: self.max_batch_tokens,
            max_wait_micros: self.max_batch_wait.as_micros() as u64,
            starvation_age_micros: self.starvation_age.as_micros() as u64,
            priority_aware: self.priority_scheduling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_model::ModelArch;

    #[test]
    fn default_validates() {
        ServeConfig::default().validate().unwrap();
        ServeConfig::serial().validate().unwrap();
        assert_eq!(ServeConfig::serial().max_batch_requests, 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        for cfg in [
            ServeConfig {
                workers: 0,
                ..Default::default()
            },
            ServeConfig {
                queue_capacity: 0,
                ..Default::default()
            },
            ServeConfig {
                max_batch_requests: 0,
                ..Default::default()
            },
            ServeConfig {
                max_batch_tokens: 0,
                ..Default::default()
            },
            ServeConfig {
                starvation_age: Duration::from_micros(1),
                ..Default::default()
            },
            ServeConfig {
                replicas: 0,
                ..Default::default()
            },
            ServeConfig {
                hedge: Some(Duration::ZERO),
                ..Default::default()
            },
        ] {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn device_budget_scales_with_memory() {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 4);
        let meter = MemoryMeter::new();
        let small = {
            let mut d = DeviceSpec::apple_m2();
            d.mem_capacity = 64 << 20;
            ServeConfig::for_device(&config, &d, &meter)
        };
        let large = ServeConfig::for_device(&config, &DeviceSpec::a800(), &meter);
        assert!(small.max_batch_tokens >= config.max_seq);
        assert!(
            large.max_batch_tokens >= small.max_batch_tokens,
            "more memory must not shrink the budget ({} vs {})",
            large.max_batch_tokens,
            small.max_batch_tokens
        );
    }

    #[test]
    fn budget_never_below_one_sequence() {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 4);
        let meter = MemoryMeter::new();
        let mut d = DeviceSpec::apple_m2();
        d.mem_capacity = 0; // Hopeless device: still admit one sequence.
        let cfg = ServeConfig::for_device(&config, &d, &meter);
        assert_eq!(cfg.max_batch_tokens, config.max_seq);
    }

    #[test]
    fn tuned_for_composes_sweep_knobs_with_device_budget() {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 4);
        let meter = MemoryMeter::new();
        for device in [
            DeviceSpec::rtx5070_laptop(),
            DeviceSpec::apple_m2(),
            DeviceSpec::a800(),
        ] {
            let tuned = ServeConfig::tuned_for(&config, &device, &meter);
            tuned.validate().expect("tuned config must validate");
            // The token budget is the device-derived part...
            let budget = ServeConfig::for_device(&config, &device, &meter);
            assert_eq!(tuned.max_batch_tokens, budget.max_batch_tokens);
            // ...the scheduling knobs are the metasim sweep winners
            // (prism-metasim's ignored nightly test re-derives them).
            assert_eq!(tuned.max_batch_requests, 8);
            assert_eq!(tuned.max_batch_wait, Duration::from_millis(2));
            assert_eq!(tuned.starvation_age, Duration::from_millis(50));
            assert_eq!(tuned.session_cache_capacity, 64);
        }
    }

    #[test]
    fn planner_mirrors_config() {
        let cfg = ServeConfig {
            max_batch_requests: 3,
            max_batch_tokens: 99,
            max_batch_wait: Duration::from_micros(250),
            ..Default::default()
        };
        let p = cfg.planner();
        assert_eq!(p.max_requests, 3);
        assert_eq!(p.max_tokens, 99);
        assert_eq!(p.max_wait_micros, 250);
        assert_eq!(p.starvation_age_micros, 50_000);
        assert!(p.priority_aware);
    }
}
