//! Sharded scatter-gather execution: consistent-hash candidate routing
//! over N engine shards, merged bit-identically to single-engine results.
//!
//! ```text
//!  request (n candidates)
//!      │  ForwardMap: flat slot table, shard = slots[key % SLOTS]
//!      ▼
//!  ┌───────────┬───────────┬───────────┐
//!  │ shard 0   │ shard 1   │ shard 2   │   each: own PrismEngine,
//!  │ sub-batch │ sub-batch │ sub-batch │   local pruning OFF
//!  └─────┬─────┴─────┬─────┴─────┬─────┘
//!        └─ scores ──┼── scores ─┘        per layer boundary
//!                    ▼
//!            ScatterGate (prism-core)     global gate: same seed, same
//!                    │                    route_and_book as single engine
//!        ┌─ keep-mask per shard ─┐        physical pruning pushed back
//!        ▼                       ▼        to the owning shard
//!  merged top-k == single-engine top-k (bit-identical)
//! ```
//!
//! The routing table is the yanet2 `forward_map` dataplane idiom: a flat
//! array indexed by `key % slots`, rebuilt off the hot path when the
//! shard count changes (rendezvous hashing keeps key movement minimal),
//! and read lock-free.
//!
//! The scatter loop is deterministic lockstep in the calling worker
//! thread: the global gate is a per-layer rendezvous by construction, so
//! thread-per-shard fan-out would buy nothing within one request on this
//! class of host — cross-request parallelism comes from the serving
//! worker pool, and each shard engine stays independently owned (its own
//! weights, spill dir and meter), which is what a process-per-shard
//! deployment over `prism-wire` needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use prism_core::scatter::{merge_shard_scores, ScatterGate};
use prism_core::{
    ActiveRequest, CancelToken, PartialMode, PrismEngine, PrismError, ProgressFn, RequestOptions,
    Selection,
};
use prism_model::layer::ForwardScratch;
use prism_model::SequenceBatch;

use crate::stats::ServeStats;

/// Number of routing slots in a [`ForwardMap`] (power of two; ~1k slots
/// per shard at the largest supported shard count keeps balance tight).
pub const FORWARD_SLOTS: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a candidate's token content — the routing key. Content
/// hashing (not position hashing) keeps routing deterministic across
/// requests: the same candidate text always lands on the same shard, so
/// shard-local caches stay warm.
pub fn candidate_key(tokens: &[u32]) -> u64 {
    let mut h = FNV_OFFSET;
    for t in tokens {
        for b in t.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-dispersed slot/shard weights.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Flat consistent-hash routing table (the yanet2 `forward_map` idiom):
/// shard lookup is one bounds-free array read, `slots[key % len]`.
///
/// Slot ownership uses rendezvous (highest-random-weight) hashing, which
/// gives the three properties the proptest suite pins: deterministic
/// routing, per-shard balance within bounds, and minimal movement — when
/// a shard is added, the only slots that change owner are those the new
/// shard wins; none move between pre-existing shards.
#[derive(Debug, Clone)]
pub struct ForwardMap {
    slots: Vec<u16>,
    shards: usize,
}

impl ForwardMap {
    /// Builds the table for `shards` shards over [`FORWARD_SLOTS`] slots.
    pub fn new(shards: usize) -> Self {
        Self::with_slots(shards, FORWARD_SLOTS)
    }

    /// Builds the table with an explicit slot count (tests).
    pub fn with_slots(shards: usize, slots: usize) -> Self {
        let shards = shards.max(1);
        assert!(shards <= u16::MAX as usize, "shard count fits u16");
        let table = (0..slots.max(1))
            .map(|slot| {
                (0..shards)
                    .max_by_key(|&shard| {
                        (
                            mix64((slot as u64) << 16 | shard as u64),
                            // Ties (never observed with mix64, but the
                            // contract must not depend on that) go to the
                            // lower shard id, deterministically.
                            usize::MAX - shard,
                        )
                    })
                    .expect("at least one shard") as u16
            })
            .collect();
        ForwardMap {
            slots: table,
            shards,
        }
    }

    /// Shard owning `key` — the hot-path lookup: one masked index.
    pub fn shard_of(&self, key: u64) -> usize {
        self.slots[(key % self.slots.len() as u64) as usize] as usize
    }

    /// The key's replica set: up to `r` shards in rendezvous rank order.
    /// Rank 0 is always [`ForwardMap::shard_of`] (the primary); the
    /// failover coordinator walks the remaining ranks when the primary
    /// dies. Rendezvous ranking gives every slot an independent replica
    /// ordering, so a dead shard's load spreads across *all* survivors
    /// instead of doubling up one neighbor.
    pub fn replicas_of(&self, key: u64, r: usize) -> Vec<usize> {
        let slot = (key % self.slots.len() as u64) as usize;
        let mut ranked: Vec<usize> = (0..self.shards).collect();
        ranked.sort_by_key(|&shard| {
            // Highest weight first; ties (same contract as the table
            // build) go to the lower shard id.
            std::cmp::Reverse((
                mix64((slot as u64) << 16 | shard as u64),
                usize::MAX - shard,
            ))
        });
        ranked.truncate(r.clamp(1, self.shards));
        ranked
    }

    /// Number of shards the table routes across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The raw slot table (diagnostics, balance tests).
    pub fn slots(&self) -> &[u16] {
        &self.slots
    }
}

/// Injected failure mode of one shard (fault-injection test hook; the
/// default `Healthy` path costs one relaxed atomic load per layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// Normal operation.
    Healthy,
    /// The shard is unreachable: any request touching it fails with
    /// [`PrismError::ShardFailure`] at the next layer boundary.
    Dead,
    /// The shard stalls for the given duration at every layer boundary
    /// (drives deadline-expiry paths without wall-clock flakiness).
    Slow(Duration),
}

struct FaultCell {
    // 0 = healthy, 1 = dead, 2 = slow (stall micros in `slow_us`).
    mode: AtomicU64,
    slow_us: AtomicU64,
}

impl FaultCell {
    fn new() -> Self {
        FaultCell {
            mode: AtomicU64::new(0),
            slow_us: AtomicU64::new(0),
        }
    }

    fn set(&self, fault: ShardFault) {
        match fault {
            ShardFault::Healthy => self.mode.store(0, Ordering::Release),
            ShardFault::Dead => self.mode.store(1, Ordering::Release),
            ShardFault::Slow(d) => {
                self.slow_us.store(d.as_micros() as u64, Ordering::Release);
                self.mode.store(2, Ordering::Release);
            }
        }
    }

    fn get(&self) -> ShardFault {
        match self.mode.load(Ordering::Acquire) {
            0 => ShardFault::Healthy,
            1 => ShardFault::Dead,
            _ => ShardFault::Slow(Duration::from_micros(self.slow_us.load(Ordering::Acquire))),
        }
    }
}

/// One shard's in-flight part of a scattered request.
struct ShardRun {
    shard: usize,
    /// Global candidate ids this shard owns, ascending.
    ids: Vec<usize>,
    req: ActiveRequest,
}

/// N engine shards behind a [`ForwardMap`], executing requests by
/// scatter-gather with the global gate in `prism_core::ScatterGate`.
///
/// Every shard engine must resolve routing identically (same seed,
/// threshold, mode, clustering bounds) — validated at construction — and
/// hold its layer weights resident (the stepping API's requirement).
pub struct ShardSet {
    engines: Vec<Arc<PrismEngine>>,
    map: ForwardMap,
    faults: Vec<FaultCell>,
    /// Replication factor R: each routing key has an R-way replica set
    /// (rendezvous rank order). `1` disables failover entirely.
    replicas: usize,
    /// Tail-latency hedge: a shard stalling at least this long at a
    /// boundary has its sub-batch re-sent to the next replica, first
    /// success wins. `None` disables hedging (stalls are waited out).
    hedge: Option<Duration>,
    /// Resilience telemetry sink (failovers, hedges). Shares state with
    /// the serving layer's instruments when attached.
    stats: ServeStats,
    /// Tag source for untagged requests (mirrors the engine's counter).
    counter: AtomicU64,
    /// Scratch workspaces reused across scatter calls (per-call take/put,
    /// same pattern as the engine's own pool).
    scratch: Mutex<Vec<ForwardScratch>>,
}

/// What the fault probe decided for one shard touch.
enum FaultAction {
    /// Healthy (a tolerated stall has already been slept through).
    Proceed,
    /// Re-home this shard's sub-batch onto replicas; `hedged` marks a
    /// stall-triggered hedge rather than a death.
    FailOver { hedged: bool },
}

/// Per-request failover tally, folded into [`ServeStats`] when the
/// request leaves the scatter loop (wins only count on success).
#[derive(Default)]
struct FailTally {
    failovers: u64,
    hedges: u64,
}

impl ShardSet {
    /// Builds a shard set over the given engines.
    pub fn new(engines: Vec<Arc<PrismEngine>>) -> Result<Self, PrismError> {
        if engines.is_empty() {
            return Err(PrismError::InvalidRequest(
                "shard set needs at least one engine".into(),
            ));
        }
        let first = engines[0].options();
        for (i, e) in engines.iter().enumerate() {
            if e.options().streaming {
                return Err(PrismError::InvalidRequest(format!(
                    "shard {i} streams weights; layer stepping requires resident \
                     weights (EngineOptions::streaming = false)"
                )));
            }
        }
        for (i, e) in engines.iter().enumerate().skip(1) {
            let o = e.options();
            let routing_equal = o.seed == first.seed
                && o.dispersion_threshold == first.dispersion_threshold
                && o.mode == first.mode
                && o.pruning == first.pruning
                && o.max_clusters == first.max_clusters
                && o.min_gate_layer == first.min_gate_layer;
            if !routing_equal {
                return Err(PrismError::InvalidRequest(format!(
                    "shard {i} resolves routing differently from shard 0; \
                     all shards must share seed/threshold/mode/cluster options"
                )));
            }
            if e.config().num_layers != engines[0].config().num_layers {
                return Err(PrismError::InvalidRequest(format!(
                    "shard {i} has a different model depth"
                )));
            }
        }
        for (i, e) in engines.iter().enumerate().skip(1) {
            if e.options().hidden_offload != first.hidden_offload {
                return Err(PrismError::InvalidRequest(format!(
                    "shard {i} spills hidden states differently from shard 0; \
                     failover replay requires uniform offload configuration"
                )));
            }
        }
        let faults = (0..engines.len()).map(|_| FaultCell::new()).collect();
        let map = ForwardMap::new(engines.len());
        Ok(ShardSet {
            engines,
            map,
            faults,
            replicas: 1,
            hedge: None,
            stats: ServeStats::new(),
            counter: AtomicU64::new(0),
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// Sets the replication factor R (clamped to `1..=shards`). With
    /// `R >= 2`, a dead or hedged shard's surviving candidates are
    /// replayed on each candidate's next-ranked live replica
    /// mid-request, keeping the merged selection bit-identical to the
    /// fault-free result.
    pub fn with_replicas(mut self, r: usize) -> Self {
        self.replicas = r.clamp(1, self.engines.len());
        self
    }

    /// Sets the tail-latency hedge delay: a shard stalling at least this
    /// long at a layer boundary is treated like a failed shard and its
    /// sub-batch re-sent to the next replica (first success wins; the
    /// straggler's run is cancelled and its resources released). `None`
    /// waits out stalls.
    pub fn with_hedge(mut self, hedge: Option<Duration>) -> Self {
        self.hedge = hedge;
        self
    }

    /// Attaches the serving layer's telemetry so failover/hedge counters
    /// land on the same instruments as the rest of the server.
    pub fn attach_stats(&mut self, stats: ServeStats) {
        self.stats = stats;
    }

    /// The configured replication factor.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The configured hedge delay.
    pub fn hedge(&self) -> Option<Duration> {
        self.hedge
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The engine of shard `i`.
    pub fn engine(&self, i: usize) -> &Arc<PrismEngine> {
        &self.engines[i]
    }

    /// The routing table.
    pub fn forward_map(&self) -> &ForwardMap {
        &self.map
    }

    /// Injects (or clears) a failure mode on shard `i` — the
    /// fault-injection hook the serving tests drive.
    pub fn inject_fault(&self, i: usize, fault: ShardFault) {
        self.faults[i].set(fault);
    }

    /// Partitions a batch's candidate indices across shards by routing
    /// key. Returns one ascending id list per shard (possibly empty).
    pub fn partition(&self, batch: &SequenceBatch) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
        for i in 0..batch.num_sequences() {
            let shard = self.map.shard_of(candidate_key(batch.sequence(i)));
            groups[shard].push(i);
        }
        groups
    }

    /// Scatter-gather selection, bit-identical to
    /// `PrismEngine::select_with` on an unsharded engine with the same
    /// routing options.
    pub fn select_with(
        &self,
        batch: &SequenceBatch,
        options: RequestOptions,
    ) -> Result<Selection, PrismError> {
        self.select_with_controls(batch, options, None, None, None)
    }

    /// [`ShardSet::select_with`] plus the serving controls: a shared
    /// cancellation token, an absolute deadline, and a progress sink fed
    /// from the coordinator (one update per layer boundary).
    pub fn select_with_controls(
        &self,
        batch: &SequenceBatch,
        options: RequestOptions,
        cancel: Option<CancelToken>,
        deadline: Option<Instant>,
        progress: Option<ProgressFn>,
    ) -> Result<Selection, PrismError> {
        let n = batch.num_sequences();
        let tag = options
            .tag
            .unwrap_or_else(|| self.counter.fetch_add(1, Ordering::Relaxed) + 1);
        let num_layers = self.engines[0].config().num_layers;
        let mut gate = ScatterGate::new(self.engines[0].options(), &options, n, num_layers, tag)?;

        let mut pool = std::mem::take(&mut *self.scratch.lock().expect("scratch lock"));
        let mut tally = FailTally::default();
        let result = self.run_scatter(
            batch,
            &options,
            tag,
            &mut gate,
            cancel,
            deadline,
            progress.as_ref(),
            &mut pool,
            &mut tally,
        );
        let mut shared = self.scratch.lock().expect("scratch lock");
        if shared.is_empty() {
            *shared = pool;
        }
        drop(shared);
        self.stats.failovers.inc_by(tally.failovers);
        self.stats.hedges_fired.inc_by(tally.hedges);
        match result {
            Ok(runs) => {
                // Release shard resources through the engines' own
                // finalize path (surfaces deferred spill errors, clears
                // spill files and meter bytes); the shard-local ranked
                // lists are meaningless and discarded — the coordinator
                // owns the merged result.
                let mut finalize_err: Option<PrismError> = None;
                for run in runs {
                    let shard = run.shard;
                    match self.engines[shard].finalize_request(run.req) {
                        Ok(sel) => self
                            .stats
                            .slots_quarantined
                            .inc_by(sel.trace.spill_stats.quarantined),
                        Err(e) => {
                            finalize_err.get_or_insert(e);
                        }
                    }
                }
                if let Some(e) = finalize_err {
                    return Err(e);
                }
                // A hedge "wins" when the request it rescued completes.
                self.stats.hedges_won.inc_by(tally.hedges);
                Ok(gate.finalize())
            }
            Err(e) => Err(e),
        }
    }

    /// The lockstep scatter loop. Returns the shard runs for finalization
    /// on success; on failure every `ShardRun` has already been dropped
    /// (its `ActiveRequest` drop guard releases spill files and meter
    /// bytes), so a dead shard or an abort never leaks the survivors.
    #[allow(clippy::too_many_arguments)]
    fn run_scatter(
        &self,
        batch: &SequenceBatch,
        options: &RequestOptions,
        tag: u64,
        gate: &mut ScatterGate,
        cancel: Option<CancelToken>,
        deadline: Option<Instant>,
        progress: Option<&ProgressFn>,
        pool: &mut Vec<ForwardScratch>,
        tally: &mut FailTally,
    ) -> Result<Vec<ShardRun>, PrismError> {
        // Shards failed over away from during *this* request. A shard
        // that recovers mid-request stays down here: its in-flight state
        // for this request is gone, so re-admitting it could only
        // diverge. The next request sees it healthy again.
        let mut down = vec![false; self.engines.len()];

        // ---- Scatter: plan each shard's sub-batch, local pruning off.
        // A shard already dead (or stalling past the hedge) at planning
        // time re-homes its candidates before anything runs: the replica
        // plans the sub-batch directly, no replay needed.
        let mut assign: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
        let mut lost: Vec<usize> = Vec::new();
        for (shard, ids) in self.partition(batch).into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            match self.probe_fault(shard, &down) {
                FaultAction::Proceed => assign[shard].extend(ids),
                FaultAction::FailOver { hedged } => {
                    down[shard] = true;
                    tally.failovers += 1;
                    if hedged {
                        tally.hedges += 1;
                    }
                    for id in ids {
                        match self.next_replica(batch.sequence(id), &down) {
                            Some(s) => assign[s].push(id),
                            None => lost.push(id),
                        }
                    }
                }
            }
        }
        self.drop_lost(gate, options, &lost)?;
        let mut runs: Vec<ShardRun> = Vec::new();
        for (shard, mut ids) in assign.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            // Re-homed ids interleave with the replica's own: restore the
            // ascending order every run invariantly keeps.
            ids.sort_unstable();
            let req = self.plan_shard_run(batch, options, tag, shard, &ids, &cancel, deadline)?;
            runs.push(ShardRun { shard, ids, req });
        }

        // ---- Seed the global gate with the merged probe scores ----
        gate.seed_probe(merge_runs(&runs));

        // ---- Lockstep layer loop: boundary → global gate → forward ----
        for layer_idx in 0..self.engines[0].config().num_layers {
            // Gate phase. A shard failing here re-homes mid-phase: its
            // replacements are appended, replayed up to this boundary,
            // and gated by this same sweep when the cursor reaches them.
            let mut i = 0;
            while i < runs.len() {
                let shard = runs[i].shard;
                match self.probe_fault(shard, &down) {
                    FaultAction::Proceed => {
                        self.engines[shard].gate_planned(&mut runs[i].req, layer_idx)?;
                        if runs[i].req.is_aborted() {
                            // Cancelled / past deadline: the aborting
                            // shard's finalize carries the typed error;
                            // dropping the other runs releases their
                            // resources immediately.
                            let aborted = runs.swap_remove(i);
                            runs.clear();
                            return match self.engines[shard].finalize_request(aborted.req) {
                                Err(e) => Err(e),
                                Ok(_) => Err(PrismError::Cancelled),
                            };
                        }
                        i += 1;
                    }
                    FaultAction::FailOver { hedged } => self.fail_over(
                        &mut runs, i, hedged, batch, options, tag, gate, &cancel, deadline,
                        &mut down, layer_idx, false, pool, tally,
                    )?,
                }
            }
            let step = gate.gate(layer_idx);
            if let Some(keep) = &step.keep {
                for run in runs.iter_mut() {
                    if run.req.is_done() {
                        continue;
                    }
                    let local: Vec<bool> = run.ids.iter().map(|&g| keep[g]).collect();
                    if local.iter().all(|&k| k) {
                        continue;
                    }
                    self.engines[run.shard].apply_keep_mask(&mut run.req, &local)?;
                }
            }
            if let Some(sink) = progress {
                sink(gate.progress(layer_idx));
            }
            if step.done {
                for run in runs.iter_mut() {
                    self.engines[run.shard].terminate_planned(&mut run.req);
                }
                break;
            }
            // Forward phase. Replacements planned here replay the earlier
            // layers *and* this boundary's gate, then this sweep forwards
            // them through the current layer like everyone else.
            let mut i = 0;
            while i < runs.len() {
                if runs[i].req.is_done() {
                    i += 1;
                    continue;
                }
                let shard = runs[i].shard;
                match self.probe_fault(shard, &down) {
                    FaultAction::Proceed => {
                        self.engines[shard].forward_planned_layer(
                            &mut runs[i].req,
                            layer_idx,
                            pool,
                        )?;
                        i += 1;
                    }
                    FaultAction::FailOver { hedged } => self.fail_over(
                        &mut runs, i, hedged, batch, options, tag, gate, &cancel, deadline,
                        &mut down, layer_idx, true, pool, tally,
                    )?,
                }
            }
            gate.observe_layer(merge_runs(&runs));
        }
        Ok(runs)
    }

    /// Plans one shard's sub-batch run (local pruning off, shared tag)
    /// and attaches the request's controls.
    #[allow(clippy::too_many_arguments)] // internal plumbing: one call site, grouped by request
    fn plan_shard_run(
        &self,
        batch: &SequenceBatch,
        options: &RequestOptions,
        tag: u64,
        shard: usize,
        ids: &[usize],
        cancel: &Option<CancelToken>,
        deadline: Option<Instant>,
    ) -> Result<ActiveRequest, PrismError> {
        let sub = batch.gather(ids)?;
        let mut shard_options = options.clone();
        shard_options.pruning = Some(false);
        shard_options.k = options.k.min(ids.len()).max(1);
        shard_options.tag = Some(tag);
        let mut req = self.engines[shard].plan_request(&sub, shard_options)?;
        if let Some(token) = cancel {
            req.attach_cancel(token.clone());
        }
        if let Some(d) = deadline {
            req.attach_deadline(d);
        }
        Ok(req)
    }

    /// Re-homes a failed (or hedged) run's surviving candidates onto each
    /// candidate's next-ranked live replica, replaying the already
    /// forwarded layers so the replacements rejoin the lockstep boundary.
    /// The failed run is dropped immediately — its `ActiveRequest` drop
    /// guard releases spill files and meter bytes (the hedge's "loser
    /// cancellation"). Candidates whose whole replica set is down either
    /// fail the request ([`PartialMode::Fail`]) or shrink its coverage
    /// ([`PartialMode::Partial`]).
    ///
    /// Replay is score-exact: per-candidate hidden states and boundary
    /// scores are pure functions of the candidate's token content, so the
    /// replica reproduces the straggler's contributions bit-identically —
    /// the chaos suite's parity property.
    #[allow(clippy::too_many_arguments)]
    fn fail_over(
        &self,
        runs: &mut Vec<ShardRun>,
        idx: usize,
        hedged: bool,
        batch: &SequenceBatch,
        options: &RequestOptions,
        tag: u64,
        gate: &mut ScatterGate,
        cancel: &Option<CancelToken>,
        deadline: Option<Instant>,
        down: &mut [bool],
        replay_layers: usize,
        gate_current: bool,
        pool: &mut Vec<ForwardScratch>,
        tally: &mut FailTally,
    ) -> Result<(), PrismError> {
        let failed = runs.swap_remove(idx);
        down[failed.shard] = true;
        tally.failovers += 1;
        if hedged {
            tally.hedges += 1;
        }
        let survivors: Vec<usize> = failed
            .ids
            .iter()
            .copied()
            .filter(|&g| gate.is_active(g))
            .collect();
        // Loser cancellation: the failed run's drop guard releases its
        // spill files and meter bytes now, before any replica plans.
        drop(failed);

        let mut assign: Vec<Vec<usize>> = vec![Vec::new(); self.engines.len()];
        let mut lost: Vec<usize> = Vec::new();
        for g in survivors {
            match self.next_replica(batch.sequence(g), down) {
                Some(s) => assign[s].push(g),
                None => lost.push(g),
            }
        }
        self.drop_lost(gate, options, &lost)?;
        for (shard, ids) in assign.into_iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            // `ids` inherit the failed run's ascending order.
            let mut req =
                self.plan_shard_run(batch, options, tag, shard, &ids, cancel, deadline)?;
            let abort = |req: ActiveRequest, runs: &mut Vec<ShardRun>| {
                runs.clear();
                match self.engines[shard].finalize_request(req) {
                    Err(e) => Err(e),
                    Ok(_) => Err(PrismError::Cancelled),
                }
            };
            for l in 0..replay_layers {
                self.engines[shard].gate_planned(&mut req, l)?;
                if req.is_aborted() {
                    return abort(req, runs);
                }
                self.engines[shard].forward_planned_layer(&mut req, l, pool)?;
            }
            if gate_current {
                self.engines[shard].gate_planned(&mut req, replay_layers)?;
                if req.is_aborted() {
                    return abort(req, runs);
                }
            }
            runs.push(ShardRun { shard, ids, req });
        }
        Ok(())
    }

    /// Handles candidates whose every replica is down: fail the request
    /// ([`PartialMode::Fail`], the default) or drop them from the global
    /// gate and serve a best-effort top-k over the survivors
    /// ([`PartialMode::Partial`], surfaced as `Selection::coverage < 1`).
    fn drop_lost(
        &self,
        gate: &mut ScatterGate,
        options: &RequestOptions,
        lost: &[usize],
    ) -> Result<(), PrismError> {
        if lost.is_empty() {
            return Ok(());
        }
        match options.on_partial {
            PartialMode::Fail => Err(PrismError::ShardFailure(format!(
                "shard replicas exhausted for {} candidate(s)",
                lost.len()
            ))),
            PartialMode::Partial => {
                gate.remove_candidates(lost);
                Ok(())
            }
        }
    }

    /// The next-ranked live replica for a candidate, or `None` when its
    /// whole replica set is down or dead.
    fn next_replica(&self, tokens: &[u32], down: &[bool]) -> Option<usize> {
        self.map
            .replicas_of(candidate_key(tokens), self.replicas)
            .into_iter()
            .find(|&s| !down[s] && self.faults[s].get() != ShardFault::Dead)
    }

    /// Probes shard `i`'s injected fault state: healthy proceeds, a
    /// tolerated stall is slept out, and a death — or a stall at or past
    /// the hedge delay, with replication enabled — asks for failover. A
    /// shard already failed away from this request stays down for the
    /// request's remainder even if it recovers mid-flight (its in-flight
    /// state is gone); the next request sees it healthy again.
    fn probe_fault(&self, shard: usize, down: &[bool]) -> FaultAction {
        if down[shard] {
            return FaultAction::FailOver { hedged: false };
        }
        match self.faults[shard].get() {
            ShardFault::Healthy => FaultAction::Proceed,
            ShardFault::Dead => FaultAction::FailOver { hedged: false },
            ShardFault::Slow(d) => match self.hedge {
                Some(h) if self.replicas > 1 && d >= h => FaultAction::FailOver { hedged: true },
                _ => {
                    std::thread::sleep(d);
                    FaultAction::Proceed
                }
            },
        }
    }
}

/// Gathers every live run's shard-local scores, translated to global
/// candidate ids, merged ascending.
fn merge_runs(runs: &[ShardRun]) -> Vec<(usize, f32)> {
    let per_shard: Vec<Vec<(usize, f32)>> = runs
        .iter()
        .map(|run| {
            run.req
                .scores()
                .iter()
                .map(|&(local, s)| (run.ids[local], s))
                .collect()
        })
        .collect();
    merge_shard_scores(&per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_map_routes_deterministically() {
        let m = ForwardMap::new(3);
        for key in [0_u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let s = m.shard_of(key);
            assert!(s < 3);
            assert_eq!(s, m.shard_of(key), "same key, same shard");
            assert_eq!(s, ForwardMap::new(3).shard_of(key), "rebuild-stable");
        }
    }

    #[test]
    fn forward_map_single_shard_routes_everything_to_zero() {
        let m = ForwardMap::new(1);
        assert!(m.slots().iter().all(|&s| s == 0));
    }

    #[test]
    fn growth_moves_slots_only_to_the_new_shard() {
        for n in 1..6_usize {
            let before = ForwardMap::new(n);
            let after = ForwardMap::new(n + 1);
            for (slot, (&a, &b)) in before.slots().iter().zip(after.slots()).enumerate() {
                if a != b {
                    assert_eq!(
                        b as usize, n,
                        "slot {slot} moved between pre-existing shards ({a} -> {b})"
                    );
                }
            }
        }
    }

    #[test]
    fn replica_rank_zero_is_the_primary() {
        let m = ForwardMap::new(5);
        for key in [0_u64, 7, 42, 0xDEAD_BEEF, u64::MAX] {
            for r in 1..=5 {
                let reps = m.replicas_of(key, r);
                assert_eq!(reps.len(), r);
                assert_eq!(reps[0], m.shard_of(key), "rank 0 must be shard_of");
                // Distinct shards, rebuild-stable ranking.
                let mut sorted = reps.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), r, "replica set has duplicates: {reps:?}");
                assert_eq!(reps, ForwardMap::new(5).replicas_of(key, r));
            }
        }
    }

    #[test]
    fn replica_count_clamps_to_shard_count() {
        let m = ForwardMap::new(3);
        assert_eq!(m.replicas_of(9, 0).len(), 1, "r=0 clamps up to 1");
        assert_eq!(m.replicas_of(9, 99).len(), 3, "r>shards clamps down");
    }

    #[test]
    fn replica_rankings_spread_secondary_load() {
        // Rendezvous ranking: the rank-1 replica of keys owned by one
        // primary must not all pile onto a single neighbor.
        let m = ForwardMap::new(4);
        let mut secondaries = std::collections::HashSet::new();
        for key in 0..256_u64 {
            let reps = m.replicas_of(key, 2);
            if reps[0] == 0 {
                secondaries.insert(reps[1]);
            }
        }
        assert!(
            secondaries.len() > 1,
            "all of shard 0's keys fail over to one shard: {secondaries:?}"
        );
    }

    #[test]
    fn candidate_key_is_content_hash() {
        assert_eq!(candidate_key(&[1, 2, 3]), candidate_key(&[1, 2, 3]));
        assert_ne!(candidate_key(&[1, 2, 3]), candidate_key(&[3, 2, 1]));
        assert_ne!(candidate_key(&[1]), candidate_key(&[1, 1]));
    }

    #[test]
    fn fault_cell_round_trips() {
        let c = FaultCell::new();
        assert_eq!(c.get(), ShardFault::Healthy);
        c.set(ShardFault::Dead);
        assert_eq!(c.get(), ShardFault::Dead);
        c.set(ShardFault::Slow(Duration::from_millis(3)));
        assert_eq!(c.get(), ShardFault::Slow(Duration::from_millis(3)));
        c.set(ShardFault::Healthy);
        assert_eq!(c.get(), ShardFault::Healthy);
    }
}
