//! The serving layer's semantic-cache tier: glue between
//! [`prism_semcache::SemanticCache`] and the worker execution paths.
//!
//! Sits between the per-session memo cache and the engine. A request is
//! **eligible** when it opts in ([`prism_core::SemCacheMode`]) *and*
//! resolves to full-depth execution (effective pruning off): a
//! candidate's full-depth score is a pure function of its token sequence
//! and precision knobs — the batch-independence contract the conformance
//! suites pin — so replaying one across requests, sessions and tenants
//! is sound. Pruned requests bypass this tier untouched.
//!
//! Per eligible request the worker:
//! 1. mean-pools each candidate's embedding rows (the embedding is
//!    computed anyway, or replayed from the session cache),
//! 2. probes the shared cache per candidate —
//!    [`SemCacheMode::VerifyAndFallback`] consults the exact tier only
//!    (bit-identical replays), [`SemCacheMode::Aggressive`] also the
//!    similarity tier,
//! 3. replays matched scores and recomputes only the **novel tail** as a
//!    sub-batch, merging by a `ScatterGate`-style keep mask so the final
//!    ranking is the same stable full-depth order the exact path
//!    produces,
//! 4. harvests freshly computed full-depth scores back into the cache.
//!
//! Under `VerifyAndFallback`, a deterministically sampled fraction of
//! hits forces the whole request down the exact path anyway; replayed
//! scores are then compared bit-for-bit and a mismatch poisons the
//! offending LSH bucket and counts a fallback — the caller always gets
//! the exact result.

use std::sync::Mutex;

use prism_core::{
    rank_full_scores, ComputePrecision, EngineTrace, RequestOptions, Selection, SemCacheMode,
    SpillPrecision,
};
use prism_model::SequenceBatch;
use prism_semcache::{mean_pool, should_verify, Probe, SemCacheConfig, SemanticCache};
use prism_tensor::Tensor;

/// Shared semantic-cache tier of one server (one instance across every
/// worker, session and tenant; probes and harvests lock briefly, never
/// across engine execution).
pub struct SemanticLayer {
    cache: Mutex<SemanticCache>,
    verify_fraction: f64,
}

/// Per-request semcache bookkeeping carried from planning to
/// finalization by the worker.
#[derive(Debug)]
pub struct SemState {
    /// Precision profile byte of every candidate in the request.
    pub profile: u8,
    /// Mean-pooled embedding vector per candidate (probe + harvest).
    pub pooled: Vec<Vec<f32>>,
    /// Probe outcome per candidate (`Probe::Miss` = novel).
    pub probes: Vec<Probe>,
    /// `Some(positions)` when only the novel tail was planned: the
    /// original-batch positions the planned sub-request covers, in
    /// order. `None` when the full request was planned.
    pub novel: Option<Vec<usize>>,
    /// Whether this request was sampled for verification (full exact
    /// compute + bit comparison against the replayed scores).
    pub verify: bool,
}

impl SemState {
    /// Number of candidates whose score was replayed from the cache.
    pub fn hits(&self) -> usize {
        self.probes.iter().filter(|p| p.is_hit()).count()
    }
}

impl SemanticLayer {
    /// Builds the tier from the serving configuration's cache config.
    pub fn new(config: SemCacheConfig) -> Self {
        let verify_fraction = config.verify_fraction;
        SemanticLayer {
            cache: Mutex::new(SemanticCache::new(config)),
            verify_fraction,
        }
    }

    /// Whether a request with `options` engages this tier on an engine
    /// whose default pruning switch is `engine_pruning`. Only full-depth
    /// (effective pruning off) requests are sound to replay.
    pub fn eligible(options: &RequestOptions, engine_pruning: bool) -> bool {
        options.semcache != SemCacheMode::Off && !options.pruning.unwrap_or(engine_pruning)
    }

    /// Packs the knobs that change score bits into the exact-tier
    /// profile byte: int8-spilled and int8-computed scores must never
    /// replay into requests running other precision profiles.
    pub fn profile_byte(options: &RequestOptions) -> u8 {
        u8::from(options.spill_precision == SpillPrecision::Int8)
            | (u8::from(options.compute_precision == ComputePrecision::Int8) << 1)
    }

    /// Mean-pools each candidate's slice of the embedded batch
    /// (`embed` is `[total_tokens, hidden_dim]`, rows per candidate
    /// given by the batch's ranges).
    pub fn pooled_candidates(embed: &Tensor, batch: &SequenceBatch) -> Vec<Vec<f32>> {
        let dim = embed.cols();
        let data = embed.data();
        batch
            .ranges()
            .iter()
            .map(|&(s, e)| mean_pool(&data[s * dim..e * dim], dim))
            .collect()
    }

    /// Probes every candidate of `batch`. `mode` picks the tiers:
    /// `VerifyAndFallback` consults only exact token matches,
    /// `Aggressive` also near-duplicates.
    pub fn probe_batch(
        &self,
        batch: &SequenceBatch,
        pooled: &[Vec<f32>],
        profile: u8,
        mode: SemCacheMode,
    ) -> Vec<Probe> {
        let allow_similar = mode == SemCacheMode::Aggressive;
        let mut cache = self.cache.lock().expect("semcache lock");
        (0..batch.num_sequences())
            .map(|i| cache.probe(batch.sequence(i), profile, Some(&pooled[i]), allow_similar))
            .collect()
    }

    /// Whether any hit of `probes` samples into verification under
    /// `VerifyAndFallback` (deterministic per candidate content).
    pub fn wants_verify(&self, mode: SemCacheMode, probes: &[Probe]) -> bool {
        mode == SemCacheMode::VerifyAndFallback
            && probes.iter().any(|p| match p {
                Probe::ExactHit { fingerprint, .. } | Probe::SimilarHit { fingerprint, .. } => {
                    should_verify(*fingerprint, self.verify_fraction)
                }
                Probe::Miss => false,
            })
    }

    /// Stores freshly computed full-depth scores for the candidates at
    /// `positions` (probe + harvest share the pooled vectors). Scores
    /// are indexed by original batch position.
    pub fn harvest(
        &self,
        batch: &SequenceBatch,
        pooled: &[Vec<f32>],
        profile: u8,
        positions: &[usize],
        scores: &[f32],
    ) {
        let mut cache = self.cache.lock().expect("semcache lock");
        for &i in positions {
            cache.insert(batch.sequence(i), profile, &pooled[i], scores[i]);
        }
    }

    /// Compares replayed scores against the exactly recomputed
    /// `last_scores` bit-for-bit, poisoning the LSH bucket of every
    /// mismatch. Returns the number of mismatches (fallbacks).
    pub fn verify_replays(&self, probes: &[Probe], last_scores: &[f32]) -> u64 {
        let mut mismatches = 0;
        let mut cache = self.cache.lock().expect("semcache lock");
        for (i, probe) in probes.iter().enumerate() {
            let (score, signature) = match probe {
                Probe::ExactHit {
                    score, signature, ..
                }
                | Probe::SimilarHit {
                    score, signature, ..
                } => (*score, *signature),
                Probe::Miss => continue,
            };
            if score.to_bits() != last_scores[i].to_bits() {
                cache.poison(signature);
                mismatches += 1;
            }
        }
        mismatches
    }

    /// Current metered bytes of the underlying cache.
    pub fn bytes(&self) -> u64 {
        self.cache.lock().expect("semcache lock").bytes()
    }

    /// Leak audit: recomputes the byte meter from live entries and
    /// checks every internal index (see
    /// [`prism_semcache::SemanticCache::audit`]).
    pub fn audit(&self) -> Result<u64, String> {
        self.cache.lock().expect("semcache lock").audit()
    }

    /// Counter snapshot of the underlying cache.
    pub fn cache_stats(&self) -> prism_semcache::SemCacheStats {
        self.cache.lock().expect("semcache lock").stats()
    }
}

/// Builds the selection a fully-replayed request answers with: the
/// replayed scores ranked by the same stable full-depth order
/// ([`rank_full_scores`]) the exact pruning-off path uses, every
/// candidate decided at `depth` (= the model's layer count).
pub fn replay_selection(scores: Vec<f32>, k: usize, depth: usize) -> Selection {
    Selection {
        ranked: rank_full_scores(&scores, k, depth),
        last_scores: scores,
        // Replays only engage on fully-served cached scores.
        coverage: 1.0,
        trace: EngineTrace::default(),
    }
}

/// Merges a partial replay with its computed novel tail: `probes` give
/// the kept (replayed) scores, `novel` lists the original positions the
/// sub-request computed (the complement of the keep mask), and
/// `tail_scores` are the sub-request's full-depth scores in that order.
/// Returns the merged per-candidate score vector, indexed like the
/// original batch.
pub fn merge_tail_scores(probes: &[Probe], novel: &[usize], tail_scores: &[f32]) -> Vec<f32> {
    debug_assert_eq!(novel.len(), tail_scores.len());
    let mut merged = vec![0.0f32; probes.len()];
    for (i, probe) in probes.iter().enumerate() {
        if let Some(score) = probe.score() {
            merged[i] = score;
        }
    }
    for (slot, &score) in novel.iter().zip(tail_scores) {
        merged[*slot] = score;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> SemanticLayer {
        SemanticLayer::new(SemCacheConfig {
            dim: 4,
            capacity_bytes: 1 << 20,
            lsh_bits: 8,
            similarity_threshold: 0.9,
            verify_fraction: 1.0,
            seed: 3,
        })
    }

    fn batch(seqs: &[Vec<u32>]) -> SequenceBatch {
        SequenceBatch::new(seqs).unwrap()
    }

    #[test]
    fn eligibility_requires_knob_and_full_depth() {
        let mut o = RequestOptions::top_k(2);
        assert!(!SemanticLayer::eligible(&o, false), "Off never engages");
        o.semcache = SemCacheMode::Aggressive;
        assert!(SemanticLayer::eligible(&o, false));
        assert!(!SemanticLayer::eligible(&o, true), "engine default pruning");
        o.pruning = Some(false);
        assert!(SemanticLayer::eligible(&o, true), "request override wins");
        o.pruning = Some(true);
        assert!(!SemanticLayer::eligible(&o, false));
    }

    #[test]
    fn profile_byte_separates_precisions() {
        // The default spill precision is already Int8; F32 is the opt-out.
        let base = RequestOptions::top_k(1);
        let spill = RequestOptions::top_k(1).with_spill_precision(SpillPrecision::F32);
        let compute = RequestOptions::top_k(1).with_compute_precision(ComputePrecision::Int8);
        let both = spill.clone().with_compute_precision(ComputePrecision::Int8);
        let bytes = [
            SemanticLayer::profile_byte(&base),
            SemanticLayer::profile_byte(&spill),
            SemanticLayer::profile_byte(&compute),
            SemanticLayer::profile_byte(&both),
        ];
        for (i, a) in bytes.iter().enumerate() {
            for b in bytes.iter().skip(i + 1) {
                assert_ne!(a, b, "profiles must be distinct: {bytes:?}");
            }
        }
    }

    #[test]
    fn pooling_splits_by_candidate_ranges() {
        let b = batch(&[vec![1, 2], vec![3]]);
        // 3 total tokens, dim 2: rows 0-1 are candidate 0, row 2 is 1.
        let embed = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0]).unwrap();
        let pooled = SemanticLayer::pooled_candidates(&embed, &b);
        assert_eq!(pooled, vec![vec![2.0, 3.0], vec![10.0, 20.0]]);
    }

    #[test]
    fn probe_replay_harvest_round_trip() {
        let layer = layer();
        let b = batch(&[vec![1, 2], vec![3, 4]]);
        let pooled = vec![vec![0.4, -0.2, 0.8, 0.1], vec![-0.3, 0.9, 0.2, -0.5]];
        let probes = layer.probe_batch(&b, &pooled, 0, SemCacheMode::Aggressive);
        assert!(probes.iter().all(|p| !p.is_hit()), "cold cache misses");
        layer.harvest(&b, &pooled, 0, &[0, 1], &[0.25, -0.75]);
        let probes = layer.probe_batch(&b, &pooled, 0, SemCacheMode::VerifyAndFallback);
        assert_eq!(probes[0].score(), Some(0.25));
        assert_eq!(probes[1].score(), Some(-0.75));
        // verify_fraction = 1.0: every hit samples into verification.
        assert!(layer.wants_verify(SemCacheMode::VerifyAndFallback, &probes));
        assert!(!layer.wants_verify(SemCacheMode::Aggressive, &probes));
        // Bit-identical recompute: no fallbacks, nothing poisoned.
        assert_eq!(layer.verify_replays(&probes, &[0.25, -0.75]), 0);
        // A flipped score poisons and counts.
        assert_eq!(layer.verify_replays(&probes, &[0.25, -0.74]), 1);
        let probes = layer.probe_batch(&b, &pooled, 0, SemCacheMode::VerifyAndFallback);
        assert!(probes[0].is_hit(), "unpoisoned bucket still serves");
        assert!(!probes[1].is_hit(), "poisoned bucket is disabled");
        layer.audit().unwrap();
    }

    #[test]
    fn merge_places_tail_scores_by_keep_mask() {
        let probes = vec![
            Probe::ExactHit {
                score: 0.5,
                fingerprint: 1,
                signature: 2,
            },
            Probe::Miss,
            Probe::ExactHit {
                score: -0.25,
                fingerprint: 3,
                signature: 4,
            },
            Probe::Miss,
        ];
        let merged = merge_tail_scores(&probes, &[1, 3], &[9.0, 7.0]);
        assert_eq!(merged, vec![0.5, 9.0, -0.25, 7.0]);
    }

    #[test]
    fn replay_selection_ranks_like_the_exact_path() {
        let sel = replay_selection(vec![0.1, 0.9, 0.5], 2, 12);
        assert_eq!(sel.ranked.len(), 2);
        assert_eq!(sel.ranked[0].id, 1);
        assert_eq!(sel.ranked[1].id, 2);
        assert!(sel.ranked.iter().all(|r| r.decided_at_layer == 12));
        assert_eq!(sel.last_scores, vec![0.1, 0.9, 0.5]);
    }
}
