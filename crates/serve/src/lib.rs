//! `prism-serve`: a concurrent, multi-tenant serving front-end over the
//! PRISM engine.
//!
//! The engine itself answers one selection per call; real deployments see
//! *streams* of requests from many sessions. This crate turns the engine
//! into a serving system:
//!
//! ```text
//!  clients ──submit──▶ [SubmissionQueue]            (bounded, backpressure)
//!                            │
//!                      [BatchPlanner]               (token budget + age bound)
//!                            │ coalesced FIFO prefix
//!                  ┌─────────┴─────────┐
//!            [worker 0]  ...     [worker W-1]       (own ForwardScratch pool)
//!                  │                   │
//!            [SessionCache] ◀──▶ Arc<PrismEngine>   (one engine, Sync)
//!                  │
//!              reply channels ──▶ ResponseHandle::wait
//! ```
//!
//! * **Bounded submission queue** ([`queue`]): `submit` fails fast with
//!   [`ServeError::Backpressure`] when the queue is full instead of
//!   buffering unboundedly.
//! * **Batched scheduler** ([`scheduler`]): workers pop a *contiguous FIFO
//!   prefix* of the queue whose total token count fits a budget derived
//!   from the device's memory spec; an under-full batch waits at most the
//!   configured age bound for more arrivals. One streamed pass over the
//!   layer weights is then shared by every request of the batch
//!   ([`prism_core::PrismEngine::select_batch`]), which is where the
//!   throughput win over request-at-a-time serving comes from.
//! * **Session cache** ([`session`]): an LRU over sessions reuses
//!   candidate embeddings for repeat corpora and memoizes whole selections
//!   for exact repeats; hit/miss counters surface through [`ServeStats`].
//! * **Conformance by construction**: per-request computation inside a
//!   coalesced batch happens in exactly the single-request order, and the
//!   routing RNG is pinned by a per-request tag, so serving results are
//!   bit-identical to direct [`prism_core::PrismEngine::select_top_k`]
//!   calls — the property `tests/serve_conformance.rs` locks in across
//!   batch sizes and worker counts.

pub mod config;
pub mod load;
pub mod queue;
pub mod request;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod stats;

pub use config::ServeConfig;
pub use load::{run_closed_loop, LoadReport, LoadSpec};
pub use request::{CacheOutcome, ResponseHandle, ServeError, ServeRequest, ServeResponse};
pub use scheduler::{BatchPlanner, PlanDecision};
pub use server::{PrismServer, ServeSession};
pub use session::{fingerprint_batch, CacheLookup, SelectionKey, SessionCache};
pub use stats::{ServeStats, ServeStatsSnapshot};

/// Result alias for serving-path operations.
pub type Result<T> = std::result::Result<T, ServeError>;
