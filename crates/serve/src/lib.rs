//! `prism-serve`: a concurrent, multi-tenant serving front-end over the
//! PRISM engine.
//!
//! The engine itself answers one selection per call; real deployments see
//! *streams* of requests from many sessions. This crate turns the engine
//! into a serving system:
//!
//! ```text
//!  clients ──submit──▶ [SubmissionQueue]            (bounded, backpressure;
//!      │                     │                       sheds cancelled/expired)
//!      │               [BatchPlanner]               (priority → EDF → FIFO,
//!      │                     │ admissible set        token budget, starvation
//!      │           ┌─────────┴─────────┐             guard)
//!      │     [worker 0]  ...     [worker W-1]       (own ForwardScratch pool)
//!      │           │                   │
//!      │     [SessionCache] ◀──▶ Arc<PrismEngine>   (one engine, Sync;
//!      │           │                                 cancel/deadline checked
//!      │           ▼                                 at every layer boundary)
//!      └──▶ ResponseHandle::wait  /  prism_api::SelectionHandle
//!                                    (poll · wait · cancel · progress)
//! ```
//!
//! * **Bounded submission queue** ([`queue`]): `submit` fails fast with
//!   [`ServiceError::Backpressure`] (carrying a `retry_after` hint
//!   derived from queue depth and service rate) when the queue is full
//!   instead of buffering unboundedly, and answers cancelled or
//!   deadline-expired entries with their typed error before a worker
//!   wastes a weight pass on them.
//! * **Priority scheduler** ([`scheduler`]): workers pop the maximal
//!   admissible prefix of the priority-then-EDF order (FIFO ties, aged
//!   requests boosted by the starvation guard) whose total token count
//!   fits a budget derived from the device's memory spec; an under-full
//!   batch waits at most the configured age bound unless something
//!   urgent is queued. One streamed pass over the layer weights is then
//!   shared by every request of the batch
//!   ([`prism_core::PrismEngine::select_batch`]), which is where the
//!   throughput win over request-at-a-time serving comes from.
//! * **Session cache** ([`session`]): an LRU over sessions reuses
//!   candidate embeddings for repeat corpora and memoizes whole selections
//!   for exact repeats; hit/miss counters surface through [`ServeStats`].
//! * **Semantic cache** ([`semantic`]): between the session cache and the
//!   engine, a similarity-keyed cross-request cache (`prism-semcache`)
//!   replays per-candidate full-depth scores across sessions and tenants
//!   — exact token repeats always, near-duplicates under the
//!   [`prism_core::SemCacheMode::Aggressive`] knob — recomputing only the
//!   novel tail of partially-hit requests.
//! * **Facade backend** ([`RemoteService`]): the server implements
//!   `prism_api::SelectionService`, so facade callers get non-blocking
//!   handles with mid-flight cancellation and layer-granularity progress
//!   over the same queue and scheduler.
//! * **Conformance by construction**: per-request computation inside a
//!   coalesced batch happens in exactly the single-request order, the
//!   routing RNG is pinned by a per-request tag, and uniform-priority
//!   queues schedule as a pure FIFO prefix — so serving results are
//!   bit-identical to direct [`prism_core::PrismEngine::select_top_k`]
//!   calls, the property `tests/serve_conformance.rs` locks in across
//!   batch sizes and worker counts.

pub mod chaos;
pub mod config;
pub mod load;
pub mod queue;
pub mod quota;
pub mod request;
pub mod scheduler;
pub mod semantic;
pub mod server;
pub mod session;
pub mod shard;
pub mod stats;

pub use chaos::{audit_shard_hygiene, run_chaos, ChaosPlan, ChaosReport, ChaosStep};
pub use config::ServeConfig;
pub use load::{run_closed_loop, ClassReport, LoadReport, LoadSpec};
pub use quota::{QuotaToken, TenantQuota};
pub use request::{
    CacheOutcome, Replier, ResponseHandle, ServeError, ServeRequest, ServeResponse, ServiceError,
};
pub use scheduler::{BatchPlanner, PlanDecision, QueueItem};
pub use semantic::SemanticLayer;
pub use server::{PrismServer, RemoteService, ServeSession};
pub use session::{fingerprint_batch, CacheLookup, SelectionKey, SessionCache};
pub use shard::{candidate_key, ForwardMap, ShardFault, ShardSet, FORWARD_SLOTS};
pub use stats::{ServeStats, ServeStatsSnapshot};

/// Result alias for serving-path operations.
pub type Result<T> = std::result::Result<T, ServeError>;
