//! Per-session LRU cache of candidate embeddings and whole selections.
//!
//! Motivated by SMTM-style semantic-memory serving: agents and RAG
//! pipelines re-rank the *same* candidate corpus many times (per step /
//! per query). Embedding a batch is a pure function of its token content,
//! and a selection is a pure function of `(content, k, tag, routing
//! overrides)` — so both can be replayed bit-identically. The cache keeps
//! one corpus per session: the embedded hidden states (always reusable)
//! plus a small memo of finished [`Selection`]s for exact repeats.

use std::collections::HashMap;

use prism_core::{
    ComputePrecision, PruneMode, RequestOptions, Selection, SemCacheMode, SpillPrecision,
};
use prism_model::SequenceBatch;
use prism_tensor::Tensor;

/// FNV-1a over the packed tokens and sequence ranges: the identity of a
/// candidate corpus for caching purposes.
pub fn fingerprint_batch(batch: &SequenceBatch) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(batch.num_sequences() as u64);
    for &(s, e) in batch.ranges() {
        eat(s as u64);
        eat(e as u64);
    }
    for &t in batch.tokens() {
        eat(u64::from(t));
    }
    h
}

/// Everything besides the corpus content that a selection result depends
/// on — the memo key next to a content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SelectionKey {
    k: usize,
    tag: Option<u64>,
    threshold_bits: Option<u32>,
    mode: Option<u8>,
    pruning: Option<bool>,
    /// Spill precision changes scores under hidden offload, so int8 and
    /// f32 repeats must never replay each other's memoized selections.
    spill_int8: bool,
    /// Compute precision changes scores everywhere; same rule.
    compute_int8: bool,
    /// Semantic-cache exactness mode: `Aggressive` results may contain
    /// approximate (near-duplicate) replays, so they must never replay
    /// as memos for `Off`/`VerifyAndFallback` repeats (or vice versa).
    semcache: u8,
}

impl SelectionKey {
    /// Builds the memo key for one request's options.
    pub fn from_options(options: &RequestOptions) -> Self {
        SelectionKey {
            k: options.k,
            tag: options.tag,
            threshold_bits: options.dispersion_threshold.map(f32::to_bits),
            mode: options.mode.map(|m| match m {
                PruneMode::TopKOnly => 0,
                PruneMode::ExactOrder => 1,
            }),
            pruning: options.pruning,
            spill_int8: options.spill_precision == SpillPrecision::Int8,
            compute_int8: options.compute_precision == ComputePrecision::Int8,
            semcache: match options.semcache {
                SemCacheMode::Off => 0,
                SemCacheMode::VerifyAndFallback => 1,
                SemCacheMode::Aggressive => 2,
            },
        }
    }
}

/// Result of a cache probe.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Exact repeat: the finished selection, replayed.
    Selection(Box<Selection>),
    /// Same corpus, different parameters: the embedded hidden states.
    Embed(Tensor),
    /// Corpus unknown (or changed) for this session.
    Miss,
}

/// Selections memoized per session; repeats beyond this evict the oldest.
const MEMO_PER_SESSION: usize = 8;

struct SessionEntry {
    fingerprint: u64,
    /// The actual corpus, kept to verify hits: a 64-bit fingerprint
    /// alone could collide and silently replay the wrong corpus.
    corpus: SequenceBatch,
    embed: Option<Tensor>,
    selections: Vec<(SelectionKey, Selection)>,
    last_used: u64,
}

/// LRU map from session key to its cached corpus state.
///
/// Not internally synchronized — the server wraps it in a `Mutex` and
/// holds the lock only around probes/stores, never during execution.
pub struct SessionCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, SessionEntry>,
}

impl SessionCache {
    /// Creates a cache holding at most `capacity` sessions.
    pub fn new(capacity: usize) -> Self {
        SessionCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes (embeddings dominate).
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter_map(|e| e.embed.as_ref().map(|t| t.size_bytes() as u64))
            .sum()
    }

    /// Probes the cache for `session` + request `key`, refreshing
    /// recency on a hit. The fingerprint gates cheaply; the stored
    /// corpus is then compared in full so a hash collision can never
    /// replay another corpus's results.
    pub fn lookup(
        &mut self,
        session: &str,
        fingerprint: u64,
        batch: &SequenceBatch,
        key: &SelectionKey,
    ) -> CacheLookup {
        self.tick += 1;
        let Some(entry) = self.entries.get_mut(session) else {
            return CacheLookup::Miss;
        };
        if entry.fingerprint != fingerprint || entry.corpus != *batch {
            return CacheLookup::Miss;
        }
        entry.last_used = self.tick;
        if let Some((_, sel)) = entry.selections.iter().find(|(k, _)| k == key) {
            return CacheLookup::Selection(Box::new(sel.clone()));
        }
        match &entry.embed {
            Some(t) => CacheLookup::Embed(t.clone()),
            None => CacheLookup::Miss,
        }
    }

    /// Records the embedded hidden states of `session`'s current corpus.
    /// A new corpus resets the entry.
    pub fn store_embed(
        &mut self,
        session: &str,
        fingerprint: u64,
        batch: &SequenceBatch,
        embed: Tensor,
    ) {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(session) {
            Some(entry) => {
                if entry.fingerprint != fingerprint || entry.corpus != *batch {
                    entry.fingerprint = fingerprint;
                    entry.corpus = batch.clone();
                    entry.selections.clear();
                }
                entry.embed = Some(embed);
                entry.last_used = tick;
            }
            None => {
                self.entries.insert(
                    session.to_string(),
                    SessionEntry {
                        fingerprint,
                        corpus: batch.clone(),
                        embed: Some(embed),
                        selections: Vec::new(),
                        last_used: tick,
                    },
                );
                self.evict_over_capacity();
            }
        }
    }

    /// Memoizes a finished selection for exact-repeat replay.
    pub fn store_selection(
        &mut self,
        session: &str,
        fingerprint: u64,
        batch: &SequenceBatch,
        key: SelectionKey,
        selection: &Selection,
    ) {
        self.tick += 1;
        let tick = self.tick;
        let entry = self
            .entries
            .entry(session.to_string())
            .or_insert_with(|| SessionEntry {
                fingerprint,
                corpus: batch.clone(),
                embed: None,
                selections: Vec::new(),
                last_used: tick,
            });
        if entry.fingerprint != fingerprint || entry.corpus != *batch {
            entry.fingerprint = fingerprint;
            entry.corpus = batch.clone();
            entry.embed = None;
            entry.selections.clear();
        }
        entry.last_used = tick;
        if let Some(slot) = entry.selections.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = selection.clone();
        } else {
            if entry.selections.len() >= MEMO_PER_SESSION {
                entry.selections.remove(0);
            }
            entry.selections.push((key, selection.clone()));
        }
        self.evict_over_capacity();
    }

    fn evict_over_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                return;
            };
            self.entries.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(tokens: &[u32]) -> SequenceBatch {
        SequenceBatch::new(&[tokens.to_vec()]).unwrap()
    }

    fn key(k: usize, tag: u64) -> SelectionKey {
        SelectionKey::from_options(&RequestOptions::tagged(k, tag))
    }

    fn selection(score: f32) -> Selection {
        Selection {
            ranked: vec![prism_core::RankedCandidate {
                id: 0,
                score,
                decided_at_layer: 1,
            }],
            last_scores: vec![score],
            coverage: 1.0,
            trace: Default::default(),
        }
    }

    #[test]
    fn fingerprint_separates_content_and_shape() {
        let a = fingerprint_batch(&SequenceBatch::new(&[vec![1, 2], vec![3]]).unwrap());
        let b = fingerprint_batch(&SequenceBatch::new(&[vec![1], vec![2, 3]]).unwrap());
        let c = fingerprint_batch(&SequenceBatch::new(&[vec![1, 2], vec![3]]).unwrap());
        assert_ne!(a, b, "same tokens, different packing must differ");
        assert_eq!(a, c, "identical batches must agree");
        assert_ne!(a, fingerprint_batch(&batch(&[1, 2, 4])));
    }

    #[test]
    fn selection_key_distinguishes_options() {
        assert_ne!(key(2, 1), key(2, 2));
        assert_ne!(key(2, 1), key(3, 1));
        let mut o = RequestOptions::tagged(2, 1);
        o.dispersion_threshold = Some(0.3);
        assert_ne!(SelectionKey::from_options(&o), key(2, 1));
        let f32_spill = RequestOptions::tagged(2, 1).with_spill_precision(SpillPrecision::F32);
        assert_ne!(SelectionKey::from_options(&f32_spill), key(2, 1));
        let int8_compute =
            RequestOptions::tagged(2, 1).with_compute_precision(ComputePrecision::Int8);
        assert_ne!(
            SelectionKey::from_options(&int8_compute),
            key(2, 1),
            "int8-compute scores must not replay f32 memos"
        );
        let aggressive = RequestOptions::tagged(2, 1).with_semcache(SemCacheMode::Aggressive);
        assert_ne!(
            SelectionKey::from_options(&aggressive),
            key(2, 1),
            "aggressive semcache results must not replay as exact memos"
        );
    }

    #[test]
    fn embed_then_selection_hit_progression() {
        let mut cache = SessionCache::new(4);
        let b = batch(&[1, 2, 3]);
        let fp = fingerprint_batch(&b);
        assert!(matches!(
            cache.lookup("s", fp, &b, &key(2, 1)),
            CacheLookup::Miss
        ));
        cache.store_embed("s", fp, &b, Tensor::zeros(3, 2));
        match cache.lookup("s", fp, &b, &key(2, 1)) {
            CacheLookup::Embed(t) => assert_eq!(t.rows(), 3),
            other => panic!("expected embed hit, got {other:?}"),
        }
        cache.store_selection("s", fp, &b, key(2, 1), &selection(0.5));
        match cache.lookup("s", fp, &b, &key(2, 1)) {
            CacheLookup::Selection(sel) => assert_eq!(sel.ranked[0].score, 0.5),
            other => panic!("expected selection hit, got {other:?}"),
        }
        // Different options on the same corpus still reuse the embedding.
        assert!(matches!(
            cache.lookup("s", fp, &b, &key(2, 2)),
            CacheLookup::Embed(_)
        ));
    }

    #[test]
    fn fingerprint_collision_is_caught_by_corpus_compare() {
        let mut cache = SessionCache::new(4);
        let b = batch(&[1, 2, 3]);
        let fp = fingerprint_batch(&b);
        cache.store_embed("s", fp, &b, Tensor::zeros(3, 2));
        // A colliding fingerprint with different content must MISS.
        let imposter = batch(&[9, 9, 9]);
        assert!(matches!(
            cache.lookup("s", fp, &imposter, &key(2, 1)),
            CacheLookup::Miss
        ));
    }

    #[test]
    fn corpus_change_invalidates_session() {
        let mut cache = SessionCache::new(4);
        let b1 = batch(&[1, 2]);
        let b2 = batch(&[3, 4]);
        let (fp1, fp2) = (fingerprint_batch(&b1), fingerprint_batch(&b2));
        cache.store_embed("s", fp1, &b1, Tensor::zeros(2, 2));
        cache.store_selection("s", fp1, &b1, key(1, 1), &selection(0.1));
        cache.store_embed("s", fp2, &b2, Tensor::zeros(2, 2));
        assert!(matches!(
            cache.lookup("s", fp1, &b1, &key(1, 1)),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("s", fp2, &b2, &key(1, 1)),
            CacheLookup::Embed(_)
        ));
    }

    #[test]
    fn lru_evicts_least_recently_used_session() {
        let mut cache = SessionCache::new(2);
        let (ba, bb, bc) = (batch(&[1]), batch(&[2]), batch(&[3]));
        cache.store_embed("a", 1, &ba, Tensor::zeros(1, 1));
        cache.store_embed("b", 2, &bb, Tensor::zeros(1, 1));
        // Touch "a" so "b" is the eviction victim.
        let _ = cache.lookup("a", 1, &ba, &key(1, 1));
        cache.store_embed("c", 3, &bc, Tensor::zeros(1, 1));
        assert_eq!(cache.len(), 2);
        assert!(matches!(
            cache.lookup("b", 2, &bb, &key(1, 1)),
            CacheLookup::Miss
        ));
        assert!(matches!(
            cache.lookup("a", 1, &ba, &key(1, 1)),
            CacheLookup::Embed(_)
        ));
    }

    #[test]
    fn memo_is_bounded_per_session() {
        let mut cache = SessionCache::new(2);
        let b = batch(&[5, 6]);
        for tag in 0..20_u64 {
            cache.store_selection("s", 9, &b, key(1, tag), &selection(tag as f32));
        }
        // Oldest memos evicted; the most recent still hits.
        assert!(matches!(
            cache.lookup("s", 9, &b, &key(1, 19)),
            CacheLookup::Selection(_)
        ));
        assert!(!matches!(
            cache.lookup("s", 9, &b, &key(1, 0)),
            CacheLookup::Selection(_)
        ));
    }

    #[test]
    fn resident_bytes_tracks_embeddings() {
        let mut cache = SessionCache::new(4);
        let b = batch(&[1, 2, 3, 4]);
        assert_eq!(cache.resident_bytes(), 0);
        cache.store_embed("s", 1, &b, Tensor::zeros(4, 8));
        assert_eq!(cache.resident_bytes(), 4 * 8 * 4);
        assert!(!cache.is_empty());
    }
}
