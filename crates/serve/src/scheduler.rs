//! The batching policy: which queued requests run next.
//!
//! [`BatchPlanner`] is a pure function from an explicit queue snapshot
//! *and clock* to a decision — no hidden wall-clock reads — so its
//! invariants — never exceed the token budget, never starve a request
//! past the starvation bound, honour priority-then-EDF order, degrade to
//! a contiguous FIFO prefix for uniform workloads — are property-tested
//! directly (`tests/scheduler_props.rs`) without threads or clocks, and
//! the serving metasim (`prism-metasim`) drives the *production* planner
//! at virtual time instead of re-implementing the policy.
//!
//! Every [`QueueItem`] carries absolute microsecond timestamps on the
//! caller's clock: the real [`SubmissionQueue`](crate::queue) measures
//! them against its creation epoch, the simulator against virtual time
//! zero. The planner never asks what time it is — `now_micros` is a
//! parameter.
//!
//! ## Policy
//!
//! Admission order is **priority, then earliest deadline, then FIFO**:
//!
//! 1. *Starvation guard*: any request older than
//!    [`BatchPlanner::starvation_age_micros`] outranks everything (FIFO
//!    among the starved), so sustained high-priority load cannot park
//!    bulk work forever.
//! 2. [`Priority::High`] before [`Priority::Normal`] before
//!    [`Priority::Bulk`].
//! 3. Within a class, requests with deadlines run earliest-deadline-first
//!    ahead of deadline-free ones.
//! 4. Ties keep submission order (the sort is stable), which makes the
//!    policy collapse to exactly the historical contiguous-FIFO-prefix
//!    behaviour when every request shares one class and no deadlines —
//!    the case the serving conformance suite pins bit-identical to
//!    direct engine calls.
//!
//! The flush set is the maximal *prefix of that order* under the token
//! budget and request cap (never skipping over a too-big request to
//! reach a smaller one behind it; an oversized head still runs as a
//! mandatory singleton). An under-full batch waits out the age bound for
//! more arrivals unless something urgent (a `High` request, or a
//! deadline tighter than the bound) is queued.

use prism_core::Priority;

/// One queued request as the planner sees it. All timestamps are
/// absolute microseconds on the caller's clock (queue epoch for the real
/// server, virtual time zero for the simulator).
#[derive(Debug, Clone, Copy)]
pub struct QueueItem {
    /// Total packed tokens (the budget unit).
    pub tokens: usize,
    /// When the request entered the queue (absolute microseconds).
    pub enqueued_micros: u64,
    /// Scheduling class.
    pub priority: Priority,
    /// Absolute deadline in microseconds (`None` = no deadline). Expired
    /// requests are shed by the queue before planning and never reach
    /// the planner.
    pub deadline_micros: Option<u64>,
}

impl QueueItem {
    /// A deadline-free item of the default class (tests, uniform loads).
    pub fn plain(tokens: usize, enqueued_micros: u64) -> Self {
        QueueItem {
            tokens,
            enqueued_micros,
            priority: Priority::Normal,
            deadline_micros: None,
        }
    }

    /// Microseconds this item has spent queued as of `now_micros`.
    pub fn age_micros(&self, now_micros: u64) -> u64 {
        now_micros.saturating_sub(self.enqueued_micros)
    }
}

/// What a worker should do with the current queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanDecision {
    /// Pop these queue positions (in scheduling order) and execute them
    /// as one batch.
    Flush(Vec<usize>),
    /// Wait at most this many microseconds for more arrivals (the batch
    /// is under-full, nothing urgent is queued, and the oldest request
    /// is still within the age bound), then re-evaluate.
    Wait(u64),
}

/// Coalescing policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchPlanner {
    /// Maximum requests per coalesced batch.
    pub max_requests: usize,
    /// Maximum *total* packed tokens per batch (the §4.3-style memory
    /// budget; a single request larger than the budget still runs, alone).
    pub max_tokens: usize,
    /// Longest a queued request may age before an under-full batch is
    /// flushed anyway, in microseconds.
    pub max_wait_micros: u64,
    /// Age past which a request outranks every scheduling class (the
    /// anti-starvation guard of the priority policy).
    pub starvation_age_micros: u64,
    /// `false` ignores priorities and deadlines entirely — the historical
    /// pure-FIFO scheduler (kept as the measurable baseline for
    /// `bench-serve` and `repro perf`).
    pub priority_aware: bool,
}

impl BatchPlanner {
    /// The scheduling order: queue positions sorted priority-then-EDF
    /// with the starvation guard; pure FIFO when `priority_aware` is off.
    pub fn order(&self, queue: &[QueueItem], now_micros: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..queue.len()).collect();
        if !self.priority_aware {
            return order;
        }
        // Stable sort: ties (same class, same deadline presence) keep
        // submission order, so a uniform queue stays exactly FIFO.
        // Starved requests neutralize their class and deadline keys —
        // they run strictly FIFO among themselves (the oldest wait ends
        // first), ahead of everything unstarved. Absolute deadlines sort
        // identically to deadline slack: `now` is common to the snapshot.
        order.sort_by_key(|&i| {
            let q = &queue[i];
            let starved = q.age_micros(now_micros) >= self.starvation_age_micros;
            if starved {
                (false, std::cmp::Reverse(Priority::High), 0)
            } else {
                (
                    true,
                    std::cmp::Reverse(q.priority),
                    q.deadline_micros.unwrap_or(u64::MAX),
                )
            }
        });
        order
    }

    /// Decides on a queue snapshot (front of the queue first) at an
    /// explicit clock reading.
    ///
    /// Returns [`PlanDecision::Wait`] only when *growing* the batch is
    /// both possible (caps not hit, whole queue fits) and permitted (no
    /// urgent work queued, oldest request younger than the age bound).
    pub fn decide(&self, queue: &[QueueItem], now_micros: u64) -> PlanDecision {
        assert!(!queue.is_empty(), "decide() needs a non-empty queue");
        let flush = self.coalesce(queue, now_micros);

        let tokens: usize = flush.iter().map(|&i| queue[i].tokens).sum();
        let could_grow = flush.len() == queue.len()
            && flush.len() < self.max_requests.max(1)
            && tokens < self.max_tokens;
        if could_grow && !self.has_urgent(queue, now_micros) {
            // The queue is FIFO by arrival, so position 0 is oldest.
            let oldest_age = queue[0].age_micros(now_micros);
            if oldest_age < self.max_wait_micros {
                return PlanDecision::Wait(self.max_wait_micros - oldest_age);
            }
        }
        PlanDecision::Flush(flush)
    }

    /// The maximal admissible prefix of the scheduling order (at least
    /// one request: an oversized head forms a mandatory singleton).
    pub fn coalesce(&self, queue: &[QueueItem], now_micros: u64) -> Vec<usize> {
        let max_requests = self.max_requests.max(1);
        let order = self.order(queue, now_micros);
        let mut flush = Vec::new();
        let mut tokens = 0_usize;
        for &i in order.iter().take(max_requests) {
            if !flush.is_empty() && tokens + queue[i].tokens > self.max_tokens {
                break;
            }
            tokens += queue[i].tokens;
            flush.push(i);
        }
        flush
    }

    /// Whether anything queued should not wait out the age bound: a
    /// `High`-priority request, or a deadline due within the bound.
    fn has_urgent(&self, queue: &[QueueItem], now_micros: u64) -> bool {
        self.priority_aware
            && queue.iter().any(|q| {
                q.priority == Priority::High
                    || q.deadline_micros
                        .is_some_and(|d| d <= now_micros.saturating_add(self.max_wait_micros))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fixed clock reading: items are described by *age* below and
    /// converted to absolute enqueue times against this instant, which
    /// keeps the scenarios readable while exercising the explicit-clock
    /// API.
    const NOW: u64 = 1_000_000;

    fn planner() -> BatchPlanner {
        BatchPlanner {
            max_requests: 4,
            max_tokens: 100,
            max_wait_micros: 1_000,
            starvation_age_micros: 50_000,
            priority_aware: true,
        }
    }

    /// Builds items from `(tokens, age_micros)` pairs at the `NOW` clock.
    fn plain(queue: &[(usize, u64)]) -> Vec<QueueItem> {
        queue
            .iter()
            .map(|&(t, age)| QueueItem::plain(t, NOW - age))
            .collect()
    }

    /// Absolute deadline `remaining` microseconds past `NOW`.
    fn due_in(remaining: u64) -> Option<u64> {
        Some(NOW + remaining)
    }

    #[test]
    fn full_batch_flushes_immediately() {
        let q = plain(&[(30, 0), (30, 0), (30, 0), (30, 0), (30, 0)]);
        assert_eq!(
            planner().decide(&q, NOW),
            PlanDecision::Flush(vec![0, 1, 2])
        );
    }

    #[test]
    fn request_cap_limits_prefix() {
        let q = plain(&[(1, 0); 10]);
        assert_eq!(
            planner().decide(&q, NOW),
            PlanDecision::Flush(vec![0, 1, 2, 3])
        );
    }

    #[test]
    fn underfull_young_queue_waits_out_remaining_age() {
        let q = plain(&[(10, 400)]);
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Wait(600));
    }

    #[test]
    fn aged_head_flushes_underfull_batch() {
        let q = plain(&[(10, 1_000)]);
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0]));
        let q = plain(&[(10, 5_000), (10, 100)]);
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0, 1]));
    }

    #[test]
    fn oversized_request_runs_alone() {
        let q = plain(&[(500, 0), (10, 0)]);
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0]));
    }

    #[test]
    fn budget_is_respected_midway() {
        // 60 + 30 fits, adding 20 would overflow 100.
        let q = plain(&[(60, 0), (30, 0), (20, 0)]);
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0, 1]));
    }

    #[test]
    fn exact_budget_fill_flushes() {
        let q = plain(&[(50, 0), (50, 0)]);
        // Budget exactly consumed: nothing more could join, flush now.
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0, 1]));
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let mut q = plain(&[(30, 30), (30, 20), (30, 10), (30, 0), (30, 0)]);
        q[3].priority = Priority::High;
        assert_eq!(
            planner().decide(&q, NOW),
            PlanDecision::Flush(vec![3, 0, 1])
        );
    }

    #[test]
    fn bulk_yields_to_normal() {
        let mut q = plain(&[(30, 10), (30, 5), (30, 0)]);
        q[0].priority = Priority::Bulk;
        // Normal before Bulk, FIFO within class; the batch is full at
        // three requests only if the budget allows — 90 <= 100, and the
        // whole queue fits, so it waits for more arrivals.
        assert_eq!(planner().order(&q, NOW), vec![1, 2, 0]);
    }

    #[test]
    fn edf_orders_within_a_class() {
        let mut q = plain(&[(10, 0), (10, 0), (10, 0)]);
        q[0].deadline_micros = due_in(9_000);
        q[2].deadline_micros = due_in(4_000);
        // Deadline-bearing first (EDF), deadline-free last.
        assert_eq!(planner().order(&q, NOW), vec![2, 0, 1]);
    }

    #[test]
    fn starved_bulk_outranks_fresh_high() {
        let mut q = plain(&[(10, 60_000), (10, 0)]);
        q[0].priority = Priority::Bulk;
        q[1].priority = Priority::High;
        assert_eq!(planner().order(&q, NOW), vec![0, 1]);
    }

    #[test]
    fn starved_requests_run_fifo_among_themselves() {
        // Submission order: starved Bulk, starved High (with a tight
        // deadline), fresh High. The starved pair keeps FIFO order —
        // class and deadline are neutralized past the starvation bound,
        // so the longest wait ends first.
        let mut q = plain(&[(10, 70_000), (10, 60_000), (10, 0)]);
        q[0].priority = Priority::Bulk;
        q[1].priority = Priority::High;
        q[1].deadline_micros = due_in(5);
        q[2].priority = Priority::High;
        assert_eq!(planner().order(&q, NOW), vec![0, 1, 2]);
    }

    #[test]
    fn urgent_work_never_waits() {
        let mut q = plain(&[(10, 0)]);
        q[0].priority = Priority::High;
        // A lone High request flushes instead of aging toward a batch.
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0]));
        let mut q = plain(&[(10, 0)]);
        q[0].deadline_micros = due_in(500); // due within the age bound
        assert_eq!(planner().decide(&q, NOW), PlanDecision::Flush(vec![0]));
    }

    #[test]
    fn fifo_mode_ignores_priorities() {
        let mut q = plain(&[(30, 0), (30, 0)]);
        q[1].priority = Priority::High;
        let fifo = BatchPlanner {
            priority_aware: false,
            max_wait_micros: 0,
            ..planner()
        };
        assert_eq!(fifo.decide(&q, NOW), PlanDecision::Flush(vec![0, 1]));
        assert_eq!(fifo.order(&q, NOW), vec![0, 1]);
    }

    #[test]
    fn decisions_are_translation_invariant() {
        // Shifting every timestamp and the clock by the same offset must
        // not change any decision: the planner only consumes differences.
        let mut q = plain(&[(30, 700), (30, 20), (10, 0)]);
        q[1].priority = Priority::Bulk;
        q[2].deadline_micros = due_in(4_000);
        let shifted: Vec<QueueItem> = q
            .iter()
            .map(|item| QueueItem {
                enqueued_micros: item.enqueued_micros + 123_456,
                deadline_micros: item.deadline_micros.map(|d| d + 123_456),
                ..*item
            })
            .collect();
        let p = planner();
        assert_eq!(p.order(&q, NOW), p.order(&shifted, NOW + 123_456));
        assert_eq!(p.decide(&q, NOW), p.decide(&shifted, NOW + 123_456));
    }
}
