//! The batching policy: which FIFO prefix of the queue runs next.
//!
//! [`BatchPlanner`] is a pure function from a queue snapshot to a
//! decision, so its invariants — never exceed the token budget, never
//! starve a request past the age bound, always take a contiguous FIFO
//! prefix — are property-tested directly (`tests/scheduler_props.rs`)
//! without threads or clocks.

/// What a worker should do with the current queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// Pop the first `n` queued requests and execute them as one batch.
    Flush(usize),
    /// Wait at most this many microseconds for more arrivals (the batch
    /// is under-full and the oldest request is still within the age
    /// bound), then re-evaluate.
    Wait(u64),
}

/// Coalescing policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchPlanner {
    /// Maximum requests per coalesced batch.
    pub max_requests: usize,
    /// Maximum *total* packed tokens per batch (the §4.3-style memory
    /// budget; a single request larger than the budget still runs, alone).
    pub max_tokens: usize,
    /// Longest a queued request may age before an under-full batch is
    /// flushed anyway, in microseconds.
    pub max_wait_micros: u64,
}

impl BatchPlanner {
    /// Decides on a queue snapshot: `(tokens, age_micros)` per pending
    /// request in FIFO order (front first).
    ///
    /// Returns [`PlanDecision::Wait`] only when *growing* the batch is
    /// both possible (caps not hit, whole queue fits) and permitted (the
    /// oldest request is younger than the age bound).
    pub fn decide(&self, queue: &[(usize, u64)]) -> PlanDecision {
        assert!(!queue.is_empty(), "decide() needs a non-empty queue");
        let max_requests = self.max_requests.max(1);
        let prefix = self.coalesce(queue);

        let could_grow = prefix == queue.len()
            && prefix < max_requests
            && queue.iter().take(prefix).map(|&(t, _)| t).sum::<usize>() < self.max_tokens;
        if could_grow {
            let oldest_age = queue[0].1;
            if oldest_age < self.max_wait_micros {
                return PlanDecision::Wait(self.max_wait_micros - oldest_age);
            }
        }
        PlanDecision::Flush(prefix)
    }

    /// Length of the longest FIFO prefix within both caps (at least 1:
    /// an oversized head request forms a singleton batch).
    pub fn coalesce(&self, queue: &[(usize, u64)]) -> usize {
        let max_requests = self.max_requests.max(1);
        let mut tokens = 0_usize;
        let mut n = 0_usize;
        for &(t, _) in queue.iter().take(max_requests) {
            if n > 0 && tokens + t > self.max_tokens {
                break;
            }
            tokens += t;
            n += 1;
        }
        n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> BatchPlanner {
        BatchPlanner {
            max_requests: 4,
            max_tokens: 100,
            max_wait_micros: 1_000,
        }
    }

    #[test]
    fn full_batch_flushes_immediately() {
        let q = vec![(30, 0), (30, 0), (30, 0), (30, 0), (30, 0)];
        assert_eq!(planner().decide(&q), PlanDecision::Flush(3));
    }

    #[test]
    fn request_cap_limits_prefix() {
        let q = vec![(1, 0); 10];
        assert_eq!(planner().decide(&q), PlanDecision::Flush(4));
    }

    #[test]
    fn underfull_young_queue_waits_out_remaining_age() {
        let q = vec![(10, 400)];
        assert_eq!(planner().decide(&q), PlanDecision::Wait(600));
    }

    #[test]
    fn aged_head_flushes_underfull_batch() {
        let q = vec![(10, 1_000)];
        assert_eq!(planner().decide(&q), PlanDecision::Flush(1));
        let q = vec![(10, 5_000), (10, 100)];
        assert_eq!(planner().decide(&q), PlanDecision::Flush(2));
    }

    #[test]
    fn oversized_request_runs_alone() {
        let q = vec![(500, 0), (10, 0)];
        assert_eq!(planner().decide(&q), PlanDecision::Flush(1));
    }

    #[test]
    fn budget_is_respected_midway() {
        // 60 + 30 fits, adding 20 would overflow 100.
        let q = vec![(60, 0), (30, 0), (20, 0)];
        assert_eq!(planner().decide(&q), PlanDecision::Flush(2));
    }

    #[test]
    fn exact_budget_fill_flushes() {
        let q = vec![(50, 0), (50, 0)];
        // Budget exactly consumed: nothing more could join, flush now.
        assert_eq!(planner().decide(&q), PlanDecision::Flush(2));
    }
}
