//! Serving telemetry: queue, batch, latency and cache instruments.

use prism_metrics::{Counter, Gauge, Histogram, HistogramSummary};
use serde::Serialize;

/// Live instruments of one [`crate::PrismServer`]. Clones share state.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests currently queued (gauge with high-water mark).
    pub queue_depth: Gauge,
    /// Requests currently executing across all workers.
    pub in_flight: Gauge,
    /// Requests accepted into the queue.
    pub submitted: Counter,
    /// Requests rejected with backpressure.
    pub rejected: Counter,
    /// Requests rejected at admission because their tenant was at its
    /// in-flight quota.
    pub quota_rejected: Counter,
    /// Requests rejected at admission because their deadline had already
    /// passed.
    pub deadline_rejected: Counter,
    /// Accepted requests shed later (while queued or mid-flight) because
    /// their deadline passed.
    pub deadline_missed: Counter,
    /// Requests cancelled by their caller (queued or mid-flight). Never
    /// counted in `completed`.
    pub cancelled: Counter,
    /// Batches whose admission skipped over a higher-priority request
    /// (the anti-starvation guard promoting aged bulk work) — the
    /// priority-inversion gauge of the scheduler.
    pub priority_inversions: Counter,
    /// Requests answered with a selection or an engine error (cancelled
    /// and deadline-shed requests are excluded).
    pub completed: Counter,
    /// Coalesced batches executed.
    pub batches: Counter,
    /// Requests per executed batch.
    pub batch_size: Histogram,
    /// Total packed tokens per executed batch.
    pub batch_tokens: Histogram,
    /// Microseconds a request spent queued.
    pub queued_us: Histogram,
    /// Microseconds of batch execution, recorded once per request.
    pub service_us: Histogram,
    /// Session-cache: full-selection replays.
    pub cache_selection_hits: Counter,
    /// Session-cache: embedding replays.
    pub cache_embed_hits: Counter,
    /// Session-cache: misses (including cache-disabled requests).
    pub cache_misses: Counter,
    /// Semantic cache: candidates whose score was replayed (exact or
    /// similar tier) instead of recomputed.
    pub semcache_hits: Counter,
    /// Semantic cache: candidates probed without a replayable score
    /// (only eligible requests probe — pruning-off with the knob on).
    pub semcache_misses: Counter,
    /// Semantic cache: verification mismatches that fell back to the
    /// exact path (each also poisoned the offending LSH bucket).
    pub semcache_fallbacks: Counter,
    /// Semantic cache: resident bytes (int8 entries + overhead), metered
    /// like spill bytes. Mirrors the cache's own byte meter.
    pub semcache_bytes: Gauge,
    /// Resilience: sub-batches re-homed from a dead (or hedged-away)
    /// shard onto a replica mid-request.
    pub failovers: Counter,
    /// Resilience: hedges fired — a straggling shard's sub-batch sent to
    /// a replica after the hedge delay.
    pub hedges_fired: Counter,
    /// Resilience: hedges whose request then completed successfully (the
    /// replica's result won; the straggler was cancelled).
    pub hedges_won: Counter,
    /// Resilience: backpressure retries absorbed by the typed retry
    /// policy (client loops honoring `retry_after`).
    pub retried: Counter,
    /// Resilience: spill slots quarantined on checksum mismatch and
    /// recomputed from weights.
    pub slots_quarantined: Counter,
    /// Resilience: requests answered with partial coverage (replicas
    /// exhausted under `PartialMode::Partial`).
    pub partial_results: Counter,
}

impl ServeStats {
    /// Creates zeroed instruments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of cache probes that hit (selection or embedding), in
    /// `[0, 1]`; zero when nothing was probed.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_selection_hits.get() + self.cache_embed_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Backpressure retry hint derived from the current queue depth and
    /// the observed service rate: roughly how long until `queue_depth`
    /// requests drain across `workers` workers. Falls back to 1 ms per
    /// queued request before any service time was observed.
    pub fn retry_after_hint(&self, queue_depth: usize, workers: usize) -> std::time::Duration {
        let per_request_us = match self.service_us.mean() {
            m if m > 0.0 => m,
            _ => 1_000.0,
        };
        let us = (queue_depth.max(1) as f64 / workers.max(1) as f64) * per_request_us;
        std::time::Duration::from_micros(us.ceil() as u64)
    }

    /// A serializable point-in-time snapshot.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            queue_depth: self.queue_depth.get(),
            queue_depth_peak: self.queue_depth.peak(),
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            quota_rejected: self.quota_rejected.get(),
            deadline_rejected: self.deadline_rejected.get(),
            deadline_missed: self.deadline_missed.get(),
            cancelled: self.cancelled.get(),
            priority_inversions: self.priority_inversions.get(),
            completed: self.completed.get(),
            batches: self.batches.get(),
            batch_size: self.batch_size.summary(),
            batch_tokens: self.batch_tokens.summary(),
            queued_us: self.queued_us.summary(),
            service_us: self.service_us.summary(),
            cache_selection_hits: self.cache_selection_hits.get(),
            cache_embed_hits: self.cache_embed_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_hit_rate: self.cache_hit_rate(),
            semcache_hits: self.semcache_hits.get(),
            semcache_misses: self.semcache_misses.get(),
            semcache_fallbacks: self.semcache_fallbacks.get(),
            semcache_bytes: self.semcache_bytes.get(),
            failovers: self.failovers.get(),
            hedges_fired: self.hedges_fired.get(),
            hedges_won: self.hedges_won.get(),
            retried: self.retried.get(),
            slots_quarantined: self.slots_quarantined.get(),
            partial_results: self.partial_results.get(),
        }
    }

    /// Fraction of semantic-cache probes that replayed a score, in
    /// `[0, 1]`; zero when no eligible request ever probed.
    pub fn semcache_hit_rate(&self) -> f64 {
        let hits = self.semcache_hits.get();
        let total = hits + self.semcache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Serializable snapshot of [`ServeStats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeStatsSnapshot {
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Deepest the queue ever got.
    pub queue_depth_peak: u64,
    /// Requests accepted.
    pub submitted: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
    /// Requests rejected at admission by the per-tenant quota.
    pub quota_rejected: u64,
    /// Requests rejected at admission with an already-expired deadline.
    pub deadline_rejected: u64,
    /// Accepted requests later shed on a passed deadline.
    pub deadline_missed: u64,
    /// Requests cancelled by their caller.
    pub cancelled: u64,
    /// Batches admitted past a higher-priority waiter (starvation guard).
    pub priority_inversions: u64,
    /// Requests answered (selections and engine errors only).
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Distribution of requests per batch.
    pub batch_size: HistogramSummary,
    /// Distribution of tokens per batch.
    pub batch_tokens: HistogramSummary,
    /// Distribution of queue wait times (µs).
    pub queued_us: HistogramSummary,
    /// Distribution of execution times (µs).
    pub service_us: HistogramSummary,
    /// Selection replays served from the session cache.
    pub cache_selection_hits: u64,
    /// Embedding replays served from the session cache.
    pub cache_embed_hits: u64,
    /// Session-cache misses.
    pub cache_misses: u64,
    /// Hit fraction across all probes.
    pub cache_hit_rate: f64,
    /// Semantic-cache candidate replays (exact + similar tiers).
    pub semcache_hits: u64,
    /// Semantic-cache candidate probes that found nothing.
    pub semcache_misses: u64,
    /// Semantic-cache verification mismatches (poison + exact fallback).
    pub semcache_fallbacks: u64,
    /// Semantic-cache resident bytes right now.
    pub semcache_bytes: u64,
    /// Sub-batches failed over to a replica mid-request.
    pub failovers: u64,
    /// Tail-latency hedges fired.
    pub hedges_fired: u64,
    /// Hedges whose request completed successfully.
    pub hedges_won: u64,
    /// Backpressure retries absorbed by the retry policy.
    pub retried: u64,
    /// Spill slots quarantined and recomputed.
    pub slots_quarantined: u64,
    /// Requests answered with partial coverage.
    pub partial_results: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_both_hit_kinds() {
        let s = ServeStats::new();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_selection_hits.inc();
        s.cache_embed_hits.inc();
        s.cache_misses.inc_by(2);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn retry_hint_scales_with_depth_and_service_rate() {
        let s = ServeStats::new();
        // No observations yet: 1 ms per queued request.
        assert_eq!(
            s.retry_after_hint(4, 1),
            std::time::Duration::from_millis(4)
        );
        s.service_us.record(10_000);
        let one_worker = s.retry_after_hint(4, 1);
        let two_workers = s.retry_after_hint(4, 2);
        assert!(
            one_worker > two_workers,
            "{one_worker:?} vs {two_workers:?}"
        );
        assert!(one_worker >= std::time::Duration::from_millis(40));
    }

    #[test]
    fn lifecycle_counters_snapshot() {
        let s = ServeStats::new();
        s.cancelled.inc();
        s.deadline_rejected.inc_by(2);
        s.deadline_missed.inc();
        s.priority_inversions.inc();
        let snap = s.snapshot();
        assert_eq!(snap.cancelled, 1);
        assert_eq!(snap.deadline_rejected, 2);
        assert_eq!(snap.deadline_missed, 1);
        assert_eq!(snap.priority_inversions, 1);
    }

    #[test]
    fn snapshot_reflects_instruments() {
        let s = ServeStats::new();
        s.submitted.inc_by(3);
        s.queue_depth.set(2);
        s.batch_size.record(2);
        s.semcache_hits.inc_by(4);
        s.semcache_misses.inc_by(2);
        s.semcache_fallbacks.inc();
        s.semcache_bytes.set(512);
        s.failovers.inc_by(2);
        s.hedges_fired.inc();
        s.hedges_won.inc();
        s.retried.inc_by(5);
        s.slots_quarantined.inc_by(3);
        s.partial_results.inc();
        let snap = s.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.failovers, 2);
        assert_eq!(snap.hedges_fired, 1);
        assert_eq!(snap.hedges_won, 1);
        assert_eq!(snap.retried, 5);
        assert_eq!(snap.slots_quarantined, 3);
        assert_eq!(snap.partial_results, 1);
        assert_eq!(snap.batch_size.count, 1);
        assert_eq!(snap.semcache_hits, 4);
        assert_eq!(snap.semcache_misses, 2);
        assert_eq!(snap.semcache_fallbacks, 1);
        assert_eq!(snap.semcache_bytes, 512);
        assert!((s.semcache_hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        // Snapshot serializes (shim serde): smoke-check a field name.
        let json = serde_json::to_string(&snap);
        assert!(json.is_ok());
    }
}
