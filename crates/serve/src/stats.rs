//! Serving telemetry: queue, batch, latency and cache instruments.

use prism_metrics::{Counter, Gauge, Histogram, HistogramSummary};
use serde::Serialize;

/// Live instruments of one [`crate::PrismServer`]. Clones share state.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests currently queued (gauge with high-water mark).
    pub queue_depth: Gauge,
    /// Requests currently executing across all workers.
    pub in_flight: Gauge,
    /// Requests accepted into the queue.
    pub submitted: Counter,
    /// Requests rejected with backpressure.
    pub rejected: Counter,
    /// Requests answered (including errors).
    pub completed: Counter,
    /// Coalesced batches executed.
    pub batches: Counter,
    /// Requests per executed batch.
    pub batch_size: Histogram,
    /// Total packed tokens per executed batch.
    pub batch_tokens: Histogram,
    /// Microseconds a request spent queued.
    pub queued_us: Histogram,
    /// Microseconds of batch execution, recorded once per request.
    pub service_us: Histogram,
    /// Session-cache: full-selection replays.
    pub cache_selection_hits: Counter,
    /// Session-cache: embedding replays.
    pub cache_embed_hits: Counter,
    /// Session-cache: misses (including cache-disabled requests).
    pub cache_misses: Counter,
}

impl ServeStats {
    /// Creates zeroed instruments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of cache probes that hit (selection or embedding), in
    /// `[0, 1]`; zero when nothing was probed.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_selection_hits.get() + self.cache_embed_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// A serializable point-in-time snapshot.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        ServeStatsSnapshot {
            queue_depth: self.queue_depth.get(),
            queue_depth_peak: self.queue_depth.peak(),
            submitted: self.submitted.get(),
            rejected: self.rejected.get(),
            completed: self.completed.get(),
            batches: self.batches.get(),
            batch_size: self.batch_size.summary(),
            batch_tokens: self.batch_tokens.summary(),
            queued_us: self.queued_us.summary(),
            service_us: self.service_us.summary(),
            cache_selection_hits: self.cache_selection_hits.get(),
            cache_embed_hits: self.cache_embed_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_hit_rate: self.cache_hit_rate(),
        }
    }
}

/// Serializable snapshot of [`ServeStats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServeStatsSnapshot {
    /// Requests queued right now.
    pub queue_depth: u64,
    /// Deepest the queue ever got.
    pub queue_depth_peak: u64,
    /// Requests accepted.
    pub submitted: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
    /// Requests answered.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Distribution of requests per batch.
    pub batch_size: HistogramSummary,
    /// Distribution of tokens per batch.
    pub batch_tokens: HistogramSummary,
    /// Distribution of queue wait times (µs).
    pub queued_us: HistogramSummary,
    /// Distribution of execution times (µs).
    pub service_us: HistogramSummary,
    /// Selection replays served from the session cache.
    pub cache_selection_hits: u64,
    /// Embedding replays served from the session cache.
    pub cache_embed_hits: u64,
    /// Session-cache misses.
    pub cache_misses: u64,
    /// Hit fraction across all probes.
    pub cache_hit_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_counts_both_hit_kinds() {
        let s = ServeStats::new();
        assert_eq!(s.cache_hit_rate(), 0.0);
        s.cache_selection_hits.inc();
        s.cache_embed_hits.inc();
        s.cache_misses.inc_by(2);
        assert!((s.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_reflects_instruments() {
        let s = ServeStats::new();
        s.submitted.inc_by(3);
        s.queue_depth.set(2);
        s.batch_size.record(2);
        let snap = s.snapshot();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.batch_size.count, 1);
        // Snapshot serializes (shim serde): smoke-check a field name.
        let json = serde_json::to_string(&snap);
        assert!(json.is_ok());
    }
}
