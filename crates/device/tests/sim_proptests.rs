//! Property-based tests of the device simulators: monotonicity and
//! conservation laws that must hold for any request shape.

use prism_device::{
    simulate_hf, simulate_hf_offload, simulate_hf_quant, simulate_prism, BatchShape, DeviceSpec,
    PrismSimOptions, PruneSchedule,
};
use prism_model::ModelConfig;
use proptest::prelude::*;

fn any_shape() -> impl Strategy<Value = BatchShape> {
    (1_usize..64, 32_usize..512).prop_map(|(candidates, seq_len)| BatchShape {
        candidates,
        seq_len,
    })
}

fn any_model() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(ModelConfig::paper_catalog())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// More candidates never reduce baseline latency or peak memory.
    #[test]
    fn hf_monotone_in_candidates(cfg in any_model(), shape in any_shape()) {
        let rtx = DeviceSpec::rtx5070_laptop();
        let bigger = BatchShape { candidates: shape.candidates + 8, ..shape };
        let a = simulate_hf(&cfg, &rtx, shape);
        let b = simulate_hf(&cfg, &rtx, bigger);
        prop_assert!(b.latency_s >= a.latency_s * 0.999);
        prop_assert!(b.peak_bytes >= a.peak_bytes);
    }

    /// Outcome sanity: non-negative latency, avg <= peak, timeline matches.
    #[test]
    fn outcomes_are_consistent(cfg in any_model(), shape in any_shape()) {
        let rtx = DeviceSpec::rtx5070_laptop();
        let sched = PruneSchedule::no_pruning(cfg.num_layers, shape.candidates);
        for out in [
            simulate_hf(&cfg, &rtx, shape),
            simulate_hf_offload(&cfg, &rtx, shape),
            simulate_hf_quant(&cfg, &rtx, shape),
            simulate_prism(&cfg, &rtx, shape, &sched, PrismSimOptions::default()),
        ] {
            prop_assert!(out.latency_s.is_finite() && out.latency_s > 0.0);
            prop_assert!(out.avg_bytes <= out.peak_bytes);
            let curve_peak = out.timeline.iter().map(|&(_, b)| b).max().unwrap_or(0);
            prop_assert_eq!(curve_peak, out.peak_bytes);
            for w in out.timeline.windows(2) {
                prop_assert!(w[1].0 >= w[0].0, "timeline must be time-ordered");
            }
        }
    }

    /// Pruning more aggressively never increases PRISM latency.
    #[test]
    fn prism_latency_monotone_in_schedule(cfg in any_model(), shape in any_shape(), cut in 0_usize..28) {
        let rtx = DeviceSpec::rtx5070_laptop();
        let full = PruneSchedule::no_pruning(cfg.num_layers, shape.candidates);
        let cut_at = cut.min(cfg.num_layers);
        let pruned = PruneSchedule {
            active_per_layer: (0..cfg.num_layers)
                .map(|l| if l < cut_at { shape.candidates } else { 0 })
                .collect(),
        };
        let a = simulate_prism(&cfg, &rtx, shape, &full, PrismSimOptions::default());
        let b = simulate_prism(&cfg, &rtx, shape, &pruned, PrismSimOptions::default());
        prop_assert!(b.latency_s <= a.latency_s * 1.001);
    }

    /// The faster device is never slower for the same workload.
    #[test]
    fn device_ordering_preserved(cfg in any_model(), shape in any_shape()) {
        let m2 = simulate_hf(&cfg, &DeviceSpec::apple_m2(), shape);
        let a800 = simulate_hf(&cfg, &DeviceSpec::a800(), shape);
        prop_assert!(a800.latency_s <= m2.latency_s);
    }

    /// Quantization never increases PRISM peak memory.
    #[test]
    fn quant_never_increases_memory(cfg in any_model(), shape in any_shape()) {
        let rtx = DeviceSpec::rtx5070_laptop();
        let sched = PruneSchedule::no_pruning(cfg.num_layers, shape.candidates);
        let dense = simulate_prism(&cfg, &rtx, shape, &sched, PrismSimOptions::default());
        let quant = simulate_prism(
            &cfg,
            &rtx,
            shape,
            &sched,
            PrismSimOptions { quant: true, ..Default::default() },
        );
        prop_assert!(quant.peak_bytes <= dense.peak_bytes);
    }
}
