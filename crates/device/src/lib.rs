//! Edge-device cost models and the two-resource timeline simulator.
//!
//! The paper measures wall-clock latency and resident memory of real
//! checkpoints on an RTX 5070 Laptop GPU, an Apple M2 Mac Mini and (for
//! one out-of-memory curve) an NVIDIA A800. This crate reproduces those
//! measurements *analytically*: model configs supply exact FLOP and byte
//! counts, device specs supply calibrated throughput / bandwidth /
//! capacity, and per-system simulators ([`sim`]) walk the execution
//! schedule of each compared system — including the compute/I-O pipeline
//! overlap of PRISM's layer streaming — emitting latency, peak/average
//! memory, a memory-vs-time curve, and OOM verdicts.
//!
//! The simulators consume [`sim::PruneSchedule`]s recorded by the *real*
//! PRISM engine running mini-scale models, so simulated latency reflects
//! actual pruning behaviour rather than an assumed schedule (DESIGN.md §2).

pub mod cost;
pub mod sim;
pub mod spec;

pub use cost::{
    decode_time_s, prefill_time_s, ScatterGatherCost, SemCacheCostParams, ServeBatchCost,
    SpillCostParams,
};
pub use sim::{
    simulate_hf, simulate_hf_offload, simulate_hf_quant, simulate_prism, BatchShape,
    PrismSimOptions, PruneSchedule, SimOutcome,
};
pub use spec::DeviceSpec;
