//! Latency helpers for surrounding pipeline stages (LLM generation, VLM
//! inference) used by the real-world application experiments (§6.3).

use prism_model::ModelConfig;

use crate::DeviceSpec;

/// Seconds to prefill `prompt_tokens` of context through `cfg` on `device`
/// (compute-bound, full-batch utilization).
pub fn prefill_time_s(cfg: &ModelConfig, device: &DeviceSpec, prompt_tokens: u64) -> f64 {
    if prompt_tokens == 0 {
        return 0.0;
    }
    let per_layer = cfg.layer_macs(prompt_tokens, prompt_tokens.min(cfg.max_seq as u64));
    (0..cfg.num_layers)
        .map(|_| device.compute_time_s(per_layer, prompt_tokens, false))
        .sum()
}

/// Seconds to autoregressively decode `gen_tokens` tokens (memory-bound:
/// every step streams the full weight set through the memory hierarchy).
pub fn decode_time_s(cfg: &ModelConfig, device: &DeviceSpec, gen_tokens: u64) -> f64 {
    let bytes_per_step = cfg.total_weight_bytes() as f64;
    gen_tokens as f64 * bytes_per_step / device.mem_bandwidth
}

/// First-token latency of a generation call: prefill plus one decode step.
pub fn first_token_time_s(cfg: &ModelConfig, device: &DeviceSpec, prompt_tokens: u64) -> f64 {
    prefill_time_s(cfg, device, prompt_tokens) + decode_time_s(cfg, device, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_grows_with_prompt() {
        let cfg = ModelConfig::qwen3_0_6b();
        let d = DeviceSpec::rtx5070_laptop();
        // Below the utilization knee, longer prompts gain efficiency, so
        // growth is sublinear; above it, growth is at least linear.
        let short = prefill_time_s(&cfg, &d, 256);
        let long = prefill_time_s(&cfg, &d, 1024);
        assert!(long > short * 1.2, "short {short} long {long}");
        let saturated_a = prefill_time_s(&cfg, &d, 16_384);
        let saturated_b = prefill_time_s(&cfg, &d, 32_768);
        assert!(saturated_b > saturated_a * 1.9);
        assert_eq!(prefill_time_s(&cfg, &d, 0), 0.0);
    }

    #[test]
    fn decode_is_linear_in_tokens() {
        let cfg = ModelConfig::qwen3_4b();
        let d = DeviceSpec::a800();
        let ten = decode_time_s(&cfg, &d, 10);
        let hundred = decode_time_s(&cfg, &d, 100);
        assert!((hundred / ten - 10.0).abs() < 1e-9);
    }

    #[test]
    fn decode_slower_on_weaker_memory() {
        let cfg = ModelConfig::qwen3_0_6b();
        let m2 = decode_time_s(&cfg, &DeviceSpec::apple_m2(), 32);
        let a800 = decode_time_s(&cfg, &DeviceSpec::a800(), 32);
        assert!(m2 > a800 * 5.0);
    }

    #[test]
    fn first_token_dominated_by_prefill_for_long_prompts() {
        let cfg = ModelConfig::qwen3_0_6b();
        let d = DeviceSpec::apple_m2();
        let ftl = first_token_time_s(&cfg, &d, 4096);
        let prefill = prefill_time_s(&cfg, &d, 4096);
        assert!(ftl > prefill);
        assert!(ftl < prefill * 1.2);
    }
}
