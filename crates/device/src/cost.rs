//! Latency helpers for surrounding pipeline stages (LLM generation, VLM
//! inference) used by the real-world application experiments (§6.3), plus
//! the spill-byte terms of the §4.3 offload regime.

use prism_model::ModelConfig;
use prism_storage::SpillPrecision;

use crate::DeviceSpec;

/// Seconds to prefill `prompt_tokens` of context through `cfg` on `device`
/// (compute-bound, full-batch utilization).
pub fn prefill_time_s(cfg: &ModelConfig, device: &DeviceSpec, prompt_tokens: u64) -> f64 {
    if prompt_tokens == 0 {
        return 0.0;
    }
    let per_layer = cfg.layer_macs(prompt_tokens, prompt_tokens.min(cfg.max_seq as u64));
    (0..cfg.num_layers)
        .map(|_| device.compute_time_s(per_layer, prompt_tokens, false))
        .sum()
}

/// Seconds to autoregressively decode `gen_tokens` tokens (memory-bound:
/// every step streams the full weight set through the memory hierarchy).
pub fn decode_time_s(cfg: &ModelConfig, device: &DeviceSpec, gen_tokens: u64) -> f64 {
    let bytes_per_step = cfg.total_weight_bytes() as f64;
    gen_tokens as f64 * bytes_per_step / device.mem_bandwidth
}

/// First-token latency of a generation call: prefill plus one decode step.
pub fn first_token_time_s(cfg: &ModelConfig, device: &DeviceSpec, prompt_tokens: u64) -> f64 {
    prefill_time_s(cfg, device, prompt_tokens) + decode_time_s(cfg, device, 1)
}

/// Bytes one spilled chunk of `rows` hidden-state rows moves per
/// transformer layer under the §4.3 offload window: one fetch of the
/// previous layer's state plus one write-back of the new one, at
/// `precision`'s exact slot encoding (header and per-row quantization
/// metadata included).
pub fn spill_bytes_per_layer(cfg: &ModelConfig, precision: SpillPrecision, rows: usize) -> u64 {
    2 * precision.encoded_bytes(rows, cfg.hidden_dim) as u64
}

/// Seconds an offload-regime selection spends on spill traffic that is
/// *not* hidden behind computation.
///
/// `spilled_chunks` chunks of `rows_per_chunk` rows each cross the SSD
/// twice per executed layer; `overlap_efficiency` is the fraction of
/// that I/O the three-stage pipeline hides behind the compute window
/// (`0.0` = fully synchronous — the pre-pipeline engine; measured values
/// come from the engine trace's spill stats). Compression and overlap
/// compose: int8 quarters the byte term before the overlap discount.
pub fn offload_spill_time_s(
    cfg: &ModelConfig,
    device: &DeviceSpec,
    precision: SpillPrecision,
    spilled_chunks: usize,
    rows_per_chunk: usize,
    executed_layers: usize,
    overlap_efficiency: f64,
) -> f64 {
    if spilled_chunks == 0 {
        return 0.0;
    }
    let per_layer_bytes =
        spilled_chunks as u64 * spill_bytes_per_layer(cfg, precision, rows_per_chunk);
    // Each chunk pays two positioned I/O requests per layer (fetch +
    // write-back), i.e. `2 * spilled_chunks` fixed latencies in total:
    // `ssd_read_time_s` already charges one, the term below adds the
    // remaining `2n - 1`. Both directions are modeled at the SSD read
    // service time.
    let per_layer_s = device.ssd_read_time_s(per_layer_bytes)
        + (2 * spilled_chunks - 1) as f64 * device.ssd_latency;
    let raw = executed_layers as f64 * per_layer_s;
    raw * (1.0 - overlap_efficiency.clamp(0.0, 1.0))
}

/// Spill-regime parameters of a serving worker running batches through
/// the §4.3 offload window (used by [`ServeBatchCost`]).
#[derive(Debug, Clone, Copy)]
pub struct SpillCostParams {
    /// Slot encoding of spilled hidden-state rows.
    pub precision: SpillPrecision,
    /// Rows per execution chunk (the §4.3 chunk height).
    pub rows_per_chunk: usize,
    /// Fraction of spill I/O hidden behind compute by the three-stage
    /// pipeline (`0.0` = fully synchronous).
    pub overlap_efficiency: f64,
}

/// Semantic-cache regime of a serving worker: the fraction of packed
/// tokens whose scores replay from the cross-request cache instead of
/// running the forward pass, plus the per-request probe cost (pooling,
/// index lookup, replay bookkeeping). Used by [`ServeBatchCost`].
#[derive(Debug, Clone, Copy)]
pub struct SemCacheCostParams {
    /// Fraction of packed tokens served by replay in `[0, 1]`; only the
    /// remaining miss fraction pays the layer and spill terms.
    pub hit_fraction: f64,
    /// Seconds per request spent probing the cache (paid by hits and
    /// misses alike).
    pub probe_overhead_s: f64,
}

/// Analytic service-time model for one coalesced serving batch — the
/// worker model of the serving metasim (`prism-metasim`).
///
/// A batch of `tokens` packed tokens advances through every layer
/// monolithically; per layer the engine overlaps weight streaming with
/// compute (§4.2), so the layer takes the *maximum* of the two, and a
/// batch taller than the chunk height pays the unhidden spill traffic of
/// the §4.3 offload window ([`offload_spill_time_s`], including the
/// PR 5 spill-byte terms). Fixed per-batch and per-request overheads
/// absorb dispatch, planning, and reply costs; the `repro sim-validate`
/// harness *calibrates* them against the real engine, while
/// `prsm simulate-serve` uses device-spec defaults.
#[derive(Debug, Clone)]
pub struct ServeBatchCost {
    /// The served model.
    pub config: ModelConfig,
    /// The device executing batches.
    pub device: DeviceSpec,
    /// Container weight-streaming bandwidth in bytes/s (`None` =
    /// weights resident in accelerator memory; the serving benches
    /// throttle this to model cold-cache disks).
    pub stream_bandwidth: Option<f64>,
    /// Whether matmuls run on quantized kernels.
    pub quant: bool,
    /// Whether the forward pass runs the u8×i8 integer GEMM kernels
    /// (`RequestOptions::compute_precision = Int8`). Overrides `quant`
    /// for the compute term; off by default so the analytic model keeps
    /// matching the shipped `ServeConfig::tuned_for` constants.
    pub int8_compute: bool,
    /// Hidden-state spill regime, when the batch exceeds the in-memory
    /// chunk height.
    pub spill: Option<SpillCostParams>,
    /// Semantic result-cache regime (`RequestOptions::semcache != Off`):
    /// replayed tokens skip the layer and spill terms, every request
    /// pays the probe. `None` = cache disabled.
    pub semcache: Option<SemCacheCostParams>,
    /// Fixed per-batch overhead in seconds (dispatch, coalescing,
    /// scratch setup).
    pub batch_overhead_s: f64,
    /// Fixed per-request overhead in seconds (planning, scoring, reply).
    pub request_overhead_s: f64,
}

impl ServeBatchCost {
    /// A model with device-derived defaults: resident weights, dense
    /// kernels, no spill, and overheads at the device's SSD latency
    /// scale (one positioned I/O per batch, a tenth per request).
    pub fn new(config: ModelConfig, device: DeviceSpec) -> Self {
        let latency = device.ssd_latency;
        ServeBatchCost {
            config,
            device,
            stream_bandwidth: None,
            quant: false,
            int8_compute: false,
            spill: None,
            semcache: None,
            batch_overhead_s: latency,
            request_overhead_s: latency / 10.0,
        }
    }

    /// Seconds one transformer layer takes for `tokens` packed tokens at
    /// sequence length `seq`: the slower of compute and the pipelined
    /// weight stream (§4.2 overlap). The building block shared by the
    /// flat batch model and the scatter-gather model, which prices each
    /// shard's forward-map partition through it.
    pub fn per_layer_time_s(&self, tokens: u64, seq: u64) -> f64 {
        if tokens == 0 {
            return 0.0;
        }
        let layer_macs = self.config.layer_macs(tokens, seq);
        let per_layer_compute = if self.int8_compute {
            self.device.int8_compute_time_s(layer_macs, tokens)
        } else {
            self.device.compute_time_s(layer_macs, tokens, self.quant)
        };
        let per_layer_stream = self
            .stream_bandwidth
            .map(|bw| self.config.layer_bytes() as f64 / bw.max(1.0))
            .unwrap_or(0.0);
        per_layer_compute.max(per_layer_stream)
    }

    /// Seconds of unhidden spill traffic `tokens` packed tokens generate
    /// under this worker's spill regime (zero when nothing spills).
    pub fn spill_time_s(&self, tokens: u64) -> f64 {
        self.spill
            .map(|s| {
                let chunks = (tokens as usize).div_ceil(s.rows_per_chunk.max(1));
                // One chunk stays resident; the rest round-trip the SSD.
                offload_spill_time_s(
                    &self.config,
                    &self.device,
                    s.precision,
                    chunks.saturating_sub(1),
                    s.rows_per_chunk,
                    self.config.num_layers,
                    s.overlap_efficiency,
                )
            })
            .unwrap_or(0.0)
    }

    /// Tokens that still need the forward pass and the per-batch probe
    /// seconds under this worker's semantic-cache regime (identity when
    /// the cache is off). Shared by the flat and scatter-gather models.
    fn semcache_terms(&self, requests: usize, tokens: u64) -> (u64, f64) {
        match self.semcache {
            Some(s) => {
                let miss = 1.0 - s.hit_fraction.clamp(0.0, 1.0);
                let forward = (tokens as f64 * miss).round() as u64;
                (forward, requests as f64 * s.probe_overhead_s.max(0.0))
            }
            None => (tokens, 0.0),
        }
    }

    /// Seconds one coalesced batch of `requests` requests totalling
    /// `tokens` packed tokens occupies a worker.
    pub fn batch_time_s(&self, requests: usize, tokens: u64) -> f64 {
        if requests == 0 || tokens == 0 {
            return 0.0;
        }
        let seq = (tokens / requests as u64).max(1);
        let (forward_tokens, probe_s) = self.semcache_terms(requests, tokens);
        let layers_s = self.config.num_layers as f64 * self.per_layer_time_s(forward_tokens, seq);
        self.batch_overhead_s
            + requests as f64 * self.request_overhead_s
            + probe_s
            + layers_s
            + self.spill_time_s(forward_tokens)
    }

    /// [`Self::batch_time_s`] in whole microseconds (at least 1 for a
    /// non-empty batch — virtual time must advance).
    pub fn batch_micros(&self, requests: usize, tokens: u64) -> u64 {
        if requests == 0 {
            return 0;
        }
        ((self.batch_time_s(requests, tokens) * 1e6).round() as u64).max(1)
    }
}

/// Analytic cost of scatter-gather serving: a coordinator splits each
/// batch's candidates across `shards` engine shards by the flat
/// consistent-hash forward map (near-even partitions), the shards
/// forward their partition layer-by-layer in lockstep, and the
/// coordinator runs the global pruning gate and merge at every boundary.
///
/// Two deployments are priced:
///
/// * **`parallel_shards = true`** — one device per shard: a layer costs
///   as much as the *slowest* partition, so sharding shortens the
///   forward term toward `1/shards` (minus the coordinator's serial
///   gate).
/// * **`parallel_shards = false`** — shards colocated on one device
///   (the loopback deployment the conformance and bench suites run):
///   partitions serialize, so sharding is pure overhead and the honest
///   metric is [`ScatterGatherCost::overhead_ratio`], which the
///   `sharded` bench section gates.
#[derive(Debug, Clone)]
pub struct ScatterGatherCost {
    /// The per-shard worker model (compute, streaming, spill regime).
    pub worker: ServeBatchCost,
    /// Number of engine shards behind the forward map.
    pub shards: usize,
    /// `true` = one device per shard; `false` = colocated lockstep.
    pub parallel_shards: bool,
    /// Coordinator time per layer boundary (global gate: route, book,
    /// merge the shard score slices).
    pub gate_overhead_s: f64,
    /// Coordinator dispatch time per shard per layer (scatter control).
    pub dispatch_overhead_s: f64,
}

impl ScatterGatherCost {
    /// A colocated (loopback) scatter-gather model over `worker` with
    /// coordinator overheads at the device's positioned-I/O latency
    /// scale — a tenth per gate, a hundredth per shard dispatch.
    pub fn new(worker: ServeBatchCost, shards: usize) -> Self {
        let latency = worker.device.ssd_latency;
        ScatterGatherCost {
            worker,
            shards: shards.max(1),
            parallel_shards: false,
            gate_overhead_s: latency / 10.0,
            dispatch_overhead_s: latency / 100.0,
        }
    }

    /// The forward-map partition sizes for `tokens` packed tokens:
    /// `rem` shards carry one extra token-row.
    fn partitions(&self, tokens: u64) -> impl Iterator<Item = u64> {
        let shards = self.shards as u64;
        let base = tokens / shards;
        let rem = tokens % shards;
        (0..shards).map(move |i| if i < rem { base + 1 } else { base })
    }

    /// Seconds one coalesced batch of `requests` requests totalling
    /// `tokens` packed tokens occupies the sharded worker pool.
    pub fn batch_time_s(&self, requests: usize, tokens: u64) -> f64 {
        if requests == 0 || tokens == 0 {
            return 0.0;
        }
        let seq = (tokens / requests as u64).max(1);
        // The coordinator probes the semantic cache before scattering
        // (the server's all-or-nothing sharded path): replayed tokens
        // never reach the shards, so only the miss fraction partitions.
        let (forward_tokens, probe_s) = self.worker.semcache_terms(requests, tokens);
        let forward_per_layer = if self.parallel_shards {
            self.partitions(forward_tokens)
                .map(|t| self.worker.per_layer_time_s(t, seq))
                .fold(0.0, f64::max)
        } else {
            self.partitions(forward_tokens)
                .map(|t| self.worker.per_layer_time_s(t, seq))
                .sum()
        };
        let coord_per_layer = self.gate_overhead_s + self.shards as f64 * self.dispatch_overhead_s;
        let layers_s = self.worker.config.num_layers as f64 * (forward_per_layer + coord_per_layer);
        let spill_s = if self.parallel_shards {
            self.partitions(forward_tokens)
                .map(|t| self.worker.spill_time_s(t))
                .fold(0.0, f64::max)
        } else {
            self.partitions(forward_tokens)
                .map(|t| self.worker.spill_time_s(t))
                .sum()
        };
        self.worker.batch_overhead_s
            + requests as f64 * self.worker.request_overhead_s
            + probe_s
            + layers_s
            + spill_s
    }

    /// [`Self::batch_time_s`] in whole microseconds (at least 1 for a
    /// non-empty batch — virtual time must advance).
    pub fn batch_micros(&self, requests: usize, tokens: u64) -> u64 {
        if requests == 0 {
            return 0;
        }
        ((self.batch_time_s(requests, tokens) * 1e6).round() as u64).max(1)
    }

    /// Sharded time over unsharded time on the same worker model. The
    /// colocated deployment's honest figure of merit: `>= 1`, and the
    /// bench gate bounds how far above 1 the coordinator's per-layer
    /// serial work pushes it.
    pub fn overhead_ratio(&self, requests: usize, tokens: u64) -> f64 {
        let single = self.worker.batch_time_s(requests, tokens);
        if single == 0.0 {
            return 1.0;
        }
        self.batch_time_s(requests, tokens) / single
    }

    /// Unsharded time over sharded time — the figure of merit for the
    /// one-device-per-shard deployment.
    pub fn speedup(&self, requests: usize, tokens: u64) -> f64 {
        let sharded = self.batch_time_s(requests, tokens);
        if sharded == 0.0 {
            return 1.0;
        }
        self.worker.batch_time_s(requests, tokens) / sharded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefill_grows_with_prompt() {
        let cfg = ModelConfig::qwen3_0_6b();
        let d = DeviceSpec::rtx5070_laptop();
        // Below the utilization knee, longer prompts gain efficiency, so
        // growth is sublinear; above it, growth is at least linear.
        let short = prefill_time_s(&cfg, &d, 256);
        let long = prefill_time_s(&cfg, &d, 1024);
        assert!(long > short * 1.2, "short {short} long {long}");
        let saturated_a = prefill_time_s(&cfg, &d, 16_384);
        let saturated_b = prefill_time_s(&cfg, &d, 32_768);
        assert!(saturated_b > saturated_a * 1.9);
        assert_eq!(prefill_time_s(&cfg, &d, 0), 0.0);
    }

    #[test]
    fn decode_is_linear_in_tokens() {
        let cfg = ModelConfig::qwen3_4b();
        let d = DeviceSpec::a800();
        let ten = decode_time_s(&cfg, &d, 10);
        let hundred = decode_time_s(&cfg, &d, 100);
        assert!((hundred / ten - 10.0).abs() < 1e-9);
    }

    #[test]
    fn decode_slower_on_weaker_memory() {
        let cfg = ModelConfig::qwen3_0_6b();
        let m2 = decode_time_s(&cfg, &DeviceSpec::apple_m2(), 32);
        let a800 = decode_time_s(&cfg, &DeviceSpec::a800(), 32);
        assert!(m2 > a800 * 5.0);
    }

    #[test]
    fn spill_bytes_track_precision_and_shape() {
        let cfg = ModelConfig::qwen3_0_6b();
        let f32_bytes = spill_bytes_per_layer(&cfg, SpillPrecision::F32, 256);
        let int8_bytes = spill_bytes_per_layer(&cfg, SpillPrecision::Int8, 256);
        // ~4x compression at real hidden widths (per-row metadata is
        // amortized over >= 1024 columns).
        assert!(
            int8_bytes * 7 <= f32_bytes * 2,
            "{int8_bytes} vs {f32_bytes}"
        );
        assert!(
            spill_bytes_per_layer(&cfg, SpillPrecision::Int8, 512) > int8_bytes,
            "more rows must cost more bytes"
        );
    }

    #[test]
    fn offload_time_rewards_compression_and_overlap() {
        let cfg = ModelConfig::qwen3_0_6b();
        let d = DeviceSpec::apple_m2();
        let sync_f32 = offload_spill_time_s(&cfg, &d, SpillPrecision::F32, 8, 256, 28, 0.0);
        let sync_int8 = offload_spill_time_s(&cfg, &d, SpillPrecision::Int8, 8, 256, 28, 0.0);
        let overlapped = offload_spill_time_s(&cfg, &d, SpillPrecision::Int8, 8, 256, 28, 0.9);
        assert!(sync_int8 < sync_f32 / 2.0, "{sync_int8} vs {sync_f32}");
        assert!(overlapped < sync_int8 / 5.0, "{overlapped} vs {sync_int8}");
        // Perfect overlap hides everything; no spilled chunks cost nothing.
        assert_eq!(
            offload_spill_time_s(&cfg, &d, SpillPrecision::Int8, 8, 256, 28, 1.0),
            0.0
        );
        assert_eq!(
            offload_spill_time_s(&cfg, &d, SpillPrecision::F32, 0, 256, 28, 0.0),
            0.0
        );
    }

    #[test]
    fn serve_batch_cost_tracks_shape_and_regime() {
        let cfg = ModelConfig::test_config(prism_model::ModelArch::DecoderOnly, 12);
        let d = DeviceSpec::apple_m2();
        let base = ServeBatchCost::new(cfg.clone(), d.clone());
        // Empty batches are free; more tokens cost more.
        assert_eq!(base.batch_time_s(0, 0), 0.0);
        assert_eq!(base.batch_micros(0, 0), 0);
        let small = base.batch_time_s(1, 64);
        let large = base.batch_time_s(8, 2048);
        assert!(large > small, "{large} vs {small}");
        assert!(base.batch_micros(1, 64) >= 1);

        // A throttled weight stream dominates tiny-model compute.
        let streamed = ServeBatchCost {
            stream_bandwidth: Some(16.0 * 1024.0 * 1024.0),
            ..base.clone()
        };
        let floor = cfg.num_layers as f64 * cfg.layer_bytes() as f64 / (16.0 * 1024.0 * 1024.0);
        assert!(streamed.batch_time_s(1, 64) >= floor);
        assert!(streamed.batch_time_s(1, 64) > base.batch_time_s(1, 64));

        // Spilling a tall batch adds unhidden I/O; overlap hides it.
        let spilled = ServeBatchCost {
            spill: Some(SpillCostParams {
                precision: SpillPrecision::Int8,
                rows_per_chunk: 256,
                overlap_efficiency: 0.0,
            }),
            ..base.clone()
        };
        assert!(spilled.batch_time_s(8, 2048) > base.batch_time_s(8, 2048));
        let overlapped = ServeBatchCost {
            spill: Some(SpillCostParams {
                precision: SpillPrecision::Int8,
                rows_per_chunk: 256,
                overlap_efficiency: 1.0,
            }),
            ..base.clone()
        };
        assert_eq!(overlapped.batch_time_s(8, 2048), base.batch_time_s(8, 2048));
        // A batch within one chunk never spills.
        assert_eq!(spilled.batch_time_s(1, 128), base.batch_time_s(1, 128));
    }

    #[test]
    fn int8_compute_shrinks_batch_time_unless_streaming_bound() {
        let cfg = ModelConfig::test_config(prism_model::ModelArch::DecoderOnly, 12);
        let d = DeviceSpec::apple_m2();
        let base = ServeBatchCost::new(cfg.clone(), d.clone());
        let int8 = ServeBatchCost {
            int8_compute: true,
            ..base.clone()
        };
        // Compute-bound: the int8 kernels shave the per-layer term. The
        // fixed overheads dilute the full kernel factor, so just require
        // a strict improvement plus the exact layers-term ratio.
        let dense_s = base.batch_time_s(8, 2048);
        let int8_s = int8.batch_time_s(8, 2048);
        assert!(int8_s < dense_s, "int8 {int8_s} vs dense {dense_s}");
        let overhead = base.batch_overhead_s + 8.0 * base.request_overhead_s;
        let ratio = (dense_s - overhead) / (int8_s - overhead);
        assert!(
            (ratio - d.int8_kernel_factor).abs() < 1e-6,
            "layers-term ratio {ratio}"
        );
        // Streaming-bound: per-layer time is the stream term either way,
        // so int8 compute cannot help (the max() pipelining survives).
        let bw = Some(16.0 * 1024.0 * 1024.0);
        let streamed = ServeBatchCost {
            stream_bandwidth: bw,
            ..base.clone()
        };
        let streamed_int8 = ServeBatchCost {
            stream_bandwidth: bw,
            int8_compute: true,
            ..base
        };
        assert_eq!(
            streamed.batch_time_s(1, 64),
            streamed_int8.batch_time_s(1, 64)
        );
    }

    #[test]
    fn semcache_regime_discounts_replayed_tokens() {
        let cfg = ModelConfig::test_config(prism_model::ModelArch::DecoderOnly, 12);
        let d = DeviceSpec::apple_m2();
        let base = ServeBatchCost::new(cfg, d);
        let probe = base.device.ssd_latency / 20.0;
        let cached = |hit: f64| ServeBatchCost {
            semcache: Some(SemCacheCostParams {
                hit_fraction: hit,
                probe_overhead_s: probe,
            }),
            ..base.clone()
        };
        let plain = base.batch_time_s(8, 2048);
        // Probing with no hits is pure overhead; hits claw it back and
        // higher hit fractions monotonically shorten the batch.
        let cold = cached(0.0).batch_time_s(8, 2048);
        let half = cached(0.5).batch_time_s(8, 2048);
        let hot = cached(0.9).batch_time_s(8, 2048);
        assert!(cold > plain, "cold {cold} vs plain {plain}");
        assert!((cold - plain - 8.0 * probe).abs() < 1e-12);
        assert!(hot < half && half < cold, "{hot} {half} {cold}");
        assert!(half < plain, "half-hit batch must beat no cache");
        // A full-hit batch pays only overheads and probes: the layer
        // term vanishes.
        let full = cached(1.0).batch_time_s(8, 2048);
        let overheads = base.batch_overhead_s + 8.0 * base.request_overhead_s + 8.0 * probe;
        assert!((full - overheads).abs() < 1e-12, "full-hit {full}");
        // The sharded coordinator probes before scattering, so the same
        // discount reaches the scatter-gather model.
        let sg_plain = ScatterGatherCost::new(base.clone(), 3).batch_time_s(8, 2048);
        let sg_hot = ScatterGatherCost::new(cached(0.9), 3).batch_time_s(8, 2048);
        assert!(sg_hot < sg_plain, "{sg_hot} vs {sg_plain}");
    }

    #[test]
    fn scatter_gather_parallel_shards_cut_the_forward_term() {
        let cfg = ModelConfig::test_config(prism_model::ModelArch::DecoderOnly, 12);
        let d = DeviceSpec::apple_m2();
        let worker = ServeBatchCost::new(cfg, d);
        let single = worker.batch_time_s(8, 4096);
        let sharded = ScatterGatherCost {
            parallel_shards: true,
            ..ScatterGatherCost::new(worker, 4)
        };
        let t = sharded.batch_time_s(8, 4096);
        assert!(
            t < single,
            "parallel shards must shorten the batch: {t} vs {single}"
        );
        let speedup = sharded.speedup(8, 4096);
        // Bounded by the shard count (the coordinator's serial gate and
        // the utilization loss of smaller partitions eat into it).
        assert!(speedup > 1.0 && speedup <= 4.0 + 1e-9, "speedup {speedup}");
    }

    #[test]
    fn scatter_gather_colocated_is_bounded_overhead() {
        let cfg = ModelConfig::test_config(prism_model::ModelArch::DecoderOnly, 12);
        let d = DeviceSpec::apple_m2();
        let worker = ServeBatchCost::new(cfg, d);
        let two = ScatterGatherCost::new(worker.clone(), 2);
        let five = ScatterGatherCost::new(worker.clone(), 5);
        let r2 = two.overhead_ratio(8, 2048);
        let r5 = five.overhead_ratio(8, 2048);
        // Colocated sharding never speeds anything up...
        assert!(r2 >= 1.0 && r5 >= 1.0, "ratios {r2} {r5}");
        // ...more shards cost more coordination...
        assert!(r5 >= r2, "{r5} vs {r2}");
        // ...but the default coordinator overheads stay a bounded tax.
        assert!(r5 < 3.0, "colocated overhead blew up: {r5}");
        // One shard is the degenerate case: only the gate term remains.
        let one = ScatterGatherCost::new(worker.clone(), 1);
        let r1 = one.overhead_ratio(8, 2048);
        assert!(r1 >= 1.0 && r1 < r2, "{r1} vs {r2}");
        // Empty batches stay free and micros still advance when real.
        assert_eq!(two.batch_time_s(0, 0), 0.0);
        assert_eq!(two.batch_micros(0, 0), 0);
        assert!(two.batch_micros(1, 64) >= 1);
    }

    #[test]
    fn scatter_gather_spill_term_follows_the_deployment() {
        let cfg = ModelConfig::test_config(prism_model::ModelArch::DecoderOnly, 12);
        let d = DeviceSpec::apple_m2();
        let worker = ServeBatchCost {
            spill: Some(SpillCostParams {
                precision: SpillPrecision::Int8,
                rows_per_chunk: 64,
                overlap_efficiency: 0.0,
            }),
            ..ServeBatchCost::new(cfg, d)
        };
        // Splitting a tall batch across parallel shards shrinks each
        // shard's spilled overhang, so the spill term drops too.
        let parallel = ScatterGatherCost {
            parallel_shards: true,
            ..ScatterGatherCost::new(worker.clone(), 4)
        };
        let colocated = ScatterGatherCost::new(worker.clone(), 4);
        assert!(parallel.batch_time_s(8, 2048) < colocated.batch_time_s(8, 2048));
        // Colocated shards each spill their own partition; the summed
        // term stays within the single worker's spill cost plus the
        // per-shard chunk that each shard keeps resident.
        assert!(colocated.batch_time_s(8, 2048) > worker.batch_time_s(8, 2048) * 0.5);
    }

    #[test]
    fn first_token_dominated_by_prefill_for_long_prompts() {
        let cfg = ModelConfig::qwen3_0_6b();
        let d = DeviceSpec::apple_m2();
        let ftl = first_token_time_s(&cfg, &d, 4096);
        let prefill = prefill_time_s(&cfg, &d, 4096);
        assert!(ftl > prefill);
        assert!(ftl < prefill * 1.2);
    }
}
