//! Device specifications calibrated to the paper's platforms (§6.1).
//!
//! Effective throughputs are *fitted*, not datasheet numbers: they were
//! chosen so the vanilla-HF simulator lands near the paper's reported
//! absolute latencies (e.g. ~5.7 s for Qwen3-0.6B × 20 candidates × 512
//! tokens on the Mac Mini, Fig. 1), after which every other number in the
//! evaluation is *derived*. See `EXPERIMENTS.md` for the calibration table.

use serde::{Deserialize, Serialize};

/// A platform the paper evaluates on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Platform name.
    pub name: String,
    /// Whether CPU and accelerator share one memory pool (Apple silicon).
    pub unified_memory: bool,
    /// Effective dense matmul throughput in FLOP/s at full utilization.
    pub compute_flops: f64,
    /// Multiplier on matmul throughput for W4A16 kernels. Below 1.0:
    /// dequantization costs compute on prefill-bound workloads (§2.3).
    pub quant_kernel_factor: f64,
    /// Multiplier on matmul throughput for u8×i8 integer GEMM kernels
    /// with i32 accumulation. Above 1.0: int8 lanes double the
    /// per-instruction MAC width and halve operand traffic, which is
    /// what lets the offload regime skip the f32 decode round-trip.
    pub int8_kernel_factor: f64,
    /// Accelerator-visible memory capacity in bytes (VRAM, or the usable
    /// fraction of unified memory).
    pub mem_capacity: u64,
    /// Accelerator memory bandwidth in bytes/s (bounds decode and
    /// activation traffic).
    pub mem_bandwidth: f64,
    /// Sustained SSD read bandwidth in bytes/s.
    pub ssd_bandwidth: f64,
    /// Fixed per-I/O-request latency in seconds.
    pub ssd_latency: f64,
    /// Tokens at which matmul utilization reaches 50% (small batches
    /// underutilize wide accelerators — this drives the chunk-size lower
    /// bound of §4.3).
    pub half_saturation_tokens: f64,
    /// Baseline framework/runtime resident bytes (CUDA context, torch
    /// allocator pools, Python heap — present in every measured curve).
    pub framework_overhead: u64,
}

impl DeviceSpec {
    /// Matmul utilization for a given number of in-flight tokens,
    /// in `(0, 1]`.
    pub fn utilization(&self, tokens: u64) -> f64 {
        let t = tokens as f64;
        (t / (t + self.half_saturation_tokens)).max(1e-3)
    }

    /// Seconds to execute `macs` multiply-accumulates at `tokens`-level
    /// utilization with an optional quantized-kernel factor.
    pub fn compute_time_s(&self, macs: u64, tokens: u64, quant: bool) -> f64 {
        let flops = 2.0 * macs as f64;
        let mut throughput = self.compute_flops * self.utilization(tokens);
        if quant {
            throughput *= self.quant_kernel_factor;
        }
        flops / throughput
    }

    /// Seconds to execute `macs` multiply-accumulates on the u8×i8
    /// integer kernels at `tokens`-level utilization (the
    /// [`DeviceSpec::compute_time_s`] sibling for int8 forward compute).
    pub fn int8_compute_time_s(&self, macs: u64, tokens: u64) -> f64 {
        let flops = 2.0 * macs as f64;
        flops / (self.compute_flops * self.utilization(tokens) * self.int8_kernel_factor)
    }

    /// Seconds to read `bytes` from SSD (one request).
    pub fn ssd_read_time_s(&self, bytes: u64) -> f64 {
        self.ssd_latency + bytes as f64 / self.ssd_bandwidth
    }

    /// Capacity actually available to one inference process: nominal
    /// capacity minus allocator-fragmentation and runtime-reservation
    /// headroom (real frameworks OOM well before the nominal size).
    pub fn usable_capacity(&self) -> u64 {
        self.mem_capacity / 100 * 85
    }

    /// The NVIDIA evaluation laptop: RTX 5070 Laptop GPU (8 GiB), PCIe 4.0
    /// SSD.
    pub fn rtx5070_laptop() -> Self {
        DeviceSpec {
            name: "NVIDIA RTX 5070 Laptop".into(),
            unified_memory: false,
            compute_flops: 6.5e12,
            quant_kernel_factor: 0.85,
            int8_kernel_factor: 2.0,
            mem_capacity: 8 * (1 << 30),
            mem_bandwidth: 384.0e9,
            ssd_bandwidth: 5.0e9,
            ssd_latency: 100e-6,
            half_saturation_tokens: 320.0,
            framework_overhead: 100 << 20,
        }
    }

    /// The Apple evaluation machine: Mac Mini M2, 16 GiB unified memory.
    pub fn apple_m2() -> Self {
        DeviceSpec {
            name: "Apple M2 Mac Mini".into(),
            unified_memory: true,
            compute_flops: 1.45e12,
            quant_kernel_factor: 0.80,
            int8_kernel_factor: 1.8,
            // Accelerator budget of the 16 GiB unified pool after the OS
            // and resident apps take their share.
            mem_capacity: 8 * (1 << 30),
            mem_bandwidth: 100.0e9,
            ssd_bandwidth: 3.0e9,
            ssd_latency: 120e-6,
            half_saturation_tokens: 96.0,
            framework_overhead: 110 << 20,
        }
    }

    /// The server GPU used only to measure the Fig. 9 HF curves that OOM
    /// on the laptop.
    pub fn a800() -> Self {
        DeviceSpec {
            name: "NVIDIA A800".into(),
            unified_memory: false,
            compute_flops: 120.0e12,
            quant_kernel_factor: 0.9,
            int8_kernel_factor: 2.0,
            mem_capacity: 80 * (1 << 30),
            mem_bandwidth: 2.0e12,
            ssd_bandwidth: 6.0e9,
            ssd_latency: 80e-6,
            half_saturation_tokens: 8192.0,
            framework_overhead: 300 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_monotone_and_bounded() {
        let d = DeviceSpec::rtx5070_laptop();
        assert!(d.utilization(100) < d.utilization(1000));
        assert!(d.utilization(1000) < d.utilization(100_000));
        assert!(d.utilization(1 << 30) <= 1.0);
        assert!(d.utilization(0) > 0.0);
        // Half saturation point by definition.
        let half = d.utilization(d.half_saturation_tokens as u64);
        assert!((half - 0.5).abs() < 1e-6);
    }

    #[test]
    fn compute_time_scales_inversely_with_utilization() {
        let d = DeviceSpec::rtx5070_laptop();
        let macs = 1_000_000_000;
        let small = d.compute_time_s(macs, 64, false);
        let large = d.compute_time_s(macs, 1 << 20, false);
        assert!(small > large * 2.0, "small-batch must be much slower");
    }

    #[test]
    fn quant_kernel_slower_on_prefill() {
        let d = DeviceSpec::apple_m2();
        let dense = d.compute_time_s(1 << 30, 10_000, false);
        let quant = d.compute_time_s(1 << 30, 10_000, true);
        assert!(quant > dense);
    }

    #[test]
    fn int8_kernels_beat_dense_on_every_platform() {
        for d in [
            DeviceSpec::rtx5070_laptop(),
            DeviceSpec::apple_m2(),
            DeviceSpec::a800(),
        ] {
            let dense = d.compute_time_s(1 << 30, 10_000, false);
            let int8 = d.int8_compute_time_s(1 << 30, 10_000);
            assert!(
                int8 * 1.5 < dense,
                "{}: int8 {int8} vs dense {dense}",
                d.name
            );
            // Exactly the kernel-factor ratio: same utilization curve.
            assert!((dense / int8 - d.int8_kernel_factor).abs() < 1e-9);
        }
    }

    #[test]
    fn ssd_time_includes_latency_floor() {
        let d = DeviceSpec::rtx5070_laptop();
        assert!(d.ssd_read_time_s(0) >= 100e-6);
        let one_gb = d.ssd_read_time_s(1 << 30);
        assert!((one_gb - (100e-6 + (1u64 << 30) as f64 / 5.0e9)).abs() < 1e-9);
    }

    #[test]
    fn platform_ordering_sane() {
        let m2 = DeviceSpec::apple_m2();
        let rtx = DeviceSpec::rtx5070_laptop();
        let a800 = DeviceSpec::a800();
        assert!(m2.compute_flops < rtx.compute_flops);
        assert!(rtx.compute_flops < a800.compute_flops);
        assert!(rtx.mem_capacity < a800.mem_capacity);
        assert!(m2.unified_memory && !rtx.unified_memory);
    }

    #[test]
    fn calibration_hits_fig1_mac_mini_latency() {
        // Fig. 1: Qwen3-0.6B, 20 candidates, seq 512, Mac Mini -> 5754 ms.
        use prism_model::ModelConfig;
        let cfg = ModelConfig::qwen3_0_6b();
        let d = DeviceSpec::apple_m2();
        let tokens = 20 * 512_u64;
        let per_layer = cfg.layer_macs(tokens, 512);
        let total_s: f64 = (0..cfg.num_layers)
            .map(|_| d.compute_time_s(per_layer, tokens, false))
            .sum();
        assert!(
            (4.5..7.5).contains(&total_s),
            "Mac Mini 0.6B full forward {total_s:.2}s should be near the paper's 5.75s"
        );
    }
}
