//! Per-system execution simulators.
//!
//! Each simulator walks the execution schedule of one compared system at
//! paper scale and emits a [`SimOutcome`]: latency, peak / time-averaged
//! memory, a memory-vs-time curve and an OOM verdict. The PRISM simulator
//! models the §4.2 compute/I-O pipeline explicitly (two weight buffers,
//! prefetch of layer *i+1* during compute of layer *i*) and consumes a
//! [`PruneSchedule`] recorded from the real engine so pruned compute
//! matches actual pruning behaviour.

use prism_model::layer::intermediate_bytes;
use prism_model::ModelConfig;
use serde::Serialize;

use crate::DeviceSpec;

/// Fraction of raw SSD bandwidth a synchronous, framework-driven offload
/// path achieves (HF Accelerate: blocking reads on the forward path,
/// per-module host→device copies). PRISM's dedicated async I/O process
/// saturates the disk instead — that gap is one of the paper's motivations.
pub const SYNC_OFFLOAD_EFFICIENCY: f64 = 0.2;

/// Shape of one rerank request at paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BatchShape {
    /// Number of query–candidate pairs.
    pub candidates: usize,
    /// Tokens per pair (query + document).
    pub seq_len: usize,
}

impl BatchShape {
    /// Total packed tokens.
    pub fn total_tokens(&self) -> u64 {
        (self.candidates * self.seq_len) as u64
    }
}

/// Active-candidate counts per layer, recorded from the real engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PruneSchedule {
    /// `active[l]` = candidates entering layer `l`; `0` after early
    /// termination.
    pub active_per_layer: Vec<usize>,
}

impl PruneSchedule {
    /// A schedule with no pruning at all (baselines, ablations).
    pub fn no_pruning(num_layers: usize, candidates: usize) -> Self {
        PruneSchedule {
            active_per_layer: vec![candidates; num_layers],
        }
    }

    /// Validates monotonicity (active counts never grow).
    pub fn is_monotone(&self) -> bool {
        self.active_per_layer.windows(2).all(|w| w[1] <= w[0])
    }

    /// Fraction of layer-token work executed relative to no pruning.
    pub fn work_fraction(&self, candidates: usize) -> f64 {
        if self.active_per_layer.is_empty() || candidates == 0 {
            return 1.0;
        }
        let done: usize = self.active_per_layer.iter().sum();
        done as f64 / (candidates * self.active_per_layer.len()) as f64
    }
}

/// Result of simulating one system on one request.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimOutcome {
    /// End-to-end reranking latency in seconds.
    pub latency_s: f64,
    /// Peak resident bytes.
    pub peak_bytes: u64,
    /// Time-averaged resident bytes.
    pub avg_bytes: u64,
    /// Whether the peak exceeds the device's memory capacity.
    pub oom: bool,
    /// `(seconds, resident bytes)` curve, step-wise.
    pub timeline: Vec<(f64, u64)>,
}

/// Builds outcome statistics from a set of `(time, delta_bytes)` events.
struct TimelineBuilder {
    events: Vec<(f64, i64)>,
}

impl TimelineBuilder {
    fn new() -> Self {
        TimelineBuilder { events: Vec::new() }
    }

    fn hold(&mut self, from_s: f64, to_s: f64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.events.push((from_s.max(0.0), bytes as i64));
        self.events.push((to_s.max(from_s), -(bytes as i64)));
    }

    /// Allocation held from `from_s` to the end of the run.
    fn hold_until_end(&mut self, from_s: f64, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.events.push((from_s.max(0.0), bytes as i64));
    }

    fn finish(mut self, end_s: f64, capacity: u64) -> SimOutcome {
        self.events
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut timeline: Vec<(f64, u64)> = Vec::with_capacity(self.events.len() + 1);
        let mut cur: i64 = 0;
        let mut peak: i64 = 0;
        let mut integral = 0.0_f64;
        let mut last_t = 0.0_f64;
        timeline.push((0.0, 0));
        for (t, delta) in self.events {
            integral += cur as f64 * (t - last_t).max(0.0);
            last_t = t;
            cur += delta;
            peak = peak.max(cur);
            timeline.push((t, cur.max(0) as u64));
        }
        integral += cur as f64 * (end_s - last_t).max(0.0);
        let avg = if end_s > 0.0 {
            (integral / end_s) as u64
        } else {
            cur.max(0) as u64
        };
        SimOutcome {
            latency_s: end_s,
            peak_bytes: peak.max(0) as u64,
            avg_bytes: avg,
            oom: peak.max(0) as u64 > capacity,
            timeline,
        }
    }
}

/// Picks the vanilla baseline's micro-batch: the largest split whose
/// transient tensors stay within ~1.5% of device memory — the
/// "balance computation and memory" rule of the paper's footnote 1.
/// (The paper's measured HF peaks imply single-digit-candidate forward
/// batches for the cross-encoder predict loop.)
pub fn default_micro_batch(cfg: &ModelConfig, device: &DeviceSpec, batch: BatchShape) -> usize {
    let budget = device.mem_capacity / 64;
    let mut mb = batch.candidates.max(1);
    while mb > 1 {
        let tokens = mb * batch.seq_len;
        if intermediate_bytes(cfg, tokens, batch.seq_len) <= budget {
            break;
        }
        mb -= 1;
    }
    mb
}

/// Simulates vanilla HuggingFace Transformers: all weights resident, batch
/// split into micro-batches, no pruning.
pub fn simulate_hf(cfg: &ModelConfig, device: &DeviceSpec, batch: BatchShape) -> SimOutcome {
    let micro_batch = default_micro_batch(cfg, device, batch);
    let mut tl = TimelineBuilder::new();
    tl.hold_until_end(0.0, device.framework_overhead);

    // Model load: one streaming read of the full checkpoint.
    let weights = cfg.total_weight_bytes();
    let t_loaded = device.ssd_read_time_s(weights);
    tl.hold_until_end(t_loaded, weights);

    let mut t = t_loaded;
    let n_mb = batch.candidates.div_ceil(micro_batch);
    for mb_idx in 0..n_mb {
        let cands = micro_batch.min(batch.candidates - mb_idx * micro_batch);
        let tokens = (cands * batch.seq_len) as u64;
        let hidden = tokens * cfg.hidden_dim as u64 * cfg.activation_dtype_bytes as u64;
        let inter = intermediate_bytes(cfg, tokens as usize, batch.seq_len);
        let mb_start = t;
        for _l in 0..cfg.num_layers {
            t += device.compute_time_s(cfg.layer_macs(tokens, batch.seq_len as u64), tokens, false);
        }
        tl.hold(mb_start, t, hidden + inter);
    }
    tl.finish(t, device.usable_capacity())
}

/// Simulates HF + Accelerate disk offload: embedding and head stay
/// resident; every transformer layer is synchronously loaded right before
/// each forward over each micro-batch (no overlap, framework-limited
/// bandwidth).
pub fn simulate_hf_offload(
    cfg: &ModelConfig,
    device: &DeviceSpec,
    batch: BatchShape,
) -> SimOutcome {
    // Offloading amortizes layer loads by running the whole candidate set
    // per forward pass (Accelerate loads each layer once per forward);
    // users trade transient-tensor memory for fewer reloads.
    let micro_batch = batch.candidates.max(1);
    let mut tl = TimelineBuilder::new();
    tl.hold_until_end(0.0, device.framework_overhead);

    // Embedding + head resident from t=0 (Accelerate keeps non-offloaded
    // modules in memory).
    let resident = cfg.embedding_bytes() + cfg.head_params() * cfg.weight_dtype_bytes as u64;
    let t_resident = device.ssd_read_time_s(resident);
    tl.hold_until_end(t_resident, resident);

    let layer_bytes = cfg.layer_bytes();
    let eff_bw_time = |bytes: u64| -> f64 {
        device.ssd_latency + bytes as f64 / (device.ssd_bandwidth * SYNC_OFFLOAD_EFFICIENCY)
    };

    let mut t = t_resident;
    let n_mb = batch.candidates.div_ceil(micro_batch);
    for mb_idx in 0..n_mb {
        let cands = micro_batch.min(batch.candidates - mb_idx * micro_batch);
        let tokens = (cands * batch.seq_len) as u64;
        let hidden = tokens * cfg.hidden_dim as u64 * cfg.activation_dtype_bytes as u64;
        let inter = intermediate_bytes(cfg, tokens as usize, batch.seq_len);
        let mb_start = t;
        for _l in 0..cfg.num_layers {
            // Synchronous load, then compute; one layer resident at a time.
            let load = eff_bw_time(layer_bytes);
            let compute =
                device.compute_time_s(cfg.layer_macs(tokens, batch.seq_len as u64), tokens, false);
            tl.hold(t, t + load + compute, layer_bytes);
            t += load + compute;
        }
        tl.hold(mb_start, t, hidden + inter);
    }
    tl.finish(t, device.usable_capacity())
}

/// Simulates the W4A16 post-training-quantization baseline (`HF Quant`):
/// layer weights quantized to 4-bit and resident, embedding and head kept
/// in the checkpoint dtype, compute paying the dequantization penalty on
/// this prefill-bound workload (§2.3).
pub fn simulate_hf_quant(cfg: &ModelConfig, device: &DeviceSpec, batch: BatchShape) -> SimOutcome {
    let micro_batch = default_micro_batch(cfg, device, batch);
    let mut tl = TimelineBuilder::new();
    tl.hold_until_end(0.0, device.framework_overhead);

    let weights = cfg.layer_bytes_q4() * cfg.num_layers as u64
        + cfg.embedding_bytes()
        + cfg.head_params() * cfg.weight_dtype_bytes as u64;
    let t_loaded = device.ssd_read_time_s(weights);
    tl.hold_until_end(t_loaded, weights);

    let mut t = t_loaded;
    let n_mb = batch.candidates.div_ceil(micro_batch);
    for mb_idx in 0..n_mb {
        let cands = micro_batch.min(batch.candidates - mb_idx * micro_batch);
        let tokens = (cands * batch.seq_len) as u64;
        let hidden = tokens * cfg.hidden_dim as u64 * cfg.activation_dtype_bytes as u64;
        let inter = intermediate_bytes(cfg, tokens as usize, batch.seq_len);
        let mb_start = t;
        for _l in 0..cfg.num_layers {
            t += device.compute_time_s(cfg.layer_macs(tokens, batch.seq_len as u64), tokens, true);
        }
        tl.hold(mb_start, t, hidden + inter);
    }
    tl.finish(t, device.usable_capacity())
}

/// Configuration of the PRISM simulator (mirrors the engine's ablation
/// flags).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PrismSimOptions {
    /// Stream layers from SSD with double buffering (§4.2); when `false`
    /// all weights are loaded up front and stay resident.
    pub streaming: bool,
    /// Execute in chunks (§4.3). `None` picks the utilization-derived
    /// chunk size; `Some(c)` forces `c` candidates per chunk.
    pub chunked: Option<Option<usize>>,
    /// Embedding-cache fraction of the vocabulary (§4.4); `None` keeps the
    /// whole table resident.
    pub embed_cache_fraction: Option<f64>,
    /// Offload hidden states of non-active chunks to disk (§4.3 extreme
    /// memory mode).
    pub hidden_offload: bool,
    /// Use W4A16 quantized layers (PRISM Quant).
    pub quant: bool,
    /// Per-layer-boundary pruning-gate overhead in seconds (scoring +
    /// CV + occasional CPU K-Means; the paper reports ~1 ms).
    pub gate_overhead_s: f64,
}

impl Default for PrismSimOptions {
    fn default() -> Self {
        PrismSimOptions {
            streaming: true,
            chunked: Some(None),
            embed_cache_fraction: Some(0.10),
            hidden_offload: false,
            quant: false,
            gate_overhead_s: 1.0e-3,
        }
    }
}

/// Chunk size (in candidates) that keeps utilization high: targets three
/// half-saturation constants worth of tokens per chunk.
pub fn auto_chunk_candidates(device: &DeviceSpec, seq_len: usize) -> usize {
    // tokens = 8x half-saturation puts utilization at ~89%, the knee the
    // paper's "lower bound" on chunk size corresponds to.
    let target_tokens = (device.half_saturation_tokens * 8.0) as usize;
    target_tokens.div_ceil(seq_len).max(1)
}

/// Simulates PRISM's monolithic forwarding with the given technique
/// options and a pruning schedule recorded from the real engine.
pub fn simulate_prism(
    cfg: &ModelConfig,
    device: &DeviceSpec,
    batch: BatchShape,
    schedule: &PruneSchedule,
    opts: PrismSimOptions,
) -> SimOutcome {
    let mut tl = TimelineBuilder::new();
    tl.hold_until_end(0.0, device.framework_overhead);

    let act = cfg.activation_dtype_bytes as u64;
    let d = cfg.hidden_dim as u64;
    let layer_bytes = if opts.quant {
        cfg.layer_bytes_q4()
    } else {
        cfg.layer_bytes()
    };

    // --- Embedding phase ---
    let head_bytes = cfg.head_params() * cfg.weight_dtype_bytes as u64;
    let (embed_resident, embed_time) = match opts.embed_cache_fraction {
        Some(frac) => {
            let cache_rows = (cfg.vocab_size as f64 * frac) as u64;
            let cache_bytes = cache_rows * d * cfg.weight_dtype_bytes as u64;
            // Unique tokens of the request fault in on first touch; the
            // Zipf-skewed stream hits for the rest (paper: ≤6.75% of vocab
            // touched, high hit rates at 10% capacity).
            let unique = (batch.total_tokens() / 2).min(cfg.vocab_size as u64 / 8);
            let miss_rows = (unique as f64 * 0.5) as u64;
            let t = device.ssd_read_time_s(miss_rows * d * cfg.weight_dtype_bytes as u64);
            (cache_bytes, t)
        }
        None => {
            let full = cfg.embedding_bytes();
            (full, device.ssd_read_time_s(full))
        }
    };
    tl.hold_until_end(0.0, embed_resident + head_bytes);

    let hidden_full = |active: usize| -> u64 { (active * batch.seq_len) as u64 * d * act };

    // --- Chunk geometry ---
    let chunk_cands = match opts.chunked {
        None => batch.candidates.max(1), // Unchunked: the whole monolith.
        Some(None) => auto_chunk_candidates(device, batch.seq_len).min(batch.candidates.max(1)),
        Some(Some(c)) => c.clamp(1, batch.candidates.max(1)),
    };
    let chunk_tokens = (chunk_cands * batch.seq_len) as u64;

    // --- Weight residency ---
    let mut t_start_layers = embed_time;
    if opts.streaming {
        // Two streaming buffers live for the whole layer loop.
        tl.hold_until_end(0.0, 2 * layer_bytes);
    } else {
        let all_layers = layer_bytes * cfg.num_layers as u64;
        let t_loaded = device.ssd_read_time_s(all_layers);
        tl.hold_until_end(t_loaded, all_layers);
        t_start_layers = t_start_layers.max(t_loaded);
    }

    // --- Layer pipeline ---
    // compute_free: when the compute stream can take the next layer;
    // io_done[l]: when layer l's weights are in its buffer.
    let io_time = |bytes: u64| device.ssd_read_time_s(bytes);
    let mut compute_free = t_start_layers;
    let mut prev_compute_done = t_start_layers; // buffer-release times
    let mut io_free = 0.0_f64;
    let mut io_done_next = if opts.streaming {
        let t = io_free + io_time(layer_bytes);
        io_free = t;
        t
    } else {
        0.0
    };

    let mut executed_layers = 0usize;
    for l in 0..cfg.num_layers {
        let active = schedule.active_per_layer.get(l).copied().unwrap_or(0);
        if active == 0 {
            break;
        }
        executed_layers += 1;
        let this_io_done = io_done_next;
        // Schedule prefetch of layer l+1: needs the l-1 buffer free and the
        // I/O stream idle.
        if opts.streaming && l + 1 < cfg.num_layers {
            let start = io_free.max(prev_compute_done);
            io_done_next = start + io_time(layer_bytes);
            io_free = io_done_next;
        }

        // Chunked compute over active candidates.
        let n_chunks = active.div_ceil(chunk_cands);
        let mut compute_s = 0.0;
        for c in 0..n_chunks {
            let cands = chunk_cands.min(active - c * chunk_cands);
            let toks = (cands * batch.seq_len) as u64;
            compute_s +=
                device.compute_time_s(cfg.layer_macs(toks, batch.seq_len as u64), toks, opts.quant);
        }
        compute_s += opts.gate_overhead_s;

        let start = compute_free.max(if opts.streaming {
            this_io_done
        } else {
            t_start_layers
        });
        let end = start + compute_s;

        // Transient tensors for one chunk live during this layer.
        let inter = intermediate_bytes(
            cfg,
            chunk_tokens.min((active * batch.seq_len) as u64) as usize,
            batch.seq_len,
        );
        tl.hold(start, end, inter);

        // Hidden states of all active candidates (or 3 chunks if offloaded).
        let hidden = if opts.hidden_offload {
            3 * hidden_full(chunk_cands.min(active))
        } else {
            hidden_full(active)
        };
        tl.hold(start, end, hidden);
        // Hidden-state offload traffic must also fit under the compute
        // window; if it does not, the pipeline stalls.
        if opts.hidden_offload {
            let spill_io = 2.0 * io_time(hidden_full(chunk_cands.min(active)));
            if spill_io > compute_s {
                compute_free = end + (spill_io - compute_s);
            } else {
                compute_free = end;
            }
        } else {
            compute_free = end;
        }
        prev_compute_done = end;
    }

    // Final top-K assembly: negligible, one head pass over survivors.
    let t_end = compute_free
        + device.compute_time_s(cfg.head_macs(batch.candidates as u64), chunk_tokens, false);
    let _ = executed_layers;
    tl.finish(t_end, device.usable_capacity())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch20() -> BatchShape {
        BatchShape {
            candidates: 20,
            seq_len: 500,
        }
    }

    /// A representative mid-depth pruning schedule: full batch until layer
    /// 9, then ~60% drop, trickle down, early-terminate at 60% depth.
    fn typical_schedule(layers: usize, candidates: usize) -> PruneSchedule {
        let mut active = Vec::with_capacity(layers);
        for l in 0..layers {
            let frac = l as f64 / layers as f64;
            let a = if frac < 0.33 {
                candidates
            } else if frac < 0.45 {
                (candidates as f64 * 0.5) as usize
            } else if frac < 0.6 {
                (candidates as f64 * 0.2) as usize
            } else {
                0
            };
            active.push(a);
        }
        PruneSchedule {
            active_per_layer: active,
        }
    }

    #[test]
    fn hf_oom_for_large_models_on_laptop() {
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        // Paper Table 3: Qwen3-4B and 8B OOM under vanilla HF on both
        // platforms; 0.6B fits.
        assert!(!simulate_hf(&ModelConfig::qwen3_0_6b(), &rtx, b).oom);
        assert!(simulate_hf(&ModelConfig::qwen3_4b(), &rtx, b).oom);
        assert!(simulate_hf(&ModelConfig::qwen3_8b(), &rtx, b).oom);
        // And the A800 runs 8B fine (Fig. 9's dashed curves).
        assert!(!simulate_hf(&ModelConfig::qwen3_8b(), &DeviceSpec::a800(), b).oom);
    }

    #[test]
    fn prism_fits_everything_on_laptop() {
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        for cfg in prism_model::ModelConfig::paper_catalog() {
            let sched = typical_schedule(cfg.num_layers, b.candidates);
            let out = simulate_prism(&cfg, &rtx, b, &sched, PrismSimOptions::default());
            assert!(!out.oom, "{} should fit with PRISM", cfg.name);
        }
    }

    #[test]
    fn overlap_window_exists_at_paper_scale() {
        // §3.2: per-layer compute exceeds per-layer I/O on both platforms.
        let b = batch20();
        for device in [DeviceSpec::rtx5070_laptop(), DeviceSpec::apple_m2()] {
            let cfg = ModelConfig::qwen3_0_6b();
            let tokens = b.total_tokens();
            let compute = device.compute_time_s(cfg.layer_macs(tokens, 500), tokens, false);
            let io = device.ssd_read_time_s(cfg.layer_bytes());
            assert!(
                compute > io,
                "{}: compute {compute:.4}s must exceed io {io:.4}s",
                device.name
            );
        }
    }

    #[test]
    fn streaming_memory_far_below_resident() {
        let cfg = ModelConfig::qwen3_0_6b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let sched = PruneSchedule::no_pruning(cfg.num_layers, b.candidates);
        let hf = simulate_hf(&cfg, &rtx, b);
        let prism = simulate_prism(&cfg, &rtx, b, &sched, PrismSimOptions::default());
        // Fig. 9: 5.34x peak reduction for 0.6B. Accept the right ballpark.
        let ratio = hf.peak_bytes as f64 / prism.peak_bytes as f64;
        assert!((3.0..9.0).contains(&ratio), "peak ratio {ratio:.2}");
    }

    #[test]
    fn streaming_costs_no_latency_when_overlapped() {
        let cfg = ModelConfig::qwen3_0_6b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let sched = PruneSchedule::no_pruning(cfg.num_layers, b.candidates);
        let mut resident = PrismSimOptions {
            streaming: false,
            gate_overhead_s: 0.0,
            ..Default::default()
        };
        resident.embed_cache_fraction = None;
        let mut streamed = PrismSimOptions {
            streaming: true,
            gate_overhead_s: 0.0,
            ..Default::default()
        };
        streamed.embed_cache_fraction = None;
        let r = simulate_prism(&cfg, &rtx, b, &sched, resident);
        let s = simulate_prism(&cfg, &rtx, b, &sched, streamed);
        // §4.2: no latency penalty (the resident variant pays a big
        // up-front load, so streaming should actually be no slower).
        assert!(
            s.latency_s <= r.latency_s * 1.02,
            "streamed {} resident {}",
            s.latency_s,
            r.latency_s
        );
    }

    #[test]
    fn pruning_reduces_latency_substantially() {
        let cfg = ModelConfig::qwen3_0_6b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let none = PruneSchedule::no_pruning(cfg.num_layers, b.candidates);
        let typical = typical_schedule(cfg.num_layers, b.candidates);
        assert!(typical.is_monotone());
        let full = simulate_prism(&cfg, &rtx, b, &none, PrismSimOptions::default());
        let pruned = simulate_prism(&cfg, &rtx, b, &typical, PrismSimOptions::default());
        let reduction = 1.0 - pruned.latency_s / full.latency_s;
        // Work fraction of the schedule is ~42%; latency should drop
        // by a third or more.
        assert!(reduction > 0.3, "latency reduction {reduction:.2}");
    }

    #[test]
    fn hf_offload_much_slower_than_hf() {
        let cfg = ModelConfig::bge_m3();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let hf = simulate_hf(&cfg, &rtx, b);
        let off = simulate_hf_offload(&cfg, &rtx, b);
        // Fig. 8 BGE-M3: HF is ~0.3-0.5x of HF Offload.
        let ratio = hf.latency_s / off.latency_s;
        assert!((0.2..0.8).contains(&ratio), "HF/Offload ratio {ratio:.2}");
        // But offload uses far less memory (Fig. 9: ~2x less for BGE-M3,
        // whose huge multilingual embedding stays resident either way).
        assert!((off.peak_bytes as f64) < hf.peak_bytes as f64 * 0.65);
    }

    #[test]
    fn hf_quant_fits_8b_where_hf_ooms() {
        // Fig. 8: HF OOMs on Qwen3-8B while HF Quant runs (1.45x bar).
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let cfg = ModelConfig::qwen3_8b();
        assert!(simulate_hf(&cfg, &rtx, b).oom);
        let q = simulate_hf_quant(&cfg, &rtx, b);
        assert!(!q.oom, "quantized 8B must fit in 8 GiB");
        // And quant is slower than dense HF on the 0.6B that fits (the
        // paper's dequant-penalty observation).
        let small = ModelConfig::qwen3_0_6b();
        let hf = simulate_hf(&small, &rtx, b);
        let hfq = simulate_hf_quant(&small, &rtx, b);
        assert!(hfq.latency_s > hf.latency_s * 0.95);
        assert!(hfq.peak_bytes < hf.peak_bytes);
    }

    #[test]
    fn quant_shrinks_prism_io_and_memory() {
        let cfg = ModelConfig::qwen3_4b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let sched = typical_schedule(cfg.num_layers, b.candidates);
        let dense = simulate_prism(&cfg, &rtx, b, &sched, PrismSimOptions::default());
        let quant = simulate_prism(
            &cfg,
            &rtx,
            b,
            &sched,
            PrismSimOptions {
                quant: true,
                ..Default::default()
            },
        );
        assert!(quant.peak_bytes < dense.peak_bytes);
        // Quant kernels are slightly slower on this compute-bound workload.
        assert!(quant.latency_s > dense.latency_s * 0.9);
    }

    #[test]
    fn chunking_bounds_intermediates() {
        let cfg = ModelConfig::qwen3_0_6b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = BatchShape {
            candidates: 60,
            seq_len: 500,
        };
        let sched = PruneSchedule::no_pruning(cfg.num_layers, 60);
        let unchunked = simulate_prism(
            &cfg,
            &rtx,
            b,
            &sched,
            PrismSimOptions {
                chunked: None,
                ..Default::default()
            },
        );
        let chunked = simulate_prism(&cfg, &rtx, b, &sched, PrismSimOptions::default());
        // Fig. 16: chunked execution strips most of the monolithic
        // intermediate-tensor overhead.
        assert!(chunked.peak_bytes < unchunked.peak_bytes);
        // At the cost of at most a few percent latency (utilization).
        assert!(chunked.latency_s < unchunked.latency_s * 1.15);
    }

    #[test]
    fn hidden_offload_caps_hidden_growth() {
        let cfg = ModelConfig::qwen3_0_6b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let big = BatchShape {
            candidates: 512,
            seq_len: 500,
        };
        let sched = PruneSchedule::no_pruning(cfg.num_layers, 512);
        let keep = simulate_prism(&cfg, &rtx, big, &sched, PrismSimOptions::default());
        let spill = simulate_prism(
            &cfg,
            &rtx,
            big,
            &sched,
            PrismSimOptions {
                hidden_offload: true,
                ..Default::default()
            },
        );
        assert!(spill.peak_bytes < keep.peak_bytes);
    }

    #[test]
    fn embed_cache_shrinks_footprint() {
        let cfg = ModelConfig::qwen3_0_6b();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let sched = typical_schedule(cfg.num_layers, b.candidates);
        let cached = simulate_prism(&cfg, &rtx, b, &sched, PrismSimOptions::default());
        let full = simulate_prism(
            &cfg,
            &rtx,
            b,
            &sched,
            PrismSimOptions {
                embed_cache_fraction: None,
                ..Default::default()
            },
        );
        // §4.4: the full table is ~296 MB; a 10% cache cuts ~266 MB.
        let saved = full.peak_bytes.saturating_sub(cached.peak_bytes);
        assert!(saved > 200 << 20, "saved {} MiB", saved >> 20);
    }

    #[test]
    fn timeline_is_consistent() {
        let cfg = ModelConfig::bge_minicpm();
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = batch20();
        let sched = typical_schedule(cfg.num_layers, b.candidates);
        let out = simulate_prism(&cfg, &rtx, b, &sched, PrismSimOptions::default());
        assert!(!out.timeline.is_empty());
        // Monotone time, peak matches curve maximum, avg <= peak.
        for w in out.timeline.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        let curve_peak = out.timeline.iter().map(|&(_, b)| b).max().unwrap();
        assert_eq!(curve_peak, out.peak_bytes);
        assert!(out.avg_bytes <= out.peak_bytes);
        assert!(out.latency_s >= out.timeline.last().unwrap().0 - 1e-9);
    }

    #[test]
    fn schedule_helpers() {
        let s = PruneSchedule::no_pruning(4, 10);
        assert!(s.is_monotone());
        assert_eq!(s.work_fraction(10), 1.0);
        let p = PruneSchedule {
            active_per_layer: vec![10, 10, 5, 0],
        };
        assert!(p.is_monotone());
        assert!((p.work_fraction(10) - 0.625).abs() < 1e-9);
        let bad = PruneSchedule {
            active_per_layer: vec![5, 10],
        };
        assert!(!bad.is_monotone());
        assert_eq!(
            PruneSchedule {
                active_per_layer: vec![]
            }
            .work_fraction(5),
            1.0
        );
    }

    #[test]
    fn micro_batch_shrinks_for_big_models() {
        let rtx = DeviceSpec::rtx5070_laptop();
        let b = BatchShape {
            candidates: 60,
            seq_len: 500,
        };
        let small = default_micro_batch(&ModelConfig::qwen3_0_6b(), &rtx, b);
        let large = default_micro_batch(&ModelConfig::qwen3_8b(), &rtx, b);
        assert!(large <= small);
        assert!(small >= 1 && large >= 1);
    }
}
