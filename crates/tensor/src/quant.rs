//! Block-wise 4-bit weight quantization (the W4A16 analogue).
//!
//! The paper's `HF Quant` and `PRISM Quant` baselines quantize model weights
//! to 4 bits with GPTQ while keeping activations in 16-bit floats. We
//! reproduce the storage/compute trade-off with asymmetric per-block
//! min/scale quantization: each block of [`BLOCK`] consecutive weights in a
//! row stores a 4-byte `min`, a 4-byte `scale` and [`BLOCK`]`/2` packed
//! nibbles, i.e. 4.5 bits per weight at the default block size — the same
//! ballpark as GPTQ-4bit checkpoints.

use crate::{ops, Result, Tensor, TensorError};

/// Number of weights per quantization block.
pub const BLOCK: usize = 32;

/// A 4-bit block-quantized matrix of shape `rows x cols`.
///
/// Rows are quantized independently so a row (one output feature of a weight
/// matrix) can be dequantized in isolation during tiled matmuls.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    blocks_per_row: usize,
    /// `min` of each block, `rows * blocks_per_row` entries.
    mins: Vec<f32>,
    /// `scale` of each block (max-min)/15, same length as `mins`.
    scales: Vec<f32>,
    /// Packed nibbles, two weights per byte, row-major, padded per row.
    packed: Vec<u8>,
}

impl QuantMatrix {
    /// Quantizes a dense matrix.
    ///
    /// Returns [`TensorError::Quantization`] when the input is empty; any
    /// column count is accepted (the last block of a row may be partial).
    pub fn quantize(t: &Tensor) -> Result<Self> {
        if t.is_empty() {
            return Err(TensorError::Quantization {
                reason: "cannot quantize an empty tensor".to_string(),
            });
        }
        let (rows, cols) = t.shape();
        let blocks_per_row = cols.div_ceil(BLOCK);
        let mut mins = Vec::with_capacity(rows * blocks_per_row);
        let mut scales = Vec::with_capacity(rows * blocks_per_row);
        let bytes_per_row = blocks_per_row * BLOCK / 2;
        let mut packed = vec![0_u8; rows * bytes_per_row];
        for r in 0..rows {
            let row = t.row(r)?;
            for b in 0..blocks_per_row {
                let start = b * BLOCK;
                let end = (start + BLOCK).min(cols);
                let chunk = &row[start..end];
                let lo = chunk.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let scale = if hi > lo { (hi - lo) / 15.0 } else { 0.0 };
                mins.push(lo);
                scales.push(scale);
                for (i, &x) in chunk.iter().enumerate() {
                    let q = if scale > 0.0 {
                        ((x - lo) / scale).round().clamp(0.0, 15.0) as u8
                    } else {
                        0
                    };
                    let byte = r * bytes_per_row + (start + i) / 2;
                    if (start + i).is_multiple_of(2) {
                        packed[byte] |= q;
                    } else {
                        packed[byte] |= q << 4;
                    }
                }
            }
        }
        Ok(QuantMatrix {
            rows,
            cols,
            blocks_per_row,
            mins,
            scales,
            packed,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage footprint in bytes (packed nibbles + block metadata).
    pub fn size_bytes(&self) -> usize {
        self.packed.len() + (self.mins.len() + self.scales.len()) * std::mem::size_of::<f32>()
    }

    /// Dequantizes a single row into `out` (must have length `cols`).
    pub fn dequantize_row(&self, r: usize, out: &mut [f32]) -> Result<()> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        if out.len() != self.cols {
            return Err(TensorError::DataLength {
                expected: self.cols,
                got: out.len(),
            });
        }
        let bytes_per_row = self.blocks_per_row * BLOCK / 2;
        for (c, o) in out.iter_mut().enumerate() {
            let block = r * self.blocks_per_row + c / BLOCK;
            let byte = self.packed[r * bytes_per_row + c / 2];
            let q = if c % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            *o = self.mins[block] + self.scales[block] * f32::from(q);
        }
        Ok(())
    }

    /// Dequantizes the whole matrix.
    pub fn dequantize(&self) -> Result<Tensor> {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let cols = self.cols;
            let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
            self.dequantize_row_slice(r, row);
        }
        Ok(out)
    }

    fn dequantize_row_slice(&self, r: usize, out: &mut [f32]) {
        let bytes_per_row = self.blocks_per_row * BLOCK / 2;
        for (c, o) in out.iter_mut().enumerate() {
            let block = r * self.blocks_per_row + c / BLOCK;
            let byte = self.packed[r * bytes_per_row + c / 2];
            let q = if c % 2 == 0 { byte & 0x0F } else { byte >> 4 };
            *o = self.mins[block] + self.scales[block] * f32::from(q);
        }
    }

    /// Computes `A * Self^T` where `Self` is an `n x k` quantized weight
    /// matrix stored output-major (like checkpoint weight tensors).
    ///
    /// See [`QuantMatrix::matmul_transb_into`]; this variant allocates the
    /// output tensor.
    pub fn matmul_transb(&self, a: &Tensor) -> Result<Tensor> {
        let mut out = Tensor::zeros(0, 0);
        self.matmul_transb_into(a, &mut out)?;
        Ok(out)
    }

    /// Fused nibble-decode matmul: `out = A * Self^T` without ever
    /// materializing a dequantized row.
    ///
    /// Weights are decoded straight from packed nibbles into the tiled
    /// GEMM driver's stack-resident `KC x NB` panel — each nibble is
    /// decoded once per row-parallel worker pass (once total below the
    /// threading threshold) and the live dequantized working set stays at
    /// the fixed panel size, which is what keeps W4A16 memory-lean at
    /// inference time. Accumulation order matches the dense kernel, so
    /// results equal `dequantize()` + dense matmul bit-for-bit.
    pub fn matmul_transb_into(&self, a: &Tensor, out: &mut Tensor) -> Result<()> {
        if a.cols() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matmul_transb",
                lhs: a.shape(),
                rhs: (self.rows, self.cols),
            });
        }
        let m = a.rows();
        let n = self.rows;
        out.resize(m, n);
        if m == 0 || n == 0 {
            return Ok(());
        }
        let bytes_per_row = self.blocks_per_row * BLOCK / 2;
        let pack =
            |p0: usize, kc: usize, j0: usize, jn: usize, panel: &mut [f32; ops::KC * ops::NB]| {
                for j in 0..jn {
                    let row = j0 + j;
                    let row_block = row * self.blocks_per_row;
                    let row_bytes = &self.packed[row * bytes_per_row..(row + 1) * bytes_per_row];
                    for p in 0..kc {
                        let c = p0 + p;
                        let block = row_block + c / BLOCK;
                        let byte = row_bytes[c / 2];
                        let q = if c.is_multiple_of(2) {
                            byte & 0x0F
                        } else {
                            byte >> 4
                        };
                        panel[p * ops::NB + j] =
                            self.mins[block] + self.scales[block] * f32::from(q);
                    }
                }
            };
        ops::gemm_parallel(a.data(), out.data_mut(), m, self.cols, n, &pack);
        Ok(())
    }

    /// Worst-case absolute reconstruction error bound: `scale / 2` per block,
    /// maximized over blocks.
    pub fn max_quantization_error(&self) -> f32 {
        self.scales.iter().cloned().fold(0.0_f32, f32::max) / 2.0
    }

    /// Serializes into a self-describing little-endian byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.mins.len() * 8 + self.packed.len());
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.cols as u64).to_le_bytes());
        for &m in &self.mins {
            out.extend_from_slice(&m.to_le_bytes());
        }
        for &s in &self.scales {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&self.packed);
        out
    }

    /// Deserializes a blob produced by [`QuantMatrix::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let fail = |reason: &str| TensorError::Quantization {
            reason: reason.to_string(),
        };
        if bytes.len() < 16 {
            return Err(fail("blob too short for header"));
        }
        let rows = u64::from_le_bytes(bytes[0..8].try_into().expect("slice of 8")) as usize;
        let cols = u64::from_le_bytes(bytes[8..16].try_into().expect("slice of 8")) as usize;
        if rows == 0 || cols == 0 {
            return Err(fail("zero dimension"));
        }
        let blocks_per_row = cols.div_ceil(BLOCK);
        let n_blocks = rows * blocks_per_row;
        let packed_len = rows * blocks_per_row * BLOCK / 2;
        let expected = 16 + n_blocks * 8 + packed_len;
        if bytes.len() != expected {
            return Err(fail(&format!(
                "blob length {} != expected {expected}",
                bytes.len()
            )));
        }
        let mut mins = Vec::with_capacity(n_blocks);
        let mut scales = Vec::with_capacity(n_blocks);
        let mut off = 16;
        for _ in 0..n_blocks {
            mins.push(f32::from_le_bytes(
                bytes[off..off + 4].try_into().expect("4"),
            ));
            off += 4;
        }
        for _ in 0..n_blocks {
            scales.push(f32::from_le_bytes(
                bytes[off..off + 4].try_into().expect("4"),
            ));
            off += 4;
        }
        let packed = bytes[off..].to_vec();
        Ok(QuantMatrix {
            rows,
            cols,
            blocks_per_row,
            mins,
            scales,
            packed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Tensor {
        Tensor::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin() * 2.0)
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let t = ramp(4, 70);
        let q = QuantMatrix::quantize(&t).unwrap();
        let d = q.dequantize().unwrap();
        let bound = q.max_quantization_error() + 1e-6;
        assert!(t.max_abs_diff(&d).unwrap() <= bound);
    }

    #[test]
    fn constant_block_is_exact() {
        let t = Tensor::full(2, BLOCK, 3.25);
        let q = QuantMatrix::quantize(&t).unwrap();
        let d = q.dequantize().unwrap();
        assert!(t.max_abs_diff(&d).unwrap() < 1e-7);
        assert_eq!(q.max_quantization_error(), 0.0);
    }

    #[test]
    fn partial_last_block() {
        let t = ramp(3, BLOCK + 5);
        let q = QuantMatrix::quantize(&t).unwrap();
        assert_eq!(q.cols(), BLOCK + 5);
        let d = q.dequantize().unwrap();
        assert!(t.max_abs_diff(&d).unwrap() <= q.max_quantization_error() + 1e-6);
    }

    #[test]
    fn empty_rejected() {
        assert!(QuantMatrix::quantize(&Tensor::zeros(0, 4)).is_err());
    }

    #[test]
    fn storage_is_roughly_4_5_bits_per_weight() {
        let t = ramp(64, 256);
        let q = QuantMatrix::quantize(&t).unwrap();
        let bits_per_weight = q.size_bytes() as f64 * 8.0 / (64.0 * 256.0);
        assert!(bits_per_weight < 6.5, "got {bits_per_weight}");
        assert!(bits_per_weight >= 4.0);
        // And 5x+ smaller than f32.
        assert!(q.size_bytes() * 5 <= t.size_bytes());
    }

    #[test]
    fn quant_matmul_close_to_dense() {
        let w = ramp(8, 64);
        let a = Tensor::from_fn(3, 64, |r, c| ((r + c) as f32 * 0.1).cos());
        let q = QuantMatrix::quantize(&w).unwrap();
        let dense = ops::matmul_transb(&a, &w).unwrap();
        let quant = q.matmul_transb(&a).unwrap();
        // Error per output <= k * max_err * max|a|.
        let tol = 64.0 * q.max_quantization_error() * 1.0 + 1e-4;
        assert!(dense.max_abs_diff(&quant).unwrap() <= tol);
    }

    #[test]
    fn quant_matmul_shape_check() {
        let w = ramp(8, 64);
        let q = QuantMatrix::quantize(&w).unwrap();
        let a = Tensor::zeros(3, 63);
        assert!(q.matmul_transb(&a).is_err());
    }

    #[test]
    fn serialization_round_trip() {
        let t = ramp(5, 70);
        let q = QuantMatrix::quantize(&t).unwrap();
        let bytes = q.to_bytes();
        let back = QuantMatrix::from_bytes(&bytes).unwrap();
        assert_eq!(q, back);
        assert!(QuantMatrix::from_bytes(&bytes[..10]).is_err());
        assert!(QuantMatrix::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut zero = bytes.clone();
        zero[0..8].copy_from_slice(&0_u64.to_le_bytes());
        assert!(QuantMatrix::from_bytes(&zero).is_err());
    }

    #[test]
    fn dequantize_row_accessors() {
        let t = ramp(2, 40);
        let q = QuantMatrix::quantize(&t).unwrap();
        let mut buf = vec![0.0; 40];
        q.dequantize_row(1, &mut buf).unwrap();
        let full = q.dequantize().unwrap();
        assert_eq!(buf.as_slice(), full.row(1).unwrap());
        assert!(q.dequantize_row(2, &mut buf).is_err());
        let mut short = vec![0.0; 39];
        assert!(q.dequantize_row(0, &mut short).is_err());
    }
}
