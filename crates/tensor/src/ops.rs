//! Shape-checked kernels: matmul, softmax, normalization, activations.
//!
//! Kernels accept and return [`Tensor`]s; anything shape-dependent is
//! validated up front and reported through [`TensorError`]. Matrix products
//! switch to row-parallel execution above a FLOP threshold using scoped
//! threads, which is the only concurrency in this crate.

use crate::{Result, Tensor, TensorError};

/// Work threshold (in multiply-accumulate ops) above which matmul kernels
/// fan out across threads. Tuned so mini-model layers stay single-threaded
/// (they are cache-resident and tiny) while monolithic batches parallelize.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

fn num_threads_for(work: usize) -> usize {
    if work < PAR_FLOP_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Computes `A * B` for `A: m x k`, `B: k x n`.
///
/// # Examples
///
/// ```
/// use prism_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Tensor::from_vec(2, 1, vec![1.0, 1.0]).unwrap();
/// let c = ops::matmul(&a, &b).unwrap();
/// assert_eq!(c.data(), &[3.0, 7.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let threads = num_threads_for(m * k * n);
    let bd = b.data();
    let ad = a.data();
    if threads <= 1 || m < 2 {
        matmul_rows(ad, bd, out.data_mut(), 0, m, k, n);
    } else {
        let chunk = m.div_ceil(threads);
        let out_slices = out.data_mut().chunks_mut(chunk * n);
        std::thread::scope(|scope| {
            for (idx, out_chunk) in out_slices.enumerate() {
                let start = idx * chunk;
                let rows = out_chunk.len() / n;
                scope.spawn(move || {
                    matmul_rows(
                        &ad[start * k..(start + rows) * k],
                        bd,
                        out_chunk,
                        0,
                        rows,
                        k,
                        n,
                    );
                });
            }
        });
    }
    Ok(out)
}

fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    for r in r0..r1 {
        let arow = &a[r * k..(r + 1) * k];
        let orow = &mut out[r * n..(r + 1) * n];
        for (ki, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[ki * n..(ki + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Computes `A * B^T` for `A: m x k`, `B: n x k` without materializing `B^T`.
///
/// This is the kernel used for attention logits (`Q * K^T`) and for weight
/// matrices stored output-major in checkpoint files.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let threads = num_threads_for(m * k * n);
    let ad = a.data();
    let bd = b.data();
    if threads <= 1 || m < 2 {
        matmul_transb_rows(ad, bd, out.data_mut(), m, k, n);
    } else {
        let chunk = m.div_ceil(threads);
        std::thread::scope(|scope| {
            for (idx, out_chunk) in out.data_mut().chunks_mut(chunk * n).enumerate() {
                let start = idx * chunk;
                let rows = out_chunk.len() / n;
                scope.spawn(move || {
                    matmul_transb_rows(
                        &ad[start * k..(start + rows) * k],
                        bd,
                        out_chunk,
                        rows,
                        k,
                        n,
                    );
                });
            }
        });
    }
    Ok(out)
}

fn matmul_transb_rows(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for r in 0..m {
        let arow = &a[r * k..(r + 1) * k];
        for c in 0..n {
            let brow = &b[c * k..(c + 1) * k];
            let mut acc = 0.0_f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[r * n + c] = acc;
        }
    }
}

/// Adds `b` to `a` element-wise in place.
pub fn add_inplace(a: &mut Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add_inplace",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += y;
    }
    Ok(())
}

/// Adds `alpha * b` to `a` in place (the residual update used by model blocks).
pub fn axpy_inplace(a: &mut Tensor, alpha: f32, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "axpy_inplace",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += alpha * y;
    }
    Ok(())
}

/// Scales every element of `a` by `s` in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    for x in a.data_mut() {
        *x *= s;
    }
}

/// Adds a bias row vector to every row of `a` in place.
pub fn add_bias_inplace(a: &mut Tensor, bias: &[f32]) -> Result<()> {
    if bias.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_inplace",
            lhs: a.shape(),
            rhs: (1, bias.len()),
        });
    }
    let cols = a.cols();
    for row in a.data_mut().chunks_mut(cols) {
        for (x, b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
    Ok(())
}

/// Row-wise numerically-stable softmax in place.
pub fn softmax_rows_inplace(a: &mut Tensor) -> Result<()> {
    if a.cols() == 0 {
        return Err(TensorError::Empty { op: "softmax_rows" });
    }
    let cols = a.cols();
    for row in a.data_mut().chunks_mut(cols) {
        softmax_slice(row);
    }
    Ok(())
}

/// Row-wise causal softmax: row `r` may only attend to columns `0..=r`.
///
/// Used by decoder-only rerankers; `a` must be square per sequence, i.e. the
/// caller passes the per-sequence logits block.
pub fn causal_softmax_inplace(a: &mut Tensor) -> Result<()> {
    if a.rows() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "causal_softmax",
            lhs: a.shape(),
            rhs: (a.cols(), a.rows()),
        });
    }
    let cols = a.cols();
    for (r, row) in a.data_mut().chunks_mut(cols).enumerate() {
        for v in row.iter_mut().skip(r + 1) {
            *v = f32::NEG_INFINITY;
        }
        softmax_slice(row);
    }
    Ok(())
}

fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Row-wise RMS normalization with learned gain, in place.
///
/// `x <- x / sqrt(mean(x^2) + eps) * gain` — the normalization used by the
/// decoder-only (Qwen-style) rerankers.
pub fn rms_norm_inplace(a: &mut Tensor, gain: &[f32], eps: f32) -> Result<()> {
    if gain.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "rms_norm",
            lhs: a.shape(),
            rhs: (1, gain.len()),
        });
    }
    let cols = a.cols();
    for row in a.data_mut().chunks_mut(cols) {
        let ms = row.iter().map(|x| x * x).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (x, g) in row.iter_mut().zip(gain) {
            *x = *x * inv * g;
        }
    }
    Ok(())
}

/// Row-wise layer normalization with learned gain and bias, in place.
///
/// The normalization used by the encoder-only (BERT-style) rerankers.
pub fn layer_norm_inplace(a: &mut Tensor, gain: &[f32], bias: &[f32], eps: f32) -> Result<()> {
    if gain.len() != a.cols() || bias.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "layer_norm",
            lhs: a.shape(),
            rhs: (1, gain.len()),
        });
    }
    let cols = a.cols();
    for row in a.data_mut().chunks_mut(cols) {
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for ((x, g), b) in row.iter_mut().zip(gain).zip(bias) {
            *x = (*x - mean) * inv * g + b;
        }
    }
    Ok(())
}

/// SiLU (swish) activation in place: `x * sigmoid(x)`.
pub fn silu_inplace(a: &mut Tensor) {
    for x in a.data_mut() {
        *x = *x / (1.0 + (-*x).exp());
    }
}

/// Tanh-approximated GELU activation in place.
pub fn gelu_inplace(a: &mut Tensor) {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for x in a.data_mut() {
        let x3 = *x * *x * *x;
        *x = 0.5 * *x * (1.0 + (C * (*x + 0.044_715 * x3)).tanh());
    }
}

/// Element-wise product in place (`a <- a ⊙ b`), used by gated FFNs.
pub fn hadamard_inplace(a: &mut Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "hadamard",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x *= y;
    }
    Ok(())
}

/// Mean over rows, producing a single row (`1 x cols`).
pub fn mean_rows(a: &Tensor) -> Result<Tensor> {
    if a.rows() == 0 {
        return Err(TensorError::Empty { op: "mean_rows" });
    }
    let mut out = Tensor::zeros(1, a.cols());
    let cols = a.cols();
    for row in a.data().chunks(cols) {
        for (o, &x) in out.data_mut().iter_mut().zip(row) {
            *o += x;
        }
    }
    let inv = 1.0 / a.rows() as f32;
    scale_inplace(&mut out, inv);
    Ok(out)
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            lhs: (1, a.len()),
            rhs: (1, b.len()),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, v).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = t(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = t(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, (0..12).map(|x| x as f32 * 0.5).collect());
        let via_t = matmul(&a, &b.transpose()).unwrap();
        let direct = matmul_transb(&a, &b).unwrap();
        assert!(via_t.max_abs_diff(&direct).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(3, 3, (0..9).map(|x| x as f32).collect());
        let id = Tensor::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &id).unwrap(), a);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Exceed the FLOP threshold to force multi-threaded path.
        let m = 64;
        let k = 96;
        let n = 1024;
        let a = Tensor::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);
        let b = Tensor::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.05 - 0.25);
        assert!(m * k * n >= super::PAR_FLOP_THRESHOLD);
        let par = matmul(&a, &b).unwrap();
        // Serial reference.
        let mut reference = Tensor::zeros(m, n);
        super::matmul_rows(a.data(), b.data(), reference.data_mut(), 0, m, k, n);
        assert!(par.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut a = t(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        softmax_rows_inplace(&mut a).unwrap();
        for r in 0..2 {
            let s: f32 = a.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits larger probabilities.
        assert!(a.at(0, 2) > a.at(0, 1));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut a = t(1, 3, vec![1000., 1000., -1000.]);
        softmax_rows_inplace(&mut a).unwrap();
        assert!((a.at(0, 0) - 0.5).abs() < 1e-5);
        assert!(a.at(0, 2) < 1e-6);
        assert!(a.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn causal_softmax_masks_future() {
        let mut a = Tensor::full(3, 3, 1.0);
        causal_softmax_inplace(&mut a).unwrap();
        assert_eq!(a.at(0, 1), 0.0);
        assert_eq!(a.at(0, 2), 0.0);
        assert_eq!(a.at(1, 2), 0.0);
        assert!((a.at(1, 0) - 0.5).abs() < 1e-6);
        let s: f32 = a.row(2).unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        let mut bad = Tensor::zeros(2, 3);
        assert!(causal_softmax_inplace(&mut bad).is_err());
    }

    #[test]
    fn rms_norm_unit_scale() {
        let mut a = t(1, 4, vec![2., 2., 2., 2.]);
        rms_norm_inplace(&mut a, &[1., 1., 1., 1.], 0.0).unwrap();
        for &x in a.data() {
            assert!((x - 1.0).abs() < 1e-5);
        }
        let mut a = t(1, 2, vec![1., 1.]);
        assert!(rms_norm_inplace(&mut a, &[1.0], 1e-6).is_err());
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut a = t(1, 4, vec![1., 2., 3., 4.]);
        layer_norm_inplace(&mut a, &[1.; 4], &[0.; 4], 0.0).unwrap();
        let mean: f32 = a.data().iter().sum::<f32>() / 4.0;
        let var: f32 = a
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn activations_known_values() {
        let mut a = t(1, 3, vec![-1.0, 0.0, 1.0]);
        silu_inplace(&mut a);
        assert!((a.at(0, 1)).abs() < 1e-7);
        assert!((a.at(0, 2) - 0.731_058_6).abs() < 1e-5);

        let mut g = t(1, 3, vec![-1.0, 0.0, 1.0]);
        gelu_inplace(&mut g);
        assert!((g.at(0, 1)).abs() < 1e-7);
        assert!((g.at(0, 2) - 0.841_192).abs() < 1e-3);
    }

    #[test]
    fn residual_and_bias_updates() {
        let mut a = t(1, 2, vec![1., 2.]);
        let b = t(1, 2, vec![10., 20.]);
        axpy_inplace(&mut a, 0.5, &b).unwrap();
        assert_eq!(a.data(), &[6.0, 12.0]);
        add_inplace(&mut a, &b).unwrap();
        assert_eq!(a.data(), &[16.0, 32.0]);
        add_bias_inplace(&mut a, &[1.0, -1.0]).unwrap();
        assert_eq!(a.data(), &[17.0, 31.0]);
        assert!(add_bias_inplace(&mut a, &[1.0]).is_err());
        let c = Tensor::zeros(2, 2);
        assert!(add_inplace(&mut a, &c).is_err());
        assert!(axpy_inplace(&mut a, 1.0, &c).is_err());
    }

    #[test]
    fn hadamard_and_mean_rows() {
        let mut a = t(2, 2, vec![1., 2., 3., 4.]);
        let b = t(2, 2, vec![2., 2., 2., 2.]);
        hadamard_inplace(&mut a, &b).unwrap();
        assert_eq!(a.data(), &[2., 4., 6., 8.]);
        let m = mean_rows(&a).unwrap();
        assert_eq!(m.data(), &[4.0, 6.0]);
        assert!(mean_rows(&Tensor::zeros(0, 3)).is_err());
        let c = Tensor::zeros(1, 2);
        assert!(hadamard_inplace(&mut a, &c).is_err());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]).unwrap(), 32.0);
        assert!(dot(&[1.], &[1., 2.]).is_err());
    }
}
