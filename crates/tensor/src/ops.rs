//! Shape-checked kernels: matmul, softmax, normalization, activations.
//!
//! Kernels accept and return [`Tensor`]s; anything shape-dependent is
//! validated up front and reported through [`TensorError`]. Matrix products
//! switch to row-parallel execution above a FLOP threshold using scoped
//! threads, which is the only concurrency in this crate.
//!
//! # GEMM architecture
//!
//! All matrix products funnel into one cache-blocked driver
//! (`gemm_tiled`): the shared right-hand operand is packed (or, for
//! quantized weights, nibble-decoded) one `KC x NB` panel at a time into a
//! stack buffer, and a register-tiled microkernel broadcasts four
//! left-hand rows against that panel with FMA-friendly independent
//! accumulators. Every output element sees the same per-`k` operation
//! sequence regardless of row blocking, tiling or thread count, so on a
//! given machine results are bit-identical across chunk sizes and
//! threading — the property the engine's determinism suite relies on.
//! (The AVX2+FMA path fuses multiply-adds, so its low bits differ from
//! a separately-rounded naive triple loop; equivalence tests against a
//! naive reference must compare within a tolerance, not bit-exactly.)

use crate::{Result, Tensor, TensorError};

/// Work threshold (in multiply-accumulate ops) above which matmul kernels
/// fan out across threads. Tuned so mini-model layers stay single-threaded
/// (they are cache-resident and tiny) while monolithic batches parallelize.
const PAR_FLOP_THRESHOLD: usize = 1 << 22;

/// SIMD capability tier the runtime-dispatched kernels may use.
///
/// Ordered by width, so `Ord` comparisons pick the wider tier. The AVX2
/// and AVX-512 GEMM microkernels share one per-element operation sequence
/// (register-accumulated fused multiply-adds in `k` order, one final add
/// into `C`), so results are bit-identical between those two tiers; the
/// scalar tier rounds every multiply-add separately and differs in the
/// low bits, as documented at the crate level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable Rust, no explicit SIMD (LLVM may still auto-vectorize).
    Scalar,
    /// AVX2 + FMA (256-bit lanes).
    Avx2,
    /// AVX-512F (512-bit lanes) on top of AVX2 + FMA.
    Avx512,
    /// AVX-512 VNNI (`vpdpbusd` u8 x i8 dot-product accumulation) on top
    /// of AVX-512F/BW. Only the integer GEMM path (`igemm`) uses the
    /// extra instructions; f32 kernels treat this tier as
    /// [`SimdTier::Avx512`].
    Avx512Vnni,
}

/// Widest tier the running CPU supports.
pub fn detected_simd_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        let fma = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        if fma && std::arch::is_x86_feature_detected!("avx512f") {
            if std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512vnni")
            {
                return SimdTier::Avx512Vnni;
            }
            return SimdTier::Avx512;
        }
        if fma {
            return SimdTier::Avx2;
        }
    }
    SimdTier::Scalar
}

/// Process-wide tier override (0 = none). Benches and equivalence tests
/// pin a tier to compare kernels; production code never sets it.
static TIER_OVERRIDE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Forces every dispatched kernel onto `tier` (clamped to what the CPU
/// actually supports), or restores auto-detection with `None`.
///
/// Intended for benches and tier-equivalence tests; the override is
/// process-global, so concurrent tests forcing different tiers would
/// race each other — keep such tests serial.
pub fn force_simd_tier(tier: Option<SimdTier>) {
    let v = match tier {
        None => 0,
        Some(SimdTier::Scalar) => 1,
        Some(SimdTier::Avx2) => 2,
        Some(SimdTier::Avx512) => 3,
        Some(SimdTier::Avx512Vnni) => 4,
    };
    TIER_OVERRIDE.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The tier kernels dispatch on right now: the override if one is set
/// (never wider than the hardware), the detected tier otherwise.
pub fn simd_tier() -> SimdTier {
    let detected = detected_simd_tier();
    match TIER_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => SimdTier::Scalar,
        2 => SimdTier::Avx2.min(detected),
        3 => SimdTier::Avx512.min(detected),
        4 => SimdTier::Avx512Vnni.min(detected),
        _ => detected,
    }
}

fn num_threads_for(work: usize) -> usize {
    if work < PAR_FLOP_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Rows of the packed operand panel (`k` direction).
pub(crate) const KC: usize = 64;
/// Columns of the packed operand panel (`n` direction).
pub(crate) const NB: usize = 64;
/// Left-hand rows processed per microkernel invocation.
const MR: usize = 4;

/// Cache-blocked GEMM driver: `C[m,n] = A[m,k] * P` where `P` is the
/// second operand delivered panel-by-panel by `pack`.
///
/// `pack(p0, kc, j0, jn, panel)` must fill `panel[p * NB + j]` with
/// `P[p0 + p][j0 + j]` for `p < kc`, `j < jn` — a straight copy for
/// row-major `B`, a transposing copy for `A * B^T`, or a fused nibble
/// decode for quantized weights. Each element of the shared operand is
/// packed exactly once and reused by every row block of `A`. `C` is fully
/// overwritten. Row strides `lda`/`ldc` let callers run the same kernel on
/// column slices of larger tensors (per-head attention) without copying.
#[allow(clippy::too_many_arguments)] // BLAS-style signature: shapes + strides
pub(crate) fn gemm_tiled<F>(
    a: &[f32],
    lda: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
    pack: &F,
) where
    F: Fn(usize, usize, usize, usize, &mut [f32; KC * NB]),
{
    for r in 0..m {
        c[r * ldc..r * ldc + n].fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let tier = simd_tier();
    let mut panel = [0.0_f32; KC * NB];
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let mut j0 = 0;
        while j0 < n {
            let jn = NB.min(n - j0);
            pack(p0, kc, j0, jn, &mut panel);
            let mut i = 0;
            while i + MR <= m {
                #[cfg(target_arch = "x86_64")]
                if tier >= SimdTier::Avx2 {
                    // SAFETY: the tier was clamped to runtime-verified CPU
                    // features; slice bounds are identical to the scalar
                    // path.
                    unsafe {
                        if tier >= SimdTier::Avx512 {
                            x86::kernel_4_avx512(a, lda, &panel, c, ldc, i, p0, kc, j0, jn);
                        } else {
                            x86::kernel_4_fma(a, lda, &panel, c, ldc, i, p0, kc, j0, jn);
                        }
                    };
                    i += MR;
                    continue;
                }
                let _ = tier;
                kernel_4(a, lda, &panel, c, ldc, i, p0, kc, j0, jn);
                i += MR;
            }
            // The remainder kernel must mirror the block kernel's
            // per-element operation structure exactly, so a row computes
            // the same bits whether it falls in a 4-block or the tail —
            // results stay invariant to batch geometry and chunking.
            while i < m {
                #[cfg(target_arch = "x86_64")]
                if tier >= SimdTier::Avx2 {
                    // SAFETY: as above.
                    unsafe {
                        if tier >= SimdTier::Avx512 {
                            x86::kernel_1_avx512(a, lda, &panel, c, ldc, i, p0, kc, j0, jn);
                        } else {
                            x86::kernel_1_fma(a, lda, &panel, c, ldc, i, p0, kc, j0, jn);
                        }
                    };
                    i += 1;
                    continue;
                }
                kernel_1(a, lda, &panel, c, ldc, i, p0, kc, j0, jn);
                i += 1;
            }
            j0 += jn;
        }
        p0 += kc;
    }
}

/// AVX2+FMA specialization of the 4-row microkernel, selected at runtime.
///
/// Keeps a 4x16 register tile of accumulators (eight YMM registers) live
/// across the whole `k` panel, then adds it into `C` once — the memory
/// traffic per panel drops from `kc` read-modify-writes of each `C` row
/// to exactly one.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{KC, NB};
    use std::arch::x86_64::{
        __m256, __m512, _mm256_add_ps, _mm256_broadcast_ss, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps,
        _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
    };

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn kernel_4_fma(
        a: &[f32],
        lda: usize,
        panel: &[f32; KC * NB],
        c: &mut [f32],
        ldc: usize,
        i: usize,
        p0: usize,
        kc: usize,
        j0: usize,
        jn: usize,
    ) {
        let a0 = &a[i * lda + p0..][..kc];
        let a1 = &a[(i + 1) * lda + p0..][..kc];
        let a2 = &a[(i + 2) * lda + p0..][..kc];
        let a3 = &a[(i + 3) * lda + p0..][..kc];
        let (r0, rest) = c[i * ldc + j0..].split_at_mut(ldc);
        let (r1, rest) = rest.split_at_mut(ldc);
        let (r2, rest) = rest.split_at_mut(ldc);
        let c0 = &mut r0[..jn];
        let c1 = &mut r1[..jn];
        let c2 = &mut r2[..jn];
        let c3 = &mut rest[..jn];
        let mut j = 0;
        // 16-column register tile: two YMM vectors per output row.
        while j + 16 <= jn {
            let mut acc: [[__m256; 2]; 4] = [[_mm256_setzero_ps(); 2]; 4];
            for p in 0..kc {
                let prow = panel.as_ptr().add(p * NB + j);
                let b0 = _mm256_loadu_ps(prow);
                let b1 = _mm256_loadu_ps(prow.add(8));
                for (row, accr) in acc.iter_mut().enumerate() {
                    let x = _mm256_broadcast_ss(match row {
                        0 => &a0[p],
                        1 => &a1[p],
                        2 => &a2[p],
                        _ => &a3[p],
                    });
                    accr[0] = _mm256_fmadd_ps(x, b0, accr[0]);
                    accr[1] = _mm256_fmadd_ps(x, b1, accr[1]);
                }
            }
            for (row, accr) in acc.iter().enumerate() {
                let crow: &mut [f32] = match row {
                    0 => &mut c0[j..],
                    1 => &mut c1[j..],
                    2 => &mut c2[j..],
                    _ => &mut c3[j..],
                };
                let ptr = crow.as_mut_ptr();
                _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), accr[0]));
                _mm256_storeu_ps(
                    ptr.add(8),
                    _mm256_add_ps(_mm256_loadu_ps(ptr.add(8)), accr[1]),
                );
            }
            j += 16;
        }
        // 8-column tile for the mid remainder.
        while j + 8 <= jn {
            let mut acc: [__m256; 4] = [_mm256_setzero_ps(); 4];
            for p in 0..kc {
                let b0 = _mm256_loadu_ps(panel.as_ptr().add(p * NB + j));
                acc[0] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a0[p]), b0, acc[0]);
                acc[1] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a1[p]), b0, acc[1]);
                acc[2] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a2[p]), b0, acc[2]);
                acc[3] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a3[p]), b0, acc[3]);
            }
            for (row, accr) in acc.iter().enumerate() {
                let crow: &mut [f32] = match row {
                    0 => &mut c0[j..],
                    1 => &mut c1[j..],
                    2 => &mut c2[j..],
                    _ => &mut c3[j..],
                };
                let ptr = crow.as_mut_ptr();
                _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), *accr));
            }
            j += 8;
        }
        // Scalar tail (fewer than 8 columns left).
        if j < jn {
            for p in 0..kc {
                let prow = &panel[p * NB..p * NB + jn];
                let x0 = a0[p];
                let x1 = a1[p];
                let x2 = a2[p];
                let x3 = a3[p];
                for jj in j..jn {
                    let bv = prow[jj];
                    c0[jj] += x0 * bv;
                    c1[jj] += x1 * bv;
                    c2[jj] += x2 * bv;
                    c3[jj] += x3 * bv;
                }
            }
        }
    }

    /// Single-row remainder kernel with exactly the same per-element
    /// operation sequence as [`kernel_4_fma`] (register-accumulated fused
    /// multiply-adds per 16/8-column tile, read-modify-write scalar tail),
    /// so a row's bits do not depend on which kernel processed it.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn kernel_1_fma(
        a: &[f32],
        lda: usize,
        panel: &[f32; KC * NB],
        c: &mut [f32],
        ldc: usize,
        i: usize,
        p0: usize,
        kc: usize,
        j0: usize,
        jn: usize,
    ) {
        let arow = &a[i * lda + p0..][..kc];
        let crow = &mut c[i * ldc + j0..i * ldc + j0 + jn];
        let mut j = 0;
        while j + 16 <= jn {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for (p, av) in arow.iter().enumerate() {
                let prow = panel.as_ptr().add(p * NB + j);
                let x = _mm256_broadcast_ss(av);
                acc0 = _mm256_fmadd_ps(x, _mm256_loadu_ps(prow), acc0);
                acc1 = _mm256_fmadd_ps(x, _mm256_loadu_ps(prow.add(8)), acc1);
            }
            let ptr = crow.as_mut_ptr().add(j);
            _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), acc0));
            _mm256_storeu_ps(ptr.add(8), _mm256_add_ps(_mm256_loadu_ps(ptr.add(8)), acc1));
            j += 16;
        }
        while j + 8 <= jn {
            let mut acc = _mm256_setzero_ps();
            for (p, av) in arow.iter().enumerate() {
                let x = _mm256_broadcast_ss(av);
                acc = _mm256_fmadd_ps(x, _mm256_loadu_ps(panel.as_ptr().add(p * NB + j)), acc);
            }
            let ptr = crow.as_mut_ptr().add(j);
            _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), acc));
            j += 8;
        }
        if j < jn {
            for p in 0..kc {
                let prow = &panel[p * NB..p * NB + jn];
                let x = arow[p];
                for jj in j..jn {
                    crow[jj] += x * prow[jj];
                }
            }
        }
    }

    /// AVX-512 specialization of the 4-row microkernel: the 16-column
    /// register tile becomes a single ZMM accumulator per output row
    /// (half the register pressure and port traffic of the dual-YMM
    /// AVX2 tile). Per output element the operation sequence — one fused
    /// multiply-add per `k` step, one final add into `C` — is identical
    /// to [`kernel_4_fma`], so the two tiers produce the same bits; the
    /// sub-16-column remainder tiers are copied verbatim from the AVX2
    /// kernel for the same reason.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub(super) unsafe fn kernel_4_avx512(
        a: &[f32],
        lda: usize,
        panel: &[f32; KC * NB],
        c: &mut [f32],
        ldc: usize,
        i: usize,
        p0: usize,
        kc: usize,
        j0: usize,
        jn: usize,
    ) {
        let a0 = &a[i * lda + p0..][..kc];
        let a1 = &a[(i + 1) * lda + p0..][..kc];
        let a2 = &a[(i + 2) * lda + p0..][..kc];
        let a3 = &a[(i + 3) * lda + p0..][..kc];
        let (r0, rest) = c[i * ldc + j0..].split_at_mut(ldc);
        let (r1, rest) = rest.split_at_mut(ldc);
        let (r2, rest) = rest.split_at_mut(ldc);
        let c0 = &mut r0[..jn];
        let c1 = &mut r1[..jn];
        let c2 = &mut r2[..jn];
        let c3 = &mut rest[..jn];
        let mut j = 0;
        // 16-column register tile: one ZMM vector per output row.
        while j + 16 <= jn {
            let mut acc: [__m512; 4] = [_mm512_setzero_ps(); 4];
            for p in 0..kc {
                let b = _mm512_loadu_ps(panel.as_ptr().add(p * NB + j));
                acc[0] = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), b, acc[0]);
                acc[1] = _mm512_fmadd_ps(_mm512_set1_ps(a1[p]), b, acc[1]);
                acc[2] = _mm512_fmadd_ps(_mm512_set1_ps(a2[p]), b, acc[2]);
                acc[3] = _mm512_fmadd_ps(_mm512_set1_ps(a3[p]), b, acc[3]);
            }
            for (row, accr) in acc.iter().enumerate() {
                let crow: &mut [f32] = match row {
                    0 => &mut c0[j..],
                    1 => &mut c1[j..],
                    2 => &mut c2[j..],
                    _ => &mut c3[j..],
                };
                let ptr = crow.as_mut_ptr();
                _mm512_storeu_ps(ptr, _mm512_add_ps(_mm512_loadu_ps(ptr), *accr));
            }
            j += 16;
        }
        // 8-column tile for the mid remainder (identical to the AVX2
        // kernel so remainder columns keep the same bits).
        while j + 8 <= jn {
            let mut acc: [__m256; 4] = [_mm256_setzero_ps(); 4];
            for p in 0..kc {
                let b0 = _mm256_loadu_ps(panel.as_ptr().add(p * NB + j));
                acc[0] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a0[p]), b0, acc[0]);
                acc[1] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a1[p]), b0, acc[1]);
                acc[2] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a2[p]), b0, acc[2]);
                acc[3] = _mm256_fmadd_ps(_mm256_broadcast_ss(&a3[p]), b0, acc[3]);
            }
            for (row, accr) in acc.iter().enumerate() {
                let crow: &mut [f32] = match row {
                    0 => &mut c0[j..],
                    1 => &mut c1[j..],
                    2 => &mut c2[j..],
                    _ => &mut c3[j..],
                };
                let ptr = crow.as_mut_ptr();
                _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), *accr));
            }
            j += 8;
        }
        // Scalar tail (fewer than 8 columns left).
        if j < jn {
            for p in 0..kc {
                let prow = &panel[p * NB..p * NB + jn];
                let x0 = a0[p];
                let x1 = a1[p];
                let x2 = a2[p];
                let x3 = a3[p];
                for jj in j..jn {
                    let bv = prow[jj];
                    c0[jj] += x0 * bv;
                    c1[jj] += x1 * bv;
                    c2[jj] += x2 * bv;
                    c3[jj] += x3 * bv;
                }
            }
        }
    }

    /// Single-row AVX-512 remainder kernel mirroring [`kernel_1_fma`]'s
    /// per-element operation sequence (see [`kernel_4_avx512`] for the
    /// bit-compatibility argument).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub(super) unsafe fn kernel_1_avx512(
        a: &[f32],
        lda: usize,
        panel: &[f32; KC * NB],
        c: &mut [f32],
        ldc: usize,
        i: usize,
        p0: usize,
        kc: usize,
        j0: usize,
        jn: usize,
    ) {
        let arow = &a[i * lda + p0..][..kc];
        let crow = &mut c[i * ldc + j0..i * ldc + j0 + jn];
        let mut j = 0;
        while j + 16 <= jn {
            let mut acc = _mm512_setzero_ps();
            for (p, av) in arow.iter().enumerate() {
                let b = _mm512_loadu_ps(panel.as_ptr().add(p * NB + j));
                acc = _mm512_fmadd_ps(_mm512_set1_ps(*av), b, acc);
            }
            let ptr = crow.as_mut_ptr().add(j);
            _mm512_storeu_ps(ptr, _mm512_add_ps(_mm512_loadu_ps(ptr), acc));
            j += 16;
        }
        while j + 8 <= jn {
            let mut acc = _mm256_setzero_ps();
            for (p, av) in arow.iter().enumerate() {
                let x = _mm256_broadcast_ss(av);
                acc = _mm256_fmadd_ps(x, _mm256_loadu_ps(panel.as_ptr().add(p * NB + j)), acc);
            }
            let ptr = crow.as_mut_ptr().add(j);
            _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), acc));
            j += 8;
        }
        if j < jn {
            for p in 0..kc {
                let prow = &panel[p * NB..p * NB + jn];
                let x = arow[p];
                for jj in j..jn {
                    crow[jj] += x * prow[jj];
                }
            }
        }
    }
}

/// Microkernel: four rows of `A` against one packed panel, accumulating
/// into four `C` rows. The four accumulator rows are independent, so the
/// inner loop vectorizes over `j` and keeps four FMA chains in flight.
#[allow(clippy::too_many_arguments)] // BLAS-style signature: shapes + strides
#[inline]
fn kernel_4(
    a: &[f32],
    lda: usize,
    panel: &[f32; KC * NB],
    c: &mut [f32],
    ldc: usize,
    i: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    jn: usize,
) {
    let a0 = &a[i * lda + p0..][..kc];
    let a1 = &a[(i + 1) * lda + p0..][..kc];
    let a2 = &a[(i + 2) * lda + p0..][..kc];
    let a3 = &a[(i + 3) * lda + p0..][..kc];
    let (r0, rest) = c[i * ldc + j0..].split_at_mut(ldc);
    let (r1, rest) = rest.split_at_mut(ldc);
    let (r2, rest) = rest.split_at_mut(ldc);
    let c0 = &mut r0[..jn];
    let c1 = &mut r1[..jn];
    let c2 = &mut r2[..jn];
    let c3 = &mut rest[..jn];
    for p in 0..kc {
        let prow = &panel[p * NB..p * NB + jn];
        let x0 = a0[p];
        let x1 = a1[p];
        let x2 = a2[p];
        let x3 = a3[p];
        for (j, &bv) in prow.iter().enumerate() {
            c0[j] += x0 * bv;
            c1[j] += x1 * bv;
            c2[j] += x2 * bv;
            c3[j] += x3 * bv;
        }
    }
}

/// Remainder microkernel for the final `m % 4` rows.
#[allow(clippy::too_many_arguments)] // BLAS-style signature: shapes + strides
#[inline]
fn kernel_1(
    a: &[f32],
    lda: usize,
    panel: &[f32; KC * NB],
    c: &mut [f32],
    ldc: usize,
    i: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    jn: usize,
) {
    let arow = &a[i * lda + p0..][..kc];
    let crow = &mut c[i * ldc + j0..i * ldc + j0 + jn];
    for p in 0..kc {
        let prow = &panel[p * NB..p * NB + jn];
        let x = arow[p];
        for (o, &bv) in crow.iter_mut().zip(prow) {
            *o += x * bv;
        }
    }
}

/// Pack closure for a row-major second operand (`B[k,n]`, row stride
/// `ldb`): straight row copies into the panel.
fn copy_pack(
    b: &[f32],
    ldb: usize,
) -> impl Fn(usize, usize, usize, usize, &mut [f32; KC * NB]) + Sync + '_ {
    move |p0, kc, j0, jn, panel| {
        for p in 0..kc {
            let brow = &b[(p0 + p) * ldb + j0..][..jn];
            panel[p * NB..p * NB + jn].copy_from_slice(brow);
        }
    }
}

/// Pack closure for a transposed second operand (`B[n,k]^T`, row stride
/// `ldb`): transposing copies into the panel.
fn transpose_pack(
    b: &[f32],
    ldb: usize,
) -> impl Fn(usize, usize, usize, usize, &mut [f32; KC * NB]) + Sync + '_ {
    move |p0, kc, j0, jn, panel| {
        for j in 0..jn {
            let brow = &b[(j0 + j) * ldb + p0..][..kc];
            for (p, &bv) in brow.iter().enumerate() {
                panel[p * NB + j] = bv;
            }
        }
    }
}

/// Strided GEMM: `C[m,n] = A[m,k] * B[k,n]` with explicit row strides.
///
/// `a`, `b` and `c` are dense row-major buffers whose logical rows start
/// `lda`/`ldb`/`ldc` elements apart (`ld* >= `row width), so callers can
/// multiply column slices of packed tensors in place. `C` is fully
/// overwritten. Panics if a buffer is too short for its described shape.
#[allow(clippy::too_many_arguments)] // BLAS-style signature: shapes + strides
pub fn gemm_strided(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert!(m == 0 || k == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert!(k == 0 || n == 0 || b.len() >= (k - 1) * ldb + n);
    debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
    gemm_tiled(a, lda, c, ldc, m, k, n, &copy_pack(b, ldb));
}

/// Strided transposed GEMM: `C[m,n] = A[m,k] * B[n,k]^T` with explicit row
/// strides, without materializing `B^T`.
///
/// The kernel behind attention logits (`Q * K^T`) and output-major weight
/// application; see [`gemm_strided`] for the stride convention.
#[allow(clippy::too_many_arguments)] // BLAS-style signature: shapes + strides
pub fn gemm_transb_strided(
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert!(m == 0 || k == 0 || a.len() >= (m - 1) * lda + k);
    debug_assert!(n == 0 || k == 0 || b.len() >= (n - 1) * ldb + k);
    debug_assert!(m == 0 || n == 0 || c.len() >= (m - 1) * ldc + n);
    gemm_tiled(a, lda, c, ldc, m, k, n, &transpose_pack(b, ldb));
}

/// Splits `m` rows across up to [`num_threads_for`] scoped threads and
/// runs `gemm_tiled` with the shared `pack` closure on each row range.
pub(crate) fn gemm_parallel<F>(a: &[f32], c: &mut [f32], m: usize, k: usize, n: usize, pack: &F)
where
    F: Fn(usize, usize, usize, usize, &mut [f32; KC * NB]) + Sync,
{
    let threads = num_threads_for(m * k * n);
    if threads <= 1 || m < 2 * MR {
        gemm_tiled(a, k, c, n, m, k, n, pack);
        return;
    }
    // Round row chunks up to the microkernel height so only the last
    // thread runs remainder kernels.
    let chunk = m.div_ceil(threads).next_multiple_of(MR);
    std::thread::scope(|scope| {
        for (idx, out_chunk) in c.chunks_mut(chunk * n).enumerate() {
            let start = idx * chunk;
            let rows = out_chunk.len() / n;
            scope.spawn(move || {
                gemm_tiled(
                    &a[start * k..(start + rows) * k],
                    k,
                    out_chunk,
                    n,
                    rows,
                    k,
                    n,
                    pack,
                );
            });
        }
    });
}

/// Computes `A * B` for `A: m x k`, `B: k x n`.
///
/// # Examples
///
/// ```
/// use prism_tensor::{ops, Tensor};
/// let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Tensor::from_vec(2, 1, vec![1.0, 1.0]).unwrap();
/// let c = ops::matmul(&a, &b).unwrap();
/// assert_eq!(c.data(), &[3.0, 7.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::zeros(0, 0);
    matmul_into(a, b, &mut out)?;
    Ok(out)
}

/// Computes `A * B` into a caller-owned output tensor, reusing its
/// allocation when the capacity suffices.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    out.resize(m, n);
    if m == 0 || n == 0 {
        return Ok(());
    }
    gemm_parallel(a.data(), out.data_mut(), m, k, n, &copy_pack(b.data(), n));
    Ok(())
}

/// Computes `A * B^T` for `A: m x k`, `B: n x k` without materializing `B^T`.
///
/// This is the kernel used for attention logits (`Q * K^T`) and for weight
/// matrices stored output-major in checkpoint files.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::zeros(0, 0);
    matmul_transb_into(a, b, &mut out)?;
    Ok(out)
}

/// Computes `A * B^T` into a caller-owned output tensor, reusing its
/// allocation when the capacity suffices.
pub fn matmul_transb_into(a: &Tensor, b: &Tensor, out: &mut Tensor) -> Result<()> {
    if a.cols() != b.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.rows();
    out.resize(m, n);
    if m == 0 || n == 0 {
        return Ok(());
    }
    gemm_parallel(
        a.data(),
        out.data_mut(),
        m,
        k,
        n,
        &transpose_pack(b.data(), k),
    );
    Ok(())
}

/// Adds `b` to `a` element-wise in place.
pub fn add_inplace(a: &mut Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add_inplace",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += y;
    }
    Ok(())
}

/// Adds `alpha * b` to `a` in place (the residual update used by model blocks).
pub fn axpy_inplace(a: &mut Tensor, alpha: f32, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "axpy_inplace",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x += alpha * y;
    }
    Ok(())
}

/// Scales every element of `a` by `s` in place.
pub fn scale_inplace(a: &mut Tensor, s: f32) {
    for x in a.data_mut() {
        *x *= s;
    }
}

/// Adds a bias row vector to every row of `a` in place.
pub fn add_bias_inplace(a: &mut Tensor, bias: &[f32]) -> Result<()> {
    if bias.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_inplace",
            lhs: a.shape(),
            rhs: (1, bias.len()),
        });
    }
    let cols = a.cols();
    for row in a.data_mut().chunks_mut(cols) {
        for (x, b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    }
    Ok(())
}

/// Row-wise numerically-stable softmax in place.
pub fn softmax_rows_inplace(a: &mut Tensor) -> Result<()> {
    if a.cols() == 0 {
        return Err(TensorError::Empty { op: "softmax_rows" });
    }
    let cols = a.cols();
    for row in a.data_mut().chunks_mut(cols) {
        softmax_in_place(row);
    }
    Ok(())
}

/// Row-wise causal softmax: row `r` may only attend to columns `0..=r`.
///
/// Used by decoder-only rerankers; `a` must be square per sequence, i.e. the
/// caller passes the per-sequence logits block.
pub fn causal_softmax_inplace(a: &mut Tensor) -> Result<()> {
    if a.rows() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "causal_softmax",
            lhs: a.shape(),
            rhs: (a.cols(), a.rows()),
        });
    }
    let cols = a.cols();
    for (r, row) in a.data_mut().chunks_mut(cols).enumerate() {
        for v in row.iter_mut().skip(r + 1) {
            *v = f32::NEG_INFINITY;
        }
        softmax_in_place(row);
    }
    Ok(())
}

/// Fast `e^x` for `f32`: range-reduced degree-5 polynomial (Cephes
/// coefficients) with a branch-free `2^n` reconstruction.
///
/// Relative error is below `3e-7` across the finite range; inputs under
/// `-87` (including `-inf`, the causal-mask sentinel) flush to exactly
/// `0.0` and inputs above `88` saturate near `f32::MAX` instead of
/// overflowing. Every step is simple arithmetic, so loops over slices
/// auto-vectorize — unlike `f32::exp`, which lowers to a libm call per
/// element. This is the inner function of softmax and SiLU, where the
/// transformer forward path spends most of its non-GEMM time.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // 1.5 * 2^23: adding and subtracting rounds to the nearest integer.
    const MAGIC: f32 = 12_582_912.0;
    // ln(2) split into a high part exact in f32 and a low correction.
    #[allow(clippy::excessive_precision)] // exact f32 value, kept verbatim
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let clamped = x.clamp(-87.0, 88.0);
    let t = clamped * LOG2E + MAGIC;
    let n = t - MAGIC;
    // `t`'s mantissa encodes the integer `n` directly (|n| <= 128 around
    // the 1.5 * 2^23 pivot), so recover it with integer arithmetic — a
    // float-to-int cast here would block loop vectorization.
    let ni = (t.to_bits() as i32).wrapping_sub(0x4B40_0000);
    let f = (clamped - n * LN2_HI) - n * LN2_LO;
    // e^f = 1 + f + f^2 * P(f) on [-ln2/2, ln2/2] (Cephes expf).
    let mut p = 1.987_569_2e-4_f32;
    p = p * f + 1.398_199_9e-3;
    p = p * f + 8.333_452e-3;
    p = p * f + 4.166_579_6e-2;
    p = p * f + 1.666_666_5e-1;
    #[allow(clippy::excessive_precision)] // Cephes coefficient, kept verbatim
    const C0: f32 = 5.000_000_2e-1;
    p = p * f + C0;
    let z = f * f * p + f + 1.0;
    let scale = f32::from_bits(((ni + 127) << 23) as u32);
    // Flush true underflow (x < -87, incl. -inf) to exactly zero so
    // masked attention logits contribute nothing, as `exp` would.
    let live = (x >= -87.0) as u32 as f32;
    z * scale * live
}

/// Returns whether the elementwise kernels may take the AVX2+FMA path.
///
/// Routed through [`simd_tier`] so a forced-scalar override (benches,
/// tier-equivalence tests) applies to the elementwise kernels as well.
#[cfg(target_arch = "x86_64")]
#[inline]
fn fma_available() -> bool {
    simd_tier() >= SimdTier::Avx2
}

/// Dispatches an elementwise kernel body to an AVX2-compiled copy when
/// the CPU supports it. The body is written once as a generic closure;
/// the macro instantiates it inside a `#[target_feature]` function so
/// LLVM vectorizes it 8-wide, falling back to the portable build
/// otherwise. Results are identical either way — the loops perform the
/// same scalar operations per element in the same order.
macro_rules! simd_dispatch {
    ($name:ident, $slice:ty, $body:expr) => {
        #[inline]
        fn $name(data: $slice) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2,fma")]
                unsafe fn vectorized(data: $slice) {
                    #[allow(clippy::redundant_closure_call)]
                    ($body)(data)
                }
                if fma_available() {
                    // SAFETY: avx2+fma verified at runtime just above.
                    unsafe { vectorized(data) };
                    return;
                }
            }
            #[allow(clippy::redundant_closure_call)]
            ($body)(data)
        }
    };
}

/// Lane width of the unrolled reduction accumulators. Eight `f32`s fill
/// one YMM register on the AVX2 path; the portable build still benefits
/// from the shortened dependency chains.
const LANES: usize = 8;

/// Maximum over a slice via eight independent accumulator lanes.
///
/// `max` is exactly associative and commutative (no NaNs in kernel
/// inputs), so lane order does not affect the result — this is just the
/// scalar fold with the serial dependency chain broken.
#[inline(always)]
fn max_lanes(data: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; LANES];
    let chunks = data.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (l, &x) in lanes.iter_mut().zip(chunk) {
            *l = l.max(x);
        }
    }
    let mut max = tail.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for l in lanes {
        max = max.max(l);
    }
    max
}

/// Sum over a slice via eight independent accumulator lanes (strided
/// partial sums, deterministic for a given length).
#[inline(always)]
fn sum_lanes(data: &[f32]) -> f32 {
    let mut lanes = [0.0_f32; LANES];
    let chunks = data.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (l, &x) in lanes.iter_mut().zip(chunk) {
            *l += x;
        }
    }
    lanes.iter().sum::<f32>() + tail.iter().sum::<f32>()
}

/// Shared body of the (optionally pre-scaled) softmax: `row` becomes
/// `softmax(scale * row)`.
#[inline(always)]
fn softmax_scaled_body(row: &mut [f32], scale: f32) {
    let max = max_lanes(row);
    // Exponentiation split from the sum so the map loop vectorizes.
    for v in row.iter_mut() {
        *v = exp_approx((*v - max) * scale);
    }
    let sum = sum_lanes(row);
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_scaled_avx2(row: &mut [f32], scale: f32) {
    softmax_scaled_body(row, scale)
}

/// Softmax of `scale * row` in place, without a separate scaling pass.
///
/// `scale` must be positive (attention uses `1/sqrt(head_dim)`); the
/// scale is folded into the shifted exponent, which is equivalent because
/// `softmax` is shift-invariant and `max(scale * x) = scale * max(x)` for
/// positive scales.
pub fn softmax_scaled_in_place(row: &mut [f32], scale: f32) {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: avx2+fma verified at runtime just above.
        unsafe { softmax_scaled_avx2(row, scale) };
        return;
    }
    softmax_scaled_body(row, scale);
}

/// Numerically-stable softmax over one raw slice, in place.
///
/// The slice-level primitive behind [`softmax_rows_inplace`] and
/// [`causal_softmax_inplace`], exposed so allocation-free attention can
/// normalize logits living inside a scratch buffer. Exponentials go
/// through [`exp_approx`].
pub fn softmax_in_place(row: &mut [f32]) {
    softmax_scaled_in_place(row, 1.0);
}

/// Sum of squares over a slice via eight accumulator lanes.
#[inline(always)]
fn sum_sq_lanes(data: &[f32]) -> f32 {
    let mut lanes = [0.0_f32; LANES];
    let chunks = data.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for (l, &x) in lanes.iter_mut().zip(chunk) {
            *l += x * x;
        }
    }
    lanes.iter().sum::<f32>() + tail.iter().map(|x| x * x).sum::<f32>()
}

#[inline(always)]
fn rms_norm_body(data: &mut [f32], gain: &[f32], cols: usize, eps: f32) {
    for row in data.chunks_mut(cols) {
        let ms = sum_sq_lanes(row) / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (x, g) in row.iter_mut().zip(gain) {
            *x = *x * inv * g;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn rms_norm_avx2(data: &mut [f32], gain: &[f32], cols: usize, eps: f32) {
    rms_norm_body(data, gain, cols, eps)
}

/// Row-wise RMS normalization with learned gain, in place.
///
/// `x <- x / sqrt(mean(x^2) + eps) * gain` — the normalization used by the
/// decoder-only (Qwen-style) rerankers.
pub fn rms_norm_inplace(a: &mut Tensor, gain: &[f32], eps: f32) -> Result<()> {
    if gain.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "rms_norm",
            lhs: a.shape(),
            rhs: (1, gain.len()),
        });
    }
    let cols = a.cols();
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: avx2+fma verified at runtime just above.
        unsafe { rms_norm_avx2(a.data_mut(), gain, cols, eps) };
        return Ok(());
    }
    rms_norm_body(a.data_mut(), gain, cols, eps);
    Ok(())
}

#[inline(always)]
fn layer_norm_body(data: &mut [f32], gain: &[f32], bias: &[f32], cols: usize, eps: f32) {
    for row in data.chunks_mut(cols) {
        let mean = sum_lanes(row) / cols as f32;
        let mut lanes = [0.0_f32; LANES];
        let chunks = row.chunks_exact(LANES);
        let tail = chunks.remainder();
        for chunk in chunks {
            for (l, &x) in lanes.iter_mut().zip(chunk) {
                *l += (x - mean) * (x - mean);
            }
        }
        let var = (lanes.iter().sum::<f32>()
            + tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>())
            / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for ((x, g), b) in row.iter_mut().zip(gain).zip(bias) {
            *x = (*x - mean) * inv * g + b;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn layer_norm_avx2(data: &mut [f32], gain: &[f32], bias: &[f32], cols: usize, eps: f32) {
    layer_norm_body(data, gain, bias, cols, eps)
}

/// Row-wise layer normalization with learned gain and bias, in place.
///
/// The normalization used by the encoder-only (BERT-style) rerankers.
pub fn layer_norm_inplace(a: &mut Tensor, gain: &[f32], bias: &[f32], eps: f32) -> Result<()> {
    if gain.len() != a.cols() || bias.len() != a.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "layer_norm",
            lhs: a.shape(),
            rhs: (1, gain.len()),
        });
    }
    let cols = a.cols();
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // SAFETY: avx2+fma verified at runtime just above.
        unsafe { layer_norm_avx2(a.data_mut(), gain, bias, cols, eps) };
        return Ok(());
    }
    layer_norm_body(a.data_mut(), gain, bias, cols, eps);
    Ok(())
}

simd_dispatch!(silu_dispatch, &mut [f32], |data: &mut [f32]| {
    for x in data.iter_mut() {
        *x = *x / (1.0 + exp_approx(-*x));
    }
});

/// SiLU (swish) activation in place: `x * sigmoid(x)`.
pub fn silu_inplace(a: &mut Tensor) {
    silu_dispatch(a.data_mut());
}

simd_dispatch!(gelu_dispatch, &mut [f32], |data: &mut [f32]| {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    for x in data.iter_mut() {
        let x3 = *x * *x * *x;
        let y = C * (*x + 0.044_715 * x3);
        let tanh = 1.0 - 2.0 / (exp_approx(2.0 * y) + 1.0);
        *x = 0.5 * *x * (1.0 + tanh);
    }
});

/// Tanh-approximated GELU activation in place.
///
/// `tanh(y)` is evaluated as `1 - 2 / (e^{2y} + 1)` over [`exp_approx`]
/// so the loop vectorizes like the rest of the activation kernels.
pub fn gelu_inplace(a: &mut Tensor) {
    gelu_dispatch(a.data_mut());
}

/// Element-wise product in place (`a <- a ⊙ b`), used by gated FFNs.
pub fn hadamard_inplace(a: &mut Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "hadamard",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    for (x, y) in a.data_mut().iter_mut().zip(b.data()) {
        *x *= y;
    }
    Ok(())
}

/// Mean over rows, producing a single row (`1 x cols`).
pub fn mean_rows(a: &Tensor) -> Result<Tensor> {
    if a.rows() == 0 {
        return Err(TensorError::Empty { op: "mean_rows" });
    }
    let mut out = Tensor::zeros(1, a.cols());
    let cols = a.cols();
    for row in a.data().chunks(cols) {
        for (o, &x) in out.data_mut().iter_mut().zip(row) {
            *o += x;
        }
    }
    let inv = 1.0 / a.rows() as f32;
    scale_inplace(&mut out, inv);
    Ok(out)
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            op: "dot",
            lhs: (1, a.len()),
            rhs: (1, b.len()),
        });
    }
    Ok(a.iter().zip(b).map(|(x, y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, v).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = t(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = t(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, (0..12).map(|x| x as f32 * 0.5).collect());
        let via_t = matmul(&a, &b.transpose()).unwrap();
        let direct = matmul_transb(&a, &b).unwrap();
        assert!(via_t.max_abs_diff(&direct).unwrap() < 1e-6);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(3, 3, (0..9).map(|x| x as f32).collect());
        let id = Tensor::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(matmul(&a, &id).unwrap(), a);
    }

    /// Naive triple-loop reference used to validate the tiled kernels.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = Tensor::zeros(m, n);
        for r in 0..m {
            for p in 0..k {
                let av = a.at(r, p);
                for j in 0..n {
                    *out.at_mut(r, j) += av * b.at(p, j);
                }
            }
        }
        out
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Exceed the FLOP threshold to force multi-threaded path.
        let m = 64;
        let k = 96;
        let n = 1024;
        let a = Tensor::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);
        let b = Tensor::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.05 - 0.25);
        assert!(m * k * n >= super::PAR_FLOP_THRESHOLD);
        let par = matmul(&a, &b).unwrap();
        let reference = naive_matmul(&a, &b);
        assert!(par.max_abs_diff(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn tiled_matmul_matches_naive_on_awkward_shapes() {
        // Shapes straddling every tile boundary: m around the 4-row
        // microkernel, k around KC, n around NB.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 130, 67),
            (3, 64, 64),
            (4, 65, 1),
            (5, 63, 65),
            (7, 128, 33),
            (9, 31, 129),
        ] {
            let a = Tensor::from_fn(m, k, |r, c| ((r * 13 + c * 5) % 17) as f32 * 0.21 - 1.5);
            let b = Tensor::from_fn(k, n, |r, c| ((r * 7 + c * 11) % 19) as f32 * 0.17 - 1.4);
            let tiled = matmul(&a, &b).unwrap();
            let naive = naive_matmul(&a, &b);
            assert!(
                tiled.max_abs_diff(&naive).unwrap() < 1e-4,
                "mismatch at {m}x{k}x{n}"
            );
            let tiled_t = matmul_transb(&a, &b.transpose()).unwrap();
            assert!(
                tiled_t.max_abs_diff(&naive).unwrap() < 1e-4,
                "transb mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn empty_operands_yield_empty_products() {
        let a = Tensor::zeros(0, 5);
        let b = Tensor::zeros(5, 3);
        assert_eq!(matmul(&a, &b).unwrap().shape(), (0, 3));
        let bt = Tensor::zeros(0, 5);
        assert_eq!(matmul_transb(&a, &bt).unwrap().shape(), (0, 0));
        let c = Tensor::zeros(4, 0);
        let d = Tensor::zeros(0, 2);
        assert_eq!(matmul(&c, &d).unwrap().shape(), (4, 2));
    }

    #[test]
    fn into_variants_reuse_allocation() {
        let a = t(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut out = Tensor::zeros(8, 8); // larger capacity than needed
        matmul_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
        matmul_transb_into(&a, &b.transpose(), &mut out).unwrap();
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn strided_gemm_multiplies_column_slices() {
        // Embed a 2x2 problem in the middle columns of wider buffers.
        let a = t(2, 4, vec![9., 1., 2., 9., 9., 3., 4., 9.]);
        let b = t(2, 4, vec![9., 5., 6., 9., 9., 7., 8., 9.]);
        let mut c = vec![0.0_f32; 2 * 3];
        // C (ldc 3, cols 0..2) = A[., 1..3] * B[., 1..3]
        gemm_strided(&a.data()[1..], 4, &b.data()[1..], 4, &mut c, 3, 2, 2, 2);
        assert_eq!(&c[0..2], &[1. * 5. + 2. * 7., 1. * 6. + 2. * 8.]);
        assert_eq!(&c[3..5], &[3. * 5. + 4. * 7., 3. * 6. + 4. * 8.]);
        // And the transposed flavor against the same data.
        let mut ct = vec![0.0_f32; 2 * 3];
        gemm_transb_strided(&a.data()[1..], 4, &b.data()[1..], 4, &mut ct, 3, 2, 2, 2);
        assert_eq!(&ct[0..2], &[1. * 5. + 2. * 6., 1. * 7. + 2. * 8.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut a = t(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        softmax_rows_inplace(&mut a).unwrap();
        for r in 0..2 {
            let s: f32 = a.row(r).unwrap().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone: larger logits larger probabilities.
        assert!(a.at(0, 2) > a.at(0, 1));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut a = t(1, 3, vec![1000., 1000., -1000.]);
        softmax_rows_inplace(&mut a).unwrap();
        assert!((a.at(0, 0) - 0.5).abs() < 1e-5);
        assert!(a.at(0, 2) < 1e-6);
        assert!(a.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn causal_softmax_masks_future() {
        let mut a = Tensor::full(3, 3, 1.0);
        causal_softmax_inplace(&mut a).unwrap();
        assert_eq!(a.at(0, 1), 0.0);
        assert_eq!(a.at(0, 2), 0.0);
        assert_eq!(a.at(1, 2), 0.0);
        assert!((a.at(1, 0) - 0.5).abs() < 1e-6);
        let s: f32 = a.row(2).unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        let mut bad = Tensor::zeros(2, 3);
        assert!(causal_softmax_inplace(&mut bad).is_err());
    }

    #[test]
    fn rms_norm_unit_scale() {
        let mut a = t(1, 4, vec![2., 2., 2., 2.]);
        rms_norm_inplace(&mut a, &[1., 1., 1., 1.], 0.0).unwrap();
        for &x in a.data() {
            assert!((x - 1.0).abs() < 1e-5);
        }
        let mut a = t(1, 2, vec![1., 1.]);
        assert!(rms_norm_inplace(&mut a, &[1.0], 1e-6).is_err());
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut a = t(1, 4, vec![1., 2., 3., 4.]);
        layer_norm_inplace(&mut a, &[1.; 4], &[0.; 4], 0.0).unwrap();
        let mean: f32 = a.data().iter().sum::<f32>() / 4.0;
        let var: f32 = a
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn activations_known_values() {
        let mut a = t(1, 3, vec![-1.0, 0.0, 1.0]);
        silu_inplace(&mut a);
        assert!((a.at(0, 1)).abs() < 1e-7);
        assert!((a.at(0, 2) - 0.731_058_6).abs() < 1e-5);

        let mut g = t(1, 3, vec![-1.0, 0.0, 1.0]);
        gelu_inplace(&mut g);
        assert!((g.at(0, 1)).abs() < 1e-7);
        assert!((g.at(0, 2) - 0.841_192).abs() < 1e-3);
    }

    #[test]
    fn residual_and_bias_updates() {
        let mut a = t(1, 2, vec![1., 2.]);
        let b = t(1, 2, vec![10., 20.]);
        axpy_inplace(&mut a, 0.5, &b).unwrap();
        assert_eq!(a.data(), &[6.0, 12.0]);
        add_inplace(&mut a, &b).unwrap();
        assert_eq!(a.data(), &[16.0, 32.0]);
        add_bias_inplace(&mut a, &[1.0, -1.0]).unwrap();
        assert_eq!(a.data(), &[17.0, 31.0]);
        assert!(add_bias_inplace(&mut a, &[1.0]).is_err());
        let c = Tensor::zeros(2, 2);
        assert!(add_inplace(&mut a, &c).is_err());
        assert!(axpy_inplace(&mut a, 1.0, &c).is_err());
    }

    #[test]
    fn hadamard_and_mean_rows() {
        let mut a = t(2, 2, vec![1., 2., 3., 4.]);
        let b = t(2, 2, vec![2., 2., 2., 2.]);
        hadamard_inplace(&mut a, &b).unwrap();
        assert_eq!(a.data(), &[2., 4., 6., 8.]);
        let m = mean_rows(&a).unwrap();
        assert_eq!(m.data(), &[4.0, 6.0]);
        assert!(mean_rows(&Tensor::zeros(0, 3)).is_err());
        let c = Tensor::zeros(1, 2);
        assert!(hadamard_inplace(&mut a, &c).is_err());
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]).unwrap(), 32.0);
        assert!(dot(&[1.], &[1., 2.]).is_err());
    }

    #[test]
    fn simd_tiers_dispatch_and_agree() {
        let detected = detected_simd_tier();
        // The override can never exceed the hardware.
        force_simd_tier(Some(SimdTier::Avx512Vnni));
        assert!(simd_tier() <= detected);
        force_simd_tier(None);
        assert_eq!(simd_tier(), detected);

        // Every tier at or below the detected one must round-trip
        // through `force_simd_tier` unclamped.
        for tier in [
            SimdTier::Scalar,
            SimdTier::Avx2,
            SimdTier::Avx512,
            SimdTier::Avx512Vnni,
        ] {
            force_simd_tier(Some(tier));
            if tier <= detected {
                assert_eq!(simd_tier(), tier, "{tier:?} must be selectable");
            } else {
                assert_eq!(simd_tier(), detected, "{tier:?} must clamp to detected");
            }
        }
        force_simd_tier(None);

        // Shapes straddling the 4-row block, KC/NB panels and the
        // 16/8/scalar column tiers.
        let a = Tensor::from_fn(13, 97, |r, c| ((r * 17 + c * 5) % 23) as f32 * 0.11 - 1.2);
        let b = Tensor::from_fn(97, 41, |r, c| ((r * 3 + c * 13) % 29) as f32 * 0.07 - 1.0);
        let run = |tier: SimdTier| {
            force_simd_tier(Some(tier));
            let out = matmul(&a, &b).unwrap();
            force_simd_tier(None);
            out
        };
        let scalar = run(SimdTier::Scalar);
        if detected >= SimdTier::Avx2 {
            let avx2 = run(SimdTier::Avx2);
            assert!(scalar.max_abs_diff(&avx2).unwrap() < 1e-4);
            let bits = |t: &Tensor| t.data().iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
            if detected >= SimdTier::Avx512 {
                let avx512 = run(SimdTier::Avx512);
                assert_eq!(
                    bits(&avx2),
                    bits(&avx512),
                    "AVX-512 tier must be bit-identical to the AVX2 tier"
                );
            }
            if detected >= SimdTier::Avx512Vnni {
                // f32 kernels have no VNNI specialization: the widest
                // tier must route onto the AVX-512 kernels bit-for-bit.
                let vnni = run(SimdTier::Avx512Vnni);
                assert_eq!(
                    bits(&avx2),
                    bits(&vnni),
                    "VNNI tier must reuse the AVX-512 f32 kernels"
                );
            }
        }
    }

    #[test]
    fn exp_approx_tracks_libm_exp() {
        let mut x = -87.0_f32;
        while x < 88.0 {
            let got = exp_approx(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 5e-7, "x={x}: got {got} want {want} rel {rel}");
            x += 0.37;
        }
        assert_eq!(exp_approx(0.0), 1.0);
        // True underflow and the causal-mask sentinel flush to exact zero.
        assert_eq!(exp_approx(-90.0), 0.0);
        assert_eq!(exp_approx(f32::NEG_INFINITY), 0.0);
        // Saturation stays finite.
        assert!(exp_approx(1000.0).is_finite());
    }
}
