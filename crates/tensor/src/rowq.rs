//! Per-row affine 8-bit quantization for spilled hidden states (§4.3).
//!
//! Under the offload regime the engine's spill traffic is byte-bound on
//! the emulated SSD, so the spill format stores hidden-state rows as
//! `u8` codes plus a per-row `(min, scale)` affine — 4x fewer bytes
//! through the bandwidth throttle than raw `f32`, at a reconstruction
//! error bounded by `scale / 2` per element. Unlike the block-wise 4-bit
//! *weight* quantization in [`crate::quant`], this codec targets
//! *activations*: rows are encoded and decoded once per layer pass, so
//! the kernels are simple streaming loops, runtime-dispatched to an
//! AVX2/AVX-512-compiled copy like the GEMM microkernels.
//!
//! Every tier performs the identical per-element operations in the same
//! order, so encode/decode results are bit-identical across tiers — the
//! spilled bytes a request writes do not depend on the host's SIMD
//! width.

use crate::ops::{simd_tier, SimdTier};
use crate::{Result, TensorError};

/// Quantization levels of the u8 code space.
const LEVELS: f32 = 255.0;

/// Bytes of payload one encoded row of `cols` elements occupies.
#[inline]
pub const fn encoded_row_bytes(cols: usize) -> usize {
    cols
}

/// Worst-case absolute reconstruction error of a row encoded with
/// `scale`: half a quantization step.
#[inline]
pub fn max_row_error(scale: f32) -> f32 {
    scale * 0.5
}

/// Row min/max via eight independent lanes (same technique as the
/// softmax reductions; `min`/`max` are exactly associative on the
/// NaN-free kernel inputs, so lane order cannot change the result).
#[inline(always)]
fn minmax_lanes(row: &[f32]) -> (f32, f32) {
    const LANES: usize = 8;
    let mut lo = [f32::INFINITY; LANES];
    let mut hi = [f32::NEG_INFINITY; LANES];
    let chunks = row.chunks_exact(LANES);
    let tail = chunks.remainder();
    for chunk in chunks {
        for ((l, h), &x) in lo.iter_mut().zip(hi.iter_mut()).zip(chunk) {
            *l = l.min(x);
            *h = h.max(x);
        }
    }
    let mut min = tail.iter().cloned().fold(f32::INFINITY, f32::min);
    let mut max = tail.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    for (l, h) in lo.into_iter().zip(hi) {
        min = min.min(l);
        max = max.max(h);
    }
    (min, max)
}

#[inline(always)]
fn encode_body(row: &[f32], out: &mut [u8]) -> (f32, f32) {
    if row.is_empty() {
        return (0.0, 0.0);
    }
    let (lo, hi) = minmax_lanes(row);
    let scale = if hi > lo { (hi - lo) / LEVELS } else { 0.0 };
    if scale > 0.0 {
        // 1.5 * 2^23: adding the magic pivot rounds a value in [0, 255]
        // to the nearest integer in the mantissa's low bits (the same
        // trick as `ops::exp_approx`). Branch-free arithmetic plus a
        // bit-cast, so the loop vectorizes — `f32::round` + a saturating
        // cast lowers to scalar code an order of magnitude slower.
        const MAGIC: f32 = 12_582_912.0;
        let inv = LEVELS / (hi - lo);
        for (q, &x) in out.iter_mut().zip(row) {
            // The clamp soaks up floating-point slop at the range ends
            // before the mantissa extraction can wrap.
            let v = ((x - lo) * inv).clamp(0.0, LEVELS);
            *q = ((v + MAGIC).to_bits() & 0xFF) as u8;
        }
    } else {
        out[..row.len()].fill(0);
    }
    (lo, scale)
}

#[inline(always)]
fn decode_body(codes: &[u8], min: f32, scale: f32, out: &mut [f32]) {
    for (o, &q) in out.iter_mut().zip(codes) {
        *o = scale.mul_add(f32::from(q), min);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn encode_avx2(row: &[f32], out: &mut [u8]) -> (f32, f32) {
        super::encode_body(row, out)
    }

    #[target_feature(enable = "avx512f,avx512bw,avx2,fma")]
    pub(super) unsafe fn encode_avx512(row: &[f32], out: &mut [u8]) -> (f32, f32) {
        super::encode_body(row, out)
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn decode_avx2(codes: &[u8], min: f32, scale: f32, out: &mut [f32]) {
        super::decode_body(codes, min, scale, out)
    }

    #[target_feature(enable = "avx512f,avx512bw,avx2,fma")]
    pub(super) unsafe fn decode_avx512(codes: &[u8], min: f32, scale: f32, out: &mut [f32]) {
        super::decode_body(codes, min, scale, out)
    }
}

/// Encodes one row into u8 codes, returning the `(min, scale)` affine.
///
/// `out` must be at least `row.len()` bytes. Decoding with
/// [`decode_row`] reconstructs each element within
/// [`max_row_error`]`(scale)`; a constant row round-trips exactly
/// (`scale == 0`).
pub fn encode_row(row: &[f32], out: &mut [u8]) -> Result<(f32, f32)> {
    if out.len() < row.len() {
        return Err(TensorError::DataLength {
            expected: row.len(),
            got: out.len(),
        });
    }
    #[cfg(target_arch = "x86_64")]
    {
        let tier = simd_tier();
        if tier >= SimdTier::Avx512 && std::arch::is_x86_feature_detected!("avx512bw") {
            // SAFETY: features runtime-verified just above.
            return Ok(unsafe { x86::encode_avx512(row, out) });
        }
        if tier >= SimdTier::Avx2 {
            // SAFETY: Avx2 tier implies runtime-verified avx2+fma.
            return Ok(unsafe { x86::encode_avx2(row, out) });
        }
    }
    Ok(encode_body(row, out))
}

/// Decodes u8 codes produced by [`encode_row`] back into `out`.
///
/// `codes` must hold at least `out.len()` bytes.
pub fn decode_row(codes: &[u8], min: f32, scale: f32, out: &mut [f32]) -> Result<()> {
    if codes.len() < out.len() {
        return Err(TensorError::DataLength {
            expected: out.len(),
            got: codes.len(),
        });
    }
    #[cfg(target_arch = "x86_64")]
    {
        let tier = simd_tier();
        if tier >= SimdTier::Avx512 && std::arch::is_x86_feature_detected!("avx512bw") {
            // SAFETY: features runtime-verified just above.
            unsafe { x86::decode_avx512(codes, min, scale, out) };
            return Ok(());
        }
        if tier >= SimdTier::Avx2 {
            // SAFETY: Avx2 tier implies runtime-verified avx2+fma.
            unsafe { x86::decode_avx2(codes, min, scale, out) };
            return Ok(());
        }
    }
    decode_body(codes, min, scale, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::force_simd_tier;

    fn ramp(n: usize, seed: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 * seed).sin() * 3.0 - 0.7)
            .collect()
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        for n in [1, 7, 8, 31, 64, 257] {
            let row = ramp(n, 0.13);
            let mut codes = vec![0_u8; n];
            let (min, scale) = encode_row(&row, &mut codes).unwrap();
            let mut back = vec![0.0_f32; n];
            decode_row(&codes, min, scale, &mut back).unwrap();
            let bound = max_row_error(scale) + 1e-6;
            for (x, y) in row.iter().zip(&back) {
                assert!((x - y).abs() <= bound, "n={n}: {x} vs {y} (bound {bound})");
            }
        }
    }

    #[test]
    fn constant_row_is_exact_and_empty_is_fine() {
        let row = vec![2.5_f32; 16];
        let mut codes = vec![0xFF_u8; 16];
        let (min, scale) = encode_row(&row, &mut codes).unwrap();
        assert_eq!(scale, 0.0);
        assert!(codes.iter().all(|&q| q == 0));
        let mut back = vec![0.0_f32; 16];
        decode_row(&codes, min, scale, &mut back).unwrap();
        assert_eq!(back, row);

        let (min, scale) = encode_row(&[], &mut []).unwrap();
        assert_eq!((min, scale), (0.0, 0.0));
        decode_row(&[], 0.0, 0.0, &mut []).unwrap();
    }

    #[test]
    fn extremes_map_to_code_range_ends() {
        let row = [-1.0_f32, 0.0, 1.0];
        let mut codes = [0_u8; 3];
        let (min, scale) = encode_row(&row, &mut codes).unwrap();
        assert_eq!(codes[0], 0);
        assert_eq!(codes[2], 255);
        assert_eq!(min, -1.0);
        assert!((scale - 2.0 / 255.0).abs() < 1e-7);
    }

    #[test]
    fn length_mismatches_rejected() {
        let row = [1.0_f32; 4];
        let mut short = [0_u8; 3];
        assert!(encode_row(&row, &mut short).is_err());
        let mut out = [0.0_f32; 4];
        assert!(decode_row(&short, 0.0, 1.0, &mut out).is_err());
    }

    #[test]
    fn tiers_produce_identical_bytes_and_bits() {
        let detected = crate::ops::detected_simd_tier();
        let row = ramp(123, 0.31);
        let run = |tier| {
            force_simd_tier(Some(tier));
            let mut codes = vec![0_u8; row.len()];
            let (min, scale) = encode_row(&row, &mut codes).unwrap();
            let mut back = vec![0.0_f32; row.len()];
            decode_row(&codes, min, scale, &mut back).unwrap();
            force_simd_tier(None);
            (codes, min.to_bits(), scale.to_bits(), back)
        };
        let scalar = run(SimdTier::Scalar);
        if detected >= SimdTier::Avx2 {
            assert_eq!(scalar, run(SimdTier::Avx2));
        }
        if detected >= SimdTier::Avx512 {
            assert_eq!(scalar, run(SimdTier::Avx512));
        }
        if detected >= SimdTier::Avx512Vnni {
            assert_eq!(scalar, run(SimdTier::Avx512Vnni));
        }
    }
}
