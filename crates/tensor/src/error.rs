//! Error type shared by all tensor kernels.

use std::fmt;

/// Errors produced by tensor construction and kernels.
///
/// All kernels are fallible and return [`crate::Result`]; shape problems are
/// reported rather than panicking so the runtime can surface configuration
/// mistakes (e.g. a mis-sized classifier head) as recoverable errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands disagree on a dimension.
    ShapeMismatch {
        /// Operation that failed (static name, e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// The provided buffer length does not match `rows * cols`.
    DataLength {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// A row/column index is out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Bound that was exceeded.
        bound: usize,
    },
    /// An operation requires a non-empty tensor.
    Empty {
        /// Operation that failed.
        op: &'static str,
    },
    /// Quantization block constraints were violated.
    Quantization {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(
                    f,
                    "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                    lhs.0, lhs.1, rhs.0, rhs.1
                )
            }
            TensorError::DataLength { expected, got } => {
                write!(
                    f,
                    "data length {got} does not match shape ({expected} expected)"
                )
            }
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound} required)")
            }
            TensorError::Empty { op } => write!(f, "{op} requires a non-empty tensor"),
            TensorError::Quantization { reason } => write!(f, "quantization error: {reason}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));

        let e = TensorError::DataLength {
            expected: 6,
            got: 5,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('5'));

        let e = TensorError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));

        let e = TensorError::Empty { op: "softmax" };
        assert!(e.to_string().contains("softmax"));

        let e = TensorError::Quantization {
            reason: "bad block".into(),
        };
        assert!(e.to_string().contains("bad block"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::Empty { op: "x" });
    }
}
