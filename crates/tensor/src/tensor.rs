//! The row-major 2-D tensor underlying all PRISM kernels.

use crate::{Result, TensorError};

/// A dense, row-major 2-D `f32` tensor.
///
/// PRISM is a prefill-only transformer runtime; every intermediate it
/// manipulates is naturally a `[tokens, features]` or `[rows, cols]` matrix,
/// so a 2-D tensor with explicit shape checks is sufficient and keeps the
/// kernel code easy to audit. Batches are represented as vertically stacked
/// rows plus per-sequence row ranges maintained by the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// Returns [`TensorError::DataLength`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::DataLength {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Builds a tensor by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the backing buffer in bytes (used by memory accounting).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor to `rows x cols` in place, reusing the backing
    /// buffer (no reallocation while the new size fits its capacity).
    ///
    /// The retained prefix of the buffer keeps its old values and any
    /// grown region is zero-filled, so callers that do not overwrite every
    /// element must clear the tensor themselves. This is the primitive
    /// scratch workspaces use to re-dress one allocation for many shapes.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Element accessor with bounds checks folded into debug assertions.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Immutable view of row `r`.
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `r >= rows`.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        Ok(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        Ok(&mut self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Copies rows `[start, end)` into a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        if start > end || end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: end,
                bound: self.rows,
            });
        }
        Ok(Tensor {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        })
    }

    /// Gathers the given rows (in order, duplicates allowed) into a new tensor.
    pub fn gather_rows(&self, indices: &[usize]) -> Result<Tensor> {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            if i >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    bound: self.rows,
                });
            }
            data.extend_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        Ok(Tensor {
            rows: indices.len(),
            cols: self.cols,
            data,
        })
    }

    /// Vertically concatenates tensors that share a column count.
    pub fn vcat(parts: &[&Tensor]) -> Result<Tensor> {
        if parts.is_empty() {
            return Err(TensorError::Empty { op: "vcat" });
        }
        let cols = parts[0].cols;
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vcat",
                    lhs: (parts[0].rows, cols),
                    rhs: p.shape(),
                });
            }
            rows += p.rows;
        }
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Copies columns `[c0, c1)` of all rows into a new tensor.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Result<Tensor> {
        if c0 > c1 || c1 > self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: c1,
                bound: self.cols,
            });
        }
        let w = c1 - c0;
        let mut data = Vec::with_capacity(self.rows * w);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        Ok(Tensor {
            rows: self.rows,
            cols: w,
            data,
        })
    }

    /// Writes `src` into columns starting at `c0` (row counts must match).
    pub fn set_cols(&mut self, c0: usize, src: &Tensor) -> Result<()> {
        if src.rows != self.rows || c0 + src.cols > self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "set_cols",
                lhs: self.shape(),
                rhs: src.shape(),
            });
        }
        for r in 0..self.rows {
            let dst = r * self.cols + c0;
            self.data[dst..dst + src.cols]
                .copy_from_slice(&src.data[r * src.cols..(r + 1) * src.cols]);
        }
        Ok(())
    }

    /// Returns the transpose as a new tensor.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Maximum absolute difference to another tensor of identical shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f32, f32::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(3, 2, 1.5);
        assert!(f.data().iter().all(|&x| x == 1.5));
        assert_eq!(f.size_bytes(), 24);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Tensor::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::DataLength {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(t.at(1, 2), 12.0);
    }

    #[test]
    fn row_access_and_bounds() {
        let t = Tensor::from_fn(2, 2, |r, c| (r + c) as f32);
        assert_eq!(t.row(1).unwrap(), &[1.0, 2.0]);
        assert!(t.row(2).is_err());
        let mut t = t;
        t.row_mut(0).unwrap()[0] = 9.0;
        assert_eq!(t.at(0, 0), 9.0);
        assert!(t.row_mut(5).is_err());
    }

    #[test]
    fn slice_and_gather_rows() {
        let t = Tensor::from_fn(4, 2, |r, _| r as f32);
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.at(0, 0), 1.0);
        assert!(t.slice_rows(3, 5).is_err());
        assert!(t.slice_rows(3, 2).is_err());

        let g = t.gather_rows(&[3, 0, 3]).unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.at(0, 0), 3.0);
        assert_eq!(g.at(1, 0), 0.0);
        assert_eq!(g.at(2, 1), 3.0);
        assert!(t.gather_rows(&[4]).is_err());
    }

    #[test]
    fn vcat_concatenates_and_checks() {
        let a = Tensor::full(1, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        let c = Tensor::vcat(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.at(0, 0), 1.0);
        assert_eq!(c.at(2, 1), 2.0);

        let bad = Tensor::full(1, 3, 0.0);
        assert!(Tensor::vcat(&[&a, &bad]).is_err());
        assert!(Tensor::vcat(&[]).is_err());
    }

    #[test]
    fn slice_and_set_cols() {
        let t = Tensor::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let s = t.slice_cols(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.data(), &[1.0, 2.0, 5.0, 6.0]);
        assert!(t.slice_cols(3, 5).is_err());
        assert!(t.slice_cols(3, 2).is_err());

        let mut t = t;
        let patch = Tensor::full(2, 2, 9.0);
        t.set_cols(2, &patch).unwrap();
        assert_eq!(t.row(0).unwrap(), &[0.0, 1.0, 9.0, 9.0]);
        assert_eq!(t.row(1).unwrap(), &[4.0, 5.0, 9.0, 9.0]);
        assert!(t.set_cols(3, &patch).is_err());
        let tall = Tensor::zeros(3, 1);
        assert!(t.set_cols(0, &tall).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let tt = t.transpose();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.at(2, 1), t.at(1, 2));
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn max_abs_diff_reports_largest_gap() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![1.0, 2.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        let c = Tensor::zeros(3, 1);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn empty_tensor_properties() {
        let t = Tensor::zeros(0, 4);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.rows(), 0);
    }
}
