//! Dense `f32` tensor kernels for the PRISM reranking runtime.
//!
//! This crate is the lowest substrate of the PRISM reproduction. It provides
//! exactly the operations a prefill-only transformer cross-encoder needs:
//!
//! * a row-major 2-D [`Tensor`] with shape-checked, `Result`-based kernels,
//! * matrix multiplication (plain and `B`-transposed) with optional
//!   row-parallel execution,
//! * row-wise softmax (with causal masking), RMS / layer normalization,
//!   SiLU / GELU / tanh activations,
//! * block-wise 4-bit weight quantization ([`quant::QuantMatrix`]) matching
//!   the W4A16 setup the paper uses for its `HF Quant` / `PRISM Quant`
//!   baselines,
//! * per-row affine 8-bit activation quantization ([`rowq`]) backing the
//!   compressed hidden-state spill format,
//! * integer GEMM micro-kernels ([`igemm`]) that multiply rowq-encoded
//!   activations against per-row symmetric i8 weights entirely in i32
//!   accumulators — the compute half of the int8 path.
//!
//! The only `unsafe` in this crate is the runtime-dispatched
//! `#[target_feature]` SIMD kernels (AVX2 / AVX-512), each guarded by a
//! feature check at the dispatch site.

pub mod error;
pub mod igemm;
pub mod ops;
pub mod quant;
pub mod rowq;
pub mod tensor;

pub use error::TensorError;
pub use igemm::{Int8Matrix, RowQuantBlock};
pub use quant::QuantMatrix;
pub use tensor::Tensor;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
