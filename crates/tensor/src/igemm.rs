//! Integer GEMM micro-kernels: u8 (rowq activations) × i8 (weights) with
//! i32 accumulators, rescaled once into f32 output.
//!
//! This is the compute half of the int8 path. The storage half
//! ([`crate::rowq`]) encodes a hidden-state row as
//! `x[j] ≈ min + scale · q[j]` with `q ∈ u8`; weights quantize per output
//! row as `w[o][j] ≈ sw[o] · wq[o][j]` with `wq ∈ i8` (symmetric, so no
//! zero-point term). With the integer accumulator
//! `acc[o] = Σ_j q[j] · wq[o][j]` and the precomputed row-code sum
//! `wsum[o] = Σ_j wq[o][j]`, the f32 product of one activation row with
//! one weight row is exactly
//!
//! ```text
//! y[o] = (scale · sw[o]) · acc[o]  +  (min · sw[o]) · wsum[o]
//! ```
//!
//! — the whole `k` reduction runs in integers and the affine rescale
//! happens once per output element. Because integer addition is exact and
//! associative, the accumulator value is independent of vectorization
//! width and summation order: **every SIMD tier is bit-identical by
//! construction** (unlike the f32 kernels, which need a fixed operation
//! order). The final rescale is one fixed scalar expression shared by all
//! tiers.
//!
//! # Kernel shape
//!
//! Unlike the f32 path's broadcast-FMA kernels (which need a packed
//! column panel), the integer kernels use the dot-product formulation:
//! both operands are already contiguous along `k` (activation code rows,
//! i8 weight rows), so there is no packing step at all. The microkernels
//! mirror the f32 `kernel_4`/`kernel_1` split: `kernel_4` amortizes each
//! weight-row load across four activation rows, `kernel_1` handles the
//! row tail. Per tier:
//!
//! * scalar — plain `i32` multiply-add reference;
//! * AVX2 — widen u8/i8 to i16 and `vpmaddwd` (`_mm256_madd_epi16`)
//!   pairwise into i32 lanes. The classic `maddubs` shortcut is *not*
//!   used: `_mm256_maddubs_epi16` saturates its i16 pair sums, which
//!   would silently clip `255 · 127 + 255 · 127 > i16::MAX`;
//! * AVX-512 — the same widen-and-madd at 512-bit width (needs AVX-512BW;
//!   without it the tier falls back to the AVX2 kernels);
//! * AVX-512 VNNI — `vpdpbusd` (`_mm512_dpbusd_epi32`), the native
//!   non-saturating u8×i8 four-way dot product into i32 lanes.
//!
//! # Overflow bound
//!
//! A u8×i8 product is at most `255 · 127 = 32385`, so `k` elements
//! accumulate to at most `k · 32385`. [`MAX_K`] keeps that (and the i16
//! pairwise sums of the madd path) strictly inside `i32`.

use crate::ops::{simd_tier, SimdTier};
use crate::quant::QuantMatrix;
use crate::rowq;
use crate::{Result, Tensor, TensorError};

/// Largest reduction depth the i32 accumulators support without overflow:
/// `floor((2^31 - 1) / (255 * 127))`.
pub const MAX_K: usize = (i32::MAX as usize) / (255 * 127);

/// Activation rows per microkernel invocation (mirrors the f32 `MR`).
const MRI: usize = 4;
/// Weight rows (output columns) per block (mirrors the f32 `NB`).
const NBI: usize = 64;

/// Multiply-accumulate count above which the integer GEMM fans out
/// across scoped threads (same scale as the f32 driver's threshold).
const PAR_MAC_THRESHOLD: usize = 1 << 22;

/// A rowq-encoded activation block: per-row `(min, scale)` affines plus
/// the u8 code matrix, the exact payload of an int8 spill slot.
///
/// This is the left-hand operand of the integer GEMM: hidden states
/// fetched from an int8 spill slot multiply quantized weights directly,
/// skipping the decode-to-f32 round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct RowQuantBlock {
    rows: usize,
    cols: usize,
    mins: Vec<f32>,
    scales: Vec<f32>,
    codes: Vec<u8>,
}

impl RowQuantBlock {
    /// An empty block (0×0), ready for [`Self::encode_into`].
    pub fn new() -> Self {
        RowQuantBlock {
            rows: 0,
            cols: 0,
            mins: Vec::new(),
            scales: Vec::new(),
            codes: Vec::new(),
        }
    }

    /// Encodes `t` row by row through [`rowq::encode_row`].
    pub fn encode(t: &Tensor) -> Result<Self> {
        let mut b = RowQuantBlock::new();
        b.encode_into(t)?;
        Ok(b)
    }

    /// Re-encodes `t` into this block, reusing its buffers.
    pub fn encode_into(&mut self, t: &Tensor) -> Result<()> {
        let (rows, cols) = t.shape();
        self.rows = rows;
        self.cols = cols;
        self.mins.resize(rows, 0.0);
        self.scales.resize(rows, 0.0);
        self.codes.resize(rows * cols, 0);
        for r in 0..rows {
            let (min, scale) = rowq::encode_row(t.row(r)?, &mut self.codes[r * cols..][..cols])?;
            self.mins[r] = min;
            self.scales[r] = scale;
        }
        Ok(())
    }

    /// Reassembles a block from raw parts (the spill-slot payload
    /// layout: `rows` mins, `rows` scales, `rows * cols` codes).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        mins: Vec<f32>,
        scales: Vec<f32>,
        codes: Vec<u8>,
    ) -> Result<Self> {
        if mins.len() != rows || scales.len() != rows || codes.len() != rows * cols {
            return Err(TensorError::DataLength {
                expected: rows * cols,
                got: codes.len(),
            });
        }
        Ok(RowQuantBlock {
            rows,
            cols,
            mins,
            scales,
            codes,
        })
    }

    /// Decodes every row back into `out` (resized to `rows × cols`).
    pub fn decode_into(&self, out: &mut Tensor) -> Result<()> {
        out.resize(self.rows, self.cols);
        let cols = self.cols;
        for r in 0..self.rows {
            rowq::decode_row(
                &self.codes[r * cols..][..cols],
                self.mins[r],
                self.scales[r],
                out.row_mut(r)?,
            )?;
        }
        Ok(())
    }

    /// Encoded rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Elements per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-row minima.
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The u8 code matrix, row-major.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Heap bytes held by the block (codes dominate: ~4x fewer bytes
    /// than the decoded f32 tensor).
    pub fn size_bytes(&self) -> usize {
        self.codes.len() + 4 * (self.mins.len() + self.scales.len())
    }

    /// Worst-case per-element reconstruction error across all rows.
    pub fn max_error(&self) -> f32 {
        self.scales
            .iter()
            .map(|&s| rowq::max_row_error(s))
            .fold(0.0, f32::max)
    }

    /// A new block holding `rows` (by index, in the given order) of this
    /// one — raw affine/code copies, **no decode or re-encode**, so the
    /// retained rows reconstruct bit-identically to the originals.
    /// Spill-slot compaction after pruning uses this to stay lossless:
    /// re-quantizing survivors would make their values depend on which
    /// chunk-mates happened to be pruned.
    pub fn gather_rows(&self, rows: &[usize]) -> Result<Self> {
        let cols = self.cols;
        let mut mins = Vec::with_capacity(rows.len());
        let mut scales = Vec::with_capacity(rows.len());
        let mut codes = Vec::with_capacity(rows.len() * cols);
        for &r in rows {
            if r >= self.rows {
                return Err(TensorError::DataLength {
                    expected: self.rows,
                    got: r,
                });
            }
            mins.push(self.mins[r]);
            scales.push(self.scales[r]);
            codes.extend_from_slice(&self.codes[r * cols..][..cols]);
        }
        RowQuantBlock::from_parts(rows.len(), cols, mins, scales, codes)
    }

    /// `self · w^T` into a fresh tensor (see [`Int8Matrix::matmul_rowq_into`]).
    pub fn matmul_int8(&self, w: &Int8Matrix) -> Result<Tensor> {
        let mut out = Tensor::zeros(0, 0);
        w.matmul_rowq_into(self, &mut out)?;
        Ok(out)
    }
}

impl Default for RowQuantBlock {
    fn default() -> Self {
        RowQuantBlock::new()
    }
}

/// Per-output-row symmetric i8 weight quantization: `w[o][j] ≈
/// scale[o] · data[o][j]` with codes clamped to `[-127, 127]`, plus the
/// precomputed per-row code sums the affine rescale needs.
///
/// Layout is row-major `[out_dim][in_dim]` — the `B^T` orientation every
/// projection in the forward pass uses — so weight rows are contiguous
/// along the reduction axis and the dot-product kernels read them
/// directly, with no packing stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
    wsums: Vec<i32>,
    /// VNNI-tiled copy of `data`: for each block of 16 weight rows, the
    /// `k` axis is grouped into dwords — `packed[block][k/4][lane][4]`
    /// — so `vpdpbusd` accumulates 16 output columns vertically with no
    /// horizontal reduction at all (the dot-product formulation spends
    /// roughly half its ops in `reduce_add` otherwise). Row tails pad
    /// with zero rows (exact: they contribute nothing). Built only when
    /// `k % 4 == 0`; otherwise empty and the madd path runs.
    packed: Vec<i8>,
}

impl Int8Matrix {
    /// Quantizes a row-major `[out_dim][in_dim]` weight matrix.
    pub fn quantize(w: &Tensor) -> Result<Self> {
        let (rows, cols) = w.shape();
        if cols > MAX_K {
            return Err(TensorError::Quantization {
                reason: format!("int8 GEMM reduction depth {cols} exceeds MAX_K {MAX_K}"),
            });
        }
        let mut data = vec![0_i8; rows * cols];
        let mut scales = vec![0.0_f32; rows];
        let mut wsums = vec![0_i32; rows];
        for r in 0..rows {
            let row = w.row(r)?;
            let absmax = row.iter().fold(0.0_f32, |m, &x| m.max(x.abs()));
            if absmax == 0.0 {
                continue;
            }
            let scale = absmax / 127.0;
            let inv = 127.0 / absmax;
            let mut sum = 0_i32;
            for (q, &x) in data[r * cols..][..cols].iter_mut().zip(row) {
                let v = (x * inv).round().clamp(-127.0, 127.0) as i32;
                sum += v;
                *q = v as i8;
            }
            scales[r] = scale;
            wsums[r] = sum;
        }
        let packed = pack_vnni(&data, rows, cols);
        Ok(Int8Matrix {
            rows,
            cols,
            data,
            scales,
            wsums,
            packed,
        })
    }

    /// Quantizes the dequantized form of a 4-bit [`QuantMatrix`] — the
    /// bridge from streamed W4 weights to the integer compute path.
    pub fn from_quant(q: &QuantMatrix) -> Result<Self> {
        Int8Matrix::quantize(&q.dequantize()?)
    }

    /// Output features (weight rows).
    pub fn out_dim(&self) -> usize {
        self.rows
    }

    /// Input features (reduction depth `k`).
    pub fn in_dim(&self) -> usize {
        self.cols
    }

    /// Heap bytes of codes (row-major plus the VNNI tiling) and per-row
    /// metadata.
    pub fn size_bytes(&self) -> usize {
        self.data.len() + self.packed.len() + 8 * self.scales.len()
    }

    /// Reconstructs the f32 weights (tests and calibration only).
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_fn(self.rows, self.cols, |r, c| {
            self.scales[r] * f32::from(self.data[r * self.cols + c])
        })
    }

    /// Worst-case per-element weight quantization error: half an i8 step
    /// of the widest row.
    pub fn max_quantization_error(&self) -> f32 {
        self.scales.iter().fold(0.0_f32, |m, &s| m.max(s)) * 0.5
    }

    /// `out[m × out_dim] = decode(block) · W^T`, computed entirely in
    /// integers and rescaled once per output element.
    ///
    /// The left operand stays in its rowq encoding — this is the
    /// spilled-hidden-state fast path that skips the f32 decode round
    /// trip. `out` is resized and fully overwritten.
    pub fn matmul_rowq_into(&self, block: &RowQuantBlock, out: &mut Tensor) -> Result<()> {
        if block.cols() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matmul_rowq",
                lhs: (block.rows(), block.cols()),
                rhs: (self.rows, self.cols),
            });
        }
        let m = block.rows();
        out.resize(m, self.rows);
        self.matmul_codes_into(
            block.codes(),
            block.mins(),
            block.scales(),
            m,
            out.data_mut(),
        )
    }

    /// Slice-level variant of [`Self::matmul_rowq_into`] for callers
    /// holding codes and affines in scratch buffers (`codes` is
    /// `m × in_dim` row-major; `out` must hold `m × out_dim`).
    pub fn matmul_codes_into(
        &self,
        codes: &[u8],
        mins: &[f32],
        scales: &[f32],
        m: usize,
        out: &mut [f32],
    ) -> Result<()> {
        let k = self.cols;
        let n = self.rows;
        if codes.len() < m * k || mins.len() < m || scales.len() < m {
            return Err(TensorError::DataLength {
                expected: m * k,
                got: codes.len(),
            });
        }
        if out.len() < m * n {
            return Err(TensorError::DataLength {
                expected: m * n,
                got: out.len(),
            });
        }
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            out[..m * n].fill(0.0);
            return Ok(());
        }
        let threads = if m * k * n < PAR_MAC_THRESHOLD {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |t| t.get().min(8))
        };
        if threads <= 1 || m <= MRI {
            igemm_rows(self, codes, mins, scales, m, out);
            return Ok(());
        }
        // Row-parallel: each thread owns a disjoint band of activation
        // rows (rounded to the microkernel height) and the matching
        // slice of `out` — same work split as the f32 `gemm_parallel`.
        let band = m.div_ceil(threads).div_ceil(MRI) * MRI;
        std::thread::scope(|scope| {
            let mut rest = &mut out[..m * n];
            let mut r0 = 0;
            while r0 < m {
                let rows = band.min(m - r0);
                let (chunk, tail) = rest.split_at_mut(rows * n);
                rest = tail;
                let codes = &codes[r0 * k..][..rows * k];
                let mins = &mins[r0..r0 + rows];
                let scales = &scales[r0..r0 + rows];
                scope.spawn(move || igemm_rows(self, codes, mins, scales, rows, chunk));
                r0 += rows;
            }
        });
        Ok(())
    }
}

/// Weight rows per VNNI tile block — one i32 lane each in a 512-bit
/// accumulator.
const VNNI_LANES: usize = 16;

/// Builds the VNNI tiling of a row-major `[rows][cols]` i8 matrix:
/// blocks of [`VNNI_LANES`] weight rows, `cols / 4` dword groups each,
/// laid out `[block][group][lane][4]` so one 64-byte load feeds
/// `vpdpbusd` for 16 output columns. Returns an empty vec when `cols`
/// is not a multiple of 4 (the madd kernels handle that case).
fn pack_vnni(data: &[i8], rows: usize, cols: usize) -> Vec<i8> {
    if cols == 0 || !cols.is_multiple_of(4) || rows == 0 {
        return Vec::new();
    }
    let blocks = rows.div_ceil(VNNI_LANES);
    let mut out = vec![0_i8; blocks * VNNI_LANES * cols];
    for (r, row) in data.chunks_exact(cols).enumerate() {
        let block = r / VNNI_LANES;
        let lane = r % VNNI_LANES;
        let base = block * VNNI_LANES * cols + lane * 4;
        for (g, quad) in row.chunks_exact(4).enumerate() {
            out[base + g * VNNI_LANES * 4..][..4].copy_from_slice(quad);
        }
    }
    out
}

/// Single-threaded integer GEMM over a band of activation rows:
/// microkernels fill an `i32` register tile per `(4 rows × NBI weight
/// rows)` block, then the shared scalar rescale folds the affines into
/// `out`. `out` has leading dimension `n = w.rows`.
fn igemm_rows(
    w: &Int8Matrix,
    codes: &[u8],
    mins: &[f32],
    scales: &[f32],
    m: usize,
    out: &mut [f32],
) {
    let k = w.cols;
    let n = w.rows;
    let tier = simd_tier();
    let mut tile = [0_i32; MRI * NBI];
    let mut j0 = 0;
    while j0 < n {
        let jn = NBI.min(n - j0);
        let mut i = 0;
        while i + MRI <= m {
            kernel_dispatch::<true>(tier, codes, k, w, i, j0, jn, &mut tile);
            rescale_tile(&tile, w, mins, scales, i, MRI, j0, jn, out, n);
            i += MRI;
        }
        while i < m {
            kernel_dispatch::<false>(tier, codes, k, w, i, j0, jn, &mut tile);
            rescale_tile(&tile, w, mins, scales, i, 1, j0, jn, out, n);
            i += 1;
        }
        j0 += jn;
    }
}

/// Routes one tile onto the widest integer kernel the tier allows.
/// `FOUR` selects the 4-row block kernel vs. the 1-row tail kernel.
#[allow(unused_variables, clippy::too_many_arguments)]
fn kernel_dispatch<const FOUR: bool>(
    tier: SimdTier,
    codes: &[u8],
    k: usize,
    w: &Int8Matrix,
    i: usize,
    j0: usize,
    jn: usize,
    tile: &mut [i32; MRI * NBI],
) {
    #[cfg(target_arch = "x86_64")]
    {
        if tier >= SimdTier::Avx512Vnni && !w.packed.is_empty() {
            // SAFETY: the tier is clamped to runtime-detected features
            // (avx512f+bw+vnni); the packed tiling exists (k % 4 == 0).
            unsafe {
                if FOUR {
                    x86::kernel_4_vnni(codes, k, &w.packed, i, j0, jn, tile);
                } else {
                    x86::kernel_1_vnni(codes, k, &w.packed, i, j0, jn, tile);
                }
            }
            return;
        }
        // Narrow reductions fall back to narrower kernels: a 32-lane
        // madd body would leave k < 32 entirely to the scalar tail
        // (the mini models run hidden_dim 32). Integer accumulation is
        // exact, so swapping kernels never changes the result. A VNNI
        // tier without a packed tiling (k % 4 != 0) lands on the madd
        // path here too.
        let tier = if k >= 32 {
            tier.min(SimdTier::Avx512)
        } else if k >= 16 {
            tier.min(SimdTier::Avx2)
        } else {
            SimdTier::Scalar
        };
        // The 512-bit madd path needs AVX-512BW on top of the tier's
        // avx512f (BW is not part of the f32 tier's contract).
        if tier >= SimdTier::Avx512 && std::arch::is_x86_feature_detected!("avx512bw") {
            // SAFETY: avx512f via the tier, avx512bw verified just above.
            unsafe {
                if FOUR {
                    x86::kernel_4_avx512(codes, k, &w.data, i, j0, jn, tile);
                } else {
                    x86::kernel_1_avx512(codes, k, &w.data, i, j0, jn, tile);
                }
            }
            return;
        }
        if tier >= SimdTier::Avx2 {
            // SAFETY: the tier implies runtime-verified avx2.
            unsafe {
                if FOUR {
                    x86::kernel_4_avx2(codes, k, &w.data, i, j0, jn, tile);
                } else {
                    x86::kernel_1_avx2(codes, k, &w.data, i, j0, jn, tile);
                }
            }
            return;
        }
    }
    if FOUR {
        kernel_4(codes, k, &w.data, i, j0, jn, tile);
    } else {
        kernel_1(codes, k, &w.data, i, j0, jn, tile);
    }
}

/// The single rescale point shared by every tier: folds the activation
/// affine `(min, scale)` and the weight row scale into each integer
/// accumulator. One fixed scalar expression, so f32 results are
/// bit-identical regardless of which integer kernel filled the tile.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn rescale_tile(
    tile: &[i32; MRI * NBI],
    w: &Int8Matrix,
    mins: &[f32],
    scales: &[f32],
    i: usize,
    rows: usize,
    j0: usize,
    jn: usize,
    out: &mut [f32],
    ldo: usize,
) {
    for r in 0..rows {
        let amin = mins[i + r];
        let ascale = scales[i + r];
        let orow = &mut out[(i + r) * ldo + j0..][..jn];
        let trow = &tile[r * NBI..][..jn];
        for (jj, (o, &acc)) in orow.iter_mut().zip(trow).enumerate() {
            let wj = j0 + jj;
            *o = (ascale * w.scales[wj]) * acc as f32 + (amin * w.scales[wj]) * w.wsums[wj] as f32;
        }
    }
}

/// Scalar reference 4-row microkernel: each weight row is read once and
/// dotted against four activation code rows.
fn kernel_4(
    codes: &[u8],
    k: usize,
    wdata: &[i8],
    i: usize,
    j0: usize,
    jn: usize,
    tile: &mut [i32; MRI * NBI],
) {
    let a0 = &codes[i * k..][..k];
    let a1 = &codes[(i + 1) * k..][..k];
    let a2 = &codes[(i + 2) * k..][..k];
    let a3 = &codes[(i + 3) * k..][..k];
    for jj in 0..jn {
        let wrow = &wdata[(j0 + jj) * k..][..k];
        let mut acc = [0_i32; MRI];
        for p in 0..k {
            let wv = i32::from(wrow[p]);
            acc[0] += i32::from(a0[p]) * wv;
            acc[1] += i32::from(a1[p]) * wv;
            acc[2] += i32::from(a2[p]) * wv;
            acc[3] += i32::from(a3[p]) * wv;
        }
        for (r, &v) in acc.iter().enumerate() {
            tile[r * NBI + jj] = v;
        }
    }
}

/// Scalar reference 1-row tail kernel.
fn kernel_1(
    codes: &[u8],
    k: usize,
    wdata: &[i8],
    i: usize,
    j0: usize,
    jn: usize,
    tile: &mut [i32; MRI * NBI],
) {
    let a0 = &codes[i * k..][..k];
    for jj in 0..jn {
        let wrow = &wdata[(j0 + jj) * k..][..k];
        let mut acc = 0_i32;
        for p in 0..k {
            acc += i32::from(a0[p]) * i32::from(wrow[p]);
        }
        tile[jj] = acc;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MRI, NBI, VNNI_LANES};
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Horizontal i32 lane sum (exact for integers, order-free).
    #[inline(always)]
    unsafe fn hsum_epi32_256(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_01_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// One activation row × one weight row over the vector body
    /// (`k16 = k - k % 16` elements) via widen-to-i16 + `vpmaddwd`.
    /// Pair sums reach at most `2 · 255 · 127 < 2^16`, comfortably
    /// inside i32, so accumulation is exact (no `maddubs` saturation).
    #[inline(always)]
    unsafe fn dot_madd_256(a: *const u8, w: *const i8, k16: usize) -> i32 {
        let mut acc = _mm256_setzero_si256();
        let mut p = 0;
        while p < k16 {
            let av = _mm256_cvtepu8_epi16(_mm_loadu_si128(a.add(p).cast()));
            let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(w.add(p).cast()));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, wv));
            p += 16;
        }
        hsum_epi32_256(acc)
    }

    /// Four activation rows × one weight row: the weight vector is
    /// loaded (and widened) once per `k`-step and shared by four
    /// independent accumulator chains, which both amortizes the loads
    /// and breaks the madd latency chain the one-row dot serializes on.
    #[inline(always)]
    unsafe fn dot4_madd_256(a: [*const u8; 4], w: *const i8, k16: usize) -> [i32; 4] {
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        let mut p = 0;
        while p < k16 {
            let wv = _mm256_cvtepi8_epi16(_mm_loadu_si128(w.add(p).cast()));
            let a0 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a[0].add(p).cast()));
            let a1 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a[1].add(p).cast()));
            let a2 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a[2].add(p).cast()));
            let a3 = _mm256_cvtepu8_epi16(_mm_loadu_si128(a[3].add(p).cast()));
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, wv));
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a1, wv));
            acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(a2, wv));
            acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(a3, wv));
            p += 16;
        }
        [
            hsum_epi32_256(acc0),
            hsum_epi32_256(acc1),
            hsum_epi32_256(acc2),
            hsum_epi32_256(acc3),
        ]
    }

    #[inline(always)]
    unsafe fn dot_madd_512(a: *const u8, w: *const i8, k32: usize) -> i32 {
        let mut acc = _mm512_setzero_si512();
        let mut p = 0;
        while p < k32 {
            let av = _mm512_cvtepu8_epi16(_mm256_loadu_si256(a.add(p).cast()));
            let wv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(w.add(p).cast()));
            acc = _mm512_add_epi32(acc, _mm512_madd_epi16(av, wv));
            p += 32;
        }
        _mm512_reduce_add_epi32(acc)
    }

    #[inline(always)]
    unsafe fn dot4_madd_512(a: [*const u8; 4], w: *const i8, k32: usize) -> [i32; 4] {
        let mut acc0 = _mm512_setzero_si512();
        let mut acc1 = _mm512_setzero_si512();
        let mut acc2 = _mm512_setzero_si512();
        let mut acc3 = _mm512_setzero_si512();
        let mut p = 0;
        while p < k32 {
            let wv = _mm512_cvtepi8_epi16(_mm256_loadu_si256(w.add(p).cast()));
            let a0 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(a[0].add(p).cast()));
            let a1 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(a[1].add(p).cast()));
            let a2 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(a[2].add(p).cast()));
            let a3 = _mm512_cvtepu8_epi16(_mm256_loadu_si256(a[3].add(p).cast()));
            acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(a0, wv));
            acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(a1, wv));
            acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(a2, wv));
            acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(a3, wv));
            p += 32;
        }
        [
            _mm512_reduce_add_epi32(acc0),
            _mm512_reduce_add_epi32(acc1),
            _mm512_reduce_add_epi32(acc2),
            _mm512_reduce_add_epi32(acc3),
        ]
    }

    /// Packed-tile `vpdpbusd` kernels: weights come from
    /// [`super::Int8Matrix`]'s `packed` layout, where each block of 16
    /// output columns is interleaved along `k` in dword groups
    /// (`panel[g][lane][4]`). One `_mm512_loadu_si512` pulls the next
    /// four `k`-positions of *sixteen* weight rows, the activation dword
    /// broadcasts across lanes, and `vpdpbusd` accumulates 16 output
    /// columns **vertically** — zero horizontal reductions, versus one
    /// `_mm512_reduce_add_epi32` per output element in the dot-product
    /// formulation. Requires `k % 4 == 0`, which holds whenever the
    /// packed tiling exists; rows padded into the final partial block
    /// are zero, so their lanes accumulate exactly 0 and the 16-lane
    /// store stays inside the 64-wide tile row.
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn kernel_4_vnni(
        codes: &[u8],
        k: usize,
        packed: &[i8],
        i: usize,
        j0: usize,
        jn: usize,
        tile: &mut [i32; MRI * NBI],
    ) {
        let a = [
            codes[i * k..].as_ptr(),
            codes[(i + 1) * k..].as_ptr(),
            codes[(i + 2) * k..].as_ptr(),
            codes[(i + 3) * k..].as_ptr(),
        ];
        let mut jb = 0;
        while jb < jn {
            let panel = packed[((j0 + jb) / VNNI_LANES) * (VNNI_LANES * k)..].as_ptr();
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut acc2 = _mm512_setzero_si512();
            let mut acc3 = _mm512_setzero_si512();
            for g in 0..k / 4 {
                let wv = _mm512_loadu_si512(panel.add(g * 64).cast());
                let a0 = _mm512_set1_epi32((a[0].add(g * 4) as *const i32).read_unaligned());
                let a1 = _mm512_set1_epi32((a[1].add(g * 4) as *const i32).read_unaligned());
                let a2 = _mm512_set1_epi32((a[2].add(g * 4) as *const i32).read_unaligned());
                let a3 = _mm512_set1_epi32((a[3].add(g * 4) as *const i32).read_unaligned());
                acc0 = _mm512_dpbusd_epi32(acc0, a0, wv);
                acc1 = _mm512_dpbusd_epi32(acc1, a1, wv);
                acc2 = _mm512_dpbusd_epi32(acc2, a2, wv);
                acc3 = _mm512_dpbusd_epi32(acc3, a3, wv);
            }
            _mm512_storeu_si512(tile.as_mut_ptr().add(jb).cast(), acc0);
            _mm512_storeu_si512(tile.as_mut_ptr().add(NBI + jb).cast(), acc1);
            _mm512_storeu_si512(tile.as_mut_ptr().add(2 * NBI + jb).cast(), acc2);
            _mm512_storeu_si512(tile.as_mut_ptr().add(3 * NBI + jb).cast(), acc3);
            jb += VNNI_LANES;
        }
    }

    /// Single-activation-row tail of [`kernel_4_vnni`].
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn kernel_1_vnni(
        codes: &[u8],
        k: usize,
        packed: &[i8],
        i: usize,
        j0: usize,
        jn: usize,
        tile: &mut [i32; MRI * NBI],
    ) {
        let a = codes[i * k..].as_ptr();
        let mut jb = 0;
        while jb < jn {
            let panel = packed[((j0 + jb) / VNNI_LANES) * (VNNI_LANES * k)..].as_ptr();
            let mut acc = _mm512_setzero_si512();
            for g in 0..k / 4 {
                let wv = _mm512_loadu_si512(panel.add(g * 64).cast());
                let av = _mm512_set1_epi32((a.add(g * 4) as *const i32).read_unaligned());
                acc = _mm512_dpbusd_epi32(acc, av, wv);
            }
            _mm512_storeu_si512(tile.as_mut_ptr().add(jb).cast(), acc);
            jb += VNNI_LANES;
        }
    }

    #[inline(always)]
    fn scalar_tail(a: &[u8], w: &[i8], from: usize) -> i32 {
        let mut acc = 0_i32;
        for p in from..a.len() {
            acc += i32::from(a[p]) * i32::from(w[p]);
        }
        acc
    }

    macro_rules! int8_kernels {
        ($k4:ident, $k1:ident, $dot4:ident, $dot:ident, $width:literal, $feat:literal) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $k4(
                codes: &[u8],
                k: usize,
                wdata: &[i8],
                i: usize,
                j0: usize,
                jn: usize,
                tile: &mut [i32; MRI * NBI],
            ) {
                let kv = k - k % $width;
                let rows: [&[u8]; MRI] = [
                    &codes[i * k..][..k],
                    &codes[(i + 1) * k..][..k],
                    &codes[(i + 2) * k..][..k],
                    &codes[(i + 3) * k..][..k],
                ];
                let ptrs = [
                    rows[0].as_ptr(),
                    rows[1].as_ptr(),
                    rows[2].as_ptr(),
                    rows[3].as_ptr(),
                ];
                for jj in 0..jn {
                    let wrow = &wdata[(j0 + jj) * k..][..k];
                    let acc = $dot4(ptrs, wrow.as_ptr(), kv);
                    for (r, a) in rows.iter().enumerate() {
                        tile[r * NBI + jj] = acc[r] + scalar_tail(a, wrow, kv);
                    }
                }
            }

            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $k1(
                codes: &[u8],
                k: usize,
                wdata: &[i8],
                i: usize,
                j0: usize,
                jn: usize,
                tile: &mut [i32; MRI * NBI],
            ) {
                let kv = k - k % $width;
                let a = &codes[i * k..][..k];
                for jj in 0..jn {
                    let wrow = &wdata[(j0 + jj) * k..][..k];
                    tile[jj] = $dot(a.as_ptr(), wrow.as_ptr(), kv) + scalar_tail(a, wrow, kv);
                }
            }
        };
    }

    int8_kernels!(
        kernel_4_avx2,
        kernel_1_avx2,
        dot4_madd_256,
        dot_madd_256,
        16,
        "avx2"
    );
    int8_kernels!(
        kernel_4_avx512,
        kernel_1_avx512,
        dot4_madd_512,
        dot_madd_512,
        32,
        "avx512f,avx512bw"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{detected_simd_tier, force_simd_tier};

    fn mat(rows: usize, cols: usize, seed: usize) -> Tensor {
        Tensor::from_fn(rows, cols, |r, c| {
            (((r * 31 + c * 17 + seed) % 23) as f32) * 0.17 - 1.8
        })
    }

    /// Naive f64 reference of `decode(block) · dequantize(w)^T`.
    fn reference(block: &RowQuantBlock, w: &Int8Matrix) -> Tensor {
        let mut x = Tensor::zeros(0, 0);
        block.decode_into(&mut x).unwrap();
        let wd = w.dequantize();
        Tensor::from_fn(x.rows(), wd.rows(), |r, o| {
            (0..x.cols())
                .map(|j| f64::from(x.at(r, j)) * f64::from(wd.at(o, j)))
                .sum::<f64>() as f32
        })
    }

    #[test]
    fn int8_matmul_matches_dequantized_reference() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 17, 5),
            (3, 64, 64),
            (4, 65, 1),
            (5, 63, 65),
            (7, 128, 33),
            (8, 100, 70),
        ] {
            let x = mat(m, k, 3);
            let w = Int8Matrix::quantize(&mat(n, k, 11)).unwrap();
            let block = RowQuantBlock::encode(&x).unwrap();
            let got = block.matmul_int8(&w).unwrap();
            let want = reference(&block, &w);
            // The integer path computes the *exact* product of the two
            // quantized operands; only the final f32 rescale rounds.
            let scale_bound: f32 =
                1e-5 * k as f32 * (1.0 + block.max_error() + w.max_quantization_error());
            assert!(
                got.max_abs_diff(&want).unwrap() <= scale_bound + 1e-4,
                "{m}x{k}x{n} diverged"
            );
        }
    }

    #[test]
    fn tiers_are_bit_identical() {
        let detected = detected_simd_tier();
        let x = mat(13, 97, 7);
        let w = Int8Matrix::quantize(&mat(41, 97, 19)).unwrap();
        let block = RowQuantBlock::encode(&x).unwrap();
        let run = |tier| {
            force_simd_tier(Some(tier));
            let out = block.matmul_int8(&w).unwrap();
            force_simd_tier(None);
            out.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        let scalar = run(SimdTier::Scalar);
        for tier in [SimdTier::Avx2, SimdTier::Avx512, SimdTier::Avx512Vnni] {
            if detected >= tier {
                assert_eq!(scalar, run(tier), "{tier:?} diverged from scalar");
            }
        }
    }

    #[test]
    fn parallel_band_split_matches_single_thread() {
        // Exceed PAR_MAC_THRESHOLD so the scoped-thread path runs.
        let m = 96;
        let k = 256;
        let n = 256;
        assert!(m * k * n >= PAR_MAC_THRESHOLD);
        let x = mat(m, k, 5);
        let w = Int8Matrix::quantize(&mat(n, k, 23)).unwrap();
        let block = RowQuantBlock::encode(&x).unwrap();
        let par = block.matmul_int8(&w).unwrap();
        // Single-threaded reference through the same kernels.
        let mut serial = vec![0.0_f32; m * n];
        igemm_rows(
            &w,
            block.codes(),
            block.mins(),
            block.scales(),
            m,
            &mut serial,
        );
        assert_eq!(par.data(), &serial[..], "threading must not change bits");
    }

    #[test]
    fn block_round_trips_and_reports_errors() {
        let x = mat(6, 40, 1);
        let mut block = RowQuantBlock::new();
        block.encode_into(&x).unwrap();
        let mut back = Tensor::zeros(0, 0);
        block.decode_into(&mut back).unwrap();
        assert_eq!(back.shape(), x.shape());
        assert!(x.max_abs_diff(&back).unwrap() <= block.max_error() + 1e-6);
        assert!(block.size_bytes() < x.size_bytes() / 2);

        // Shape mismatch and bad parts are rejected.
        let w = Int8Matrix::quantize(&mat(4, 39, 2)).unwrap();
        assert!(block.matmul_int8(&w).is_err());
        assert!(RowQuantBlock::from_parts(2, 3, vec![0.0; 2], vec![0.0; 1], vec![0; 6]).is_err());
        let rt = RowQuantBlock::from_parts(
            block.rows(),
            block.cols(),
            block.mins().to_vec(),
            block.scales().to_vec(),
            block.codes().to_vec(),
        )
        .unwrap();
        assert_eq!(rt, block);
    }

    #[test]
    fn quantize_handles_zero_rows_and_quant_bridge() {
        let mut w = mat(5, 32, 9);
        for v in w.row_mut(2).unwrap() {
            *v = 0.0;
        }
        let q = Int8Matrix::quantize(&w).unwrap();
        assert_eq!(q.dequantize().row(2).unwrap(), &[0.0; 32][..]);
        assert!(w.max_abs_diff(&q.dequantize()).unwrap() <= q.max_quantization_error() + 1e-6);

        let q4 = QuantMatrix::quantize(&w).unwrap();
        let bridged = Int8Matrix::from_quant(&q4).unwrap();
        assert_eq!(bridged.out_dim(), 5);
        assert_eq!(bridged.in_dim(), 32);

        let too_deep = Tensor::zeros(1, MAX_K + 1);
        assert!(Int8Matrix::quantize(&too_deep).is_err());
    }
}
