//! Property-based tests for tensor kernels and quantization invariants.

use prism_tensor::igemm::{Int8Matrix, RowQuantBlock};
use prism_tensor::{ops, rowq, QuantMatrix, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-8.0_f32..8.0, r * c)
            .prop_map(move |v| Tensor::from_vec(r, c, v).expect("sized to shape"))
    })
}

proptest! {
    #[test]
    fn matmul_is_linear_in_lhs(
        a in tensor_strategy(6, 6),
        s in -4.0_f32..4.0,
    ) {
        let b = Tensor::from_fn(a.cols(), 5, |r, c| ((r * 5 + c) as f32 * 0.3).sin());
        let mut sa = a.clone();
        ops::scale_inplace(&mut sa, s);
        let left = ops::matmul(&sa, &b).unwrap();
        let mut right = ops::matmul(&a, &b).unwrap();
        ops::scale_inplace(&mut right, s);
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-2);
    }

    #[test]
    fn matmul_transb_agrees_with_transpose(a in tensor_strategy(5, 7)) {
        let b = Tensor::from_fn(4, a.cols(), |r, c| ((r + 2 * c) as f32 * 0.2).cos());
        let direct = ops::matmul_transb(&a, &b).unwrap();
        let explicit = ops::matmul(&a, &b.transpose()).unwrap();
        prop_assert!(direct.max_abs_diff(&explicit).unwrap() < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(mut a in tensor_strategy(6, 9)) {
        ops::softmax_rows_inplace(&mut a).unwrap();
        for r in 0..a.rows() {
            let row = a.row(r).unwrap();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(v in prop::collection::vec(-6.0_f32..6.0, 2..12), shift in -5.0_f32..5.0) {
        let n = v.len();
        let mut a = Tensor::from_vec(1, n, v.clone()).unwrap();
        let mut b = Tensor::from_vec(1, n, v.iter().map(|x| x + shift).collect()).unwrap();
        ops::softmax_rows_inplace(&mut a).unwrap();
        ops::softmax_rows_inplace(&mut b).unwrap();
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn rms_norm_produces_unit_rms(mut a in tensor_strategy(4, 16)) {
        // Avoid the degenerate all-zero row.
        if a.data().iter().all(|&x| x.abs() < 1e-3) {
            a.data_mut()[0] = 1.0;
        }
        let gain = vec![1.0_f32; a.cols()];
        ops::rms_norm_inplace(&mut a, &gain, 1e-8).unwrap();
        for r in 0..a.rows() {
            let row = a.row(r).unwrap();
            let ms = row.iter().map(|x| x * x).sum::<f32>() / row.len() as f32;
            // Rows that were ~0 stay ~0; others normalize to unit RMS.
            prop_assert!(ms < 1.0 + 1e-3);
        }
    }

    #[test]
    fn quantization_error_within_block_bound(t in tensor_strategy(4, 40)) {
        let q = QuantMatrix::quantize(&t).unwrap();
        let d = q.dequantize().unwrap();
        let bound = q.max_quantization_error() + 1e-5;
        prop_assert!(t.max_abs_diff(&d).unwrap() <= bound);
    }

    #[test]
    fn quantization_is_idempotent(t in tensor_strategy(3, 33)) {
        // Quantizing an already-dequantized matrix must be lossless
        // (all values land exactly on quantization grid points).
        let q1 = QuantMatrix::quantize(&t).unwrap();
        let d1 = q1.dequantize().unwrap();
        let q2 = QuantMatrix::quantize(&d1).unwrap();
        let d2 = q2.dequantize().unwrap();
        prop_assert!(d1.max_abs_diff(&d2).unwrap() <= 2e-3);
    }

    #[test]
    fn gather_then_vcat_round_trips(t in tensor_strategy(6, 4)) {
        let top = t.slice_rows(0, t.rows() / 2).unwrap();
        let bottom = t.slice_rows(t.rows() / 2, t.rows()).unwrap();
        let back = Tensor::vcat(&[&top, &bottom]).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn mean_rows_within_minmax(t in tensor_strategy(5, 5)) {
        let m = ops::mean_rows(&t).unwrap();
        for c in 0..t.cols() {
            let col: Vec<f32> = (0..t.rows()).map(|r| t.at(r, c)).collect();
            let lo = col.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = col.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(m.at(0, c) >= lo - 1e-4 && m.at(0, c) <= hi + 1e-4);
        }
    }

    #[test]
    fn tiled_matmul_equals_naive_reference(
        // Shapes deliberately straddle the m=4 microkernel, the KC=64
        // k-panel and the NB=64 packed-panel width, including m=1 rows.
        m in 1_usize..=9,
        k in 1_usize..=130,
        n in 1_usize..=130,
        seed in 0_u32..1000,
    ) {
        let a = Tensor::from_fn(m, k, |r, c| {
            (((r * 31 + c * 17 + seed as usize) % 23) as f32) * 0.17 - 1.8
        });
        let b = Tensor::from_fn(k, n, |r, c| {
            (((r * 13 + c * 7 + seed as usize) % 19) as f32) * 0.21 - 1.9
        });
        let tiled = ops::matmul(&a, &b).unwrap();
        let naive = naive_matmul(&a, &b);
        let tol = 1e-5 * k as f32 + 1e-5;
        prop_assert!(
            tiled.max_abs_diff(&naive).unwrap() < tol,
            "matmul {m}x{k}x{n} diverged from naive reference"
        );
        let tiled_t = ops::matmul_transb(&a, &b.transpose()).unwrap();
        prop_assert!(
            tiled_t.max_abs_diff(&naive).unwrap() < tol,
            "matmul_transb {m}x{k}x{n} diverged from naive reference"
        );
    }

    #[test]
    fn empty_and_degenerate_shapes_are_handled(m in 0_usize..3, k in 0_usize..3, n in 0_usize..3) {
        let a = Tensor::zeros(m, k);
        let b = Tensor::zeros(k, n);
        let c = ops::matmul(&a, &b).unwrap();
        prop_assert_eq!(c.shape(), (m, n));
        prop_assert!(c.data().iter().all(|&x| x == 0.0));
        let bt = Tensor::zeros(n, k);
        let ct = ops::matmul_transb(&a, &bt).unwrap();
        prop_assert_eq!(ct.shape(), (m, n));
    }

    #[test]
    fn fused_quant_matmul_matches_dequantize_then_dense(
        m in 1_usize..=6,
        k in 1_usize..=100,
        n in 1_usize..=70,
        seed in 0_u32..1000,
    ) {
        let w = Tensor::from_fn(n, k, |r, c| {
            (((r * 29 + c * 11 + seed as usize) % 17) as f32) * 0.13 - 1.0
        });
        let x = Tensor::from_fn(m, k, |r, c| {
            (((r * 7 + c * 3 + seed as usize) % 13) as f32) * 0.19 - 1.1
        });
        let q = QuantMatrix::quantize(&w).unwrap();
        // The fused nibble-decode path and "dequantize then dense" run the
        // same tiled kernel over identical panel values.
        let fused = q.matmul_transb(&x).unwrap();
        let dense = ops::matmul_transb(&x, &q.dequantize().unwrap()).unwrap();
        prop_assert!(
            fused.max_abs_diff(&dense).unwrap() < 1e-5,
            "fused quant matmul {m}x{k}x{n} diverged from dequantized reference"
        );
    }

    #[test]
    fn rowq_scalar_and_simd_tiers_agree_on_awkward_lengths(
        // Lengths deliberately straddle every vector width in play:
        // 0 and 1 (pure tail), non-multiples of 16/32/64, and a span
        // past the widest 64-byte VNNI stride.
        n in 0_usize..=130,
        seed in 0_u32..1000,
    ) {
        let row: Vec<f32> = (0..n)
            .map(|i| ((i as f32 + seed as f32) * 0.37).sin() * 4.0 - 0.9)
            .collect();
        let detected = ops::detected_simd_tier();
        let run = |tier| {
            ops::force_simd_tier(Some(tier));
            let mut codes = vec![0_u8; n];
            let (min, scale) = rowq::encode_row(&row, &mut codes).unwrap();
            let mut back = vec![0.0_f32; n];
            rowq::decode_row(&codes, min, scale, &mut back).unwrap();
            ops::force_simd_tier(None);
            let bits: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
            (codes, min.to_bits(), scale.to_bits(), bits)
        };
        let scalar = run(ops::SimdTier::Scalar);
        for tier in [
            ops::SimdTier::Avx2,
            ops::SimdTier::Avx512,
            ops::SimdTier::Avx512Vnni,
        ] {
            if detected >= tier {
                prop_assert_eq!(
                    &scalar,
                    &run(tier),
                    "rowq codec diverged between scalar and {:?} at len {}",
                    tier,
                    n
                );
            }
        }
    }

    #[test]
    fn int8_gemm_matches_dequantized_reference(
        m in 1_usize..=9,
        k in 1_usize..=130,
        n in 1_usize..=70,
        seed in 0_u32..1000,
    ) {
        let x = Tensor::from_fn(m, k, |r, c| {
            (((r * 31 + c * 17 + seed as usize) % 23) as f32) * 0.17 - 1.8
        });
        let w = Tensor::from_fn(n, k, |r, c| {
            (((r * 29 + c * 11 + seed as usize) % 17) as f32) * 0.13 - 1.0
        });
        let block = RowQuantBlock::encode(&x).unwrap();
        let wq = Int8Matrix::quantize(&w).unwrap();
        // The integer path computes the exact product of the quantized
        // operands: compare against dense f32 GEMM over the *decoded*
        // block and *dequantized* weights (quantization error cancels).
        let got = block.matmul_int8(&wq).unwrap();
        let mut decoded = Tensor::zeros(0, 0);
        block.decode_into(&mut decoded).unwrap();
        let want = ops::matmul_transb(&decoded, &wq.dequantize()).unwrap();
        let tol = 2e-5 * k as f32 + 1e-4;
        prop_assert!(
            got.max_abs_diff(&want).unwrap() < tol,
            "int8 GEMM {m}x{k}x{n} diverged from dequantized reference"
        );
    }
}

/// Naive triple-loop GEMM used as the equivalence oracle for the tiled
/// kernels.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for r in 0..m {
        for p in 0..k {
            let av = a.at(r, p);
            for j in 0..n {
                *out.at_mut(r, j) += av * b.at(p, j);
            }
        }
    }
    out
}
