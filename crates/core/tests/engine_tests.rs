//! Integration tests of the PRISM engine against real mini models and
//! planted-relevance workloads.
//!
//! The central correctness claims verified here:
//!
//! 1. every memory technique (streaming, chunking, embedding cache,
//!    hidden-state offload) is *bit-exact* — identical scores to the
//!    vanilla resident path,
//! 2. progressive cluster pruning preserves top-K membership on separable
//!    workloads while executing fewer layer-candidates,
//! 3. traces faithfully describe execution (monotone active counts, early
//!    termination, stream/cache stats populated).

use prism_core::{ComputePrecision, EngineOptions, PrismEngine, PruneMode, RequestOptions};
use prism_metrics::{precision_at_k, MemoryMeter};
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_storage::SpillPrecision;
use prism_workload::{dataset_catalog, WorkloadGenerator};

struct Fixture {
    model: Model,
    container_path: std::path::PathBuf,
}

impl Fixture {
    fn new(arch: ModelArch, layers: usize, tag: &str) -> Fixture {
        let config = ModelConfig::test_config(arch, layers);
        let model = Model::generate(config, 42).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!(
            "prism-engine-test-{}-{}-{tag}.prsm",
            std::process::id(),
            layers
        ));
        model.write_container(&path).unwrap();
        Fixture {
            model,
            container_path: path,
        }
    }

    fn engine(&self, options: EngineOptions) -> PrismEngine {
        let container = Container::open(&self.container_path).unwrap();
        PrismEngine::new(
            container,
            self.model.config.clone(),
            options,
            MemoryMeter::new(),
        )
        .unwrap()
    }

    fn batch(&self, request_idx: u64, candidates: usize) -> (SequenceBatch, Vec<usize>) {
        let profile = prism_workload::dataset::dataset_by_name("wikipedia").unwrap();
        let gen = WorkloadGenerator::new(
            profile,
            self.model.config.vocab_size,
            self.model.config.max_seq,
            7,
        );
        let req = gen.request(request_idx, candidates);
        (
            SequenceBatch::new(&req.sequences()).unwrap(),
            req.relevant.clone(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.container_path);
    }
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

#[test]
fn all_memory_techniques_are_bit_exact() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "bitexact");
    let (batch, _) = fx.batch(0, 12);
    let k = 4;

    // Reference: no techniques, no pruning.
    let vanilla = fx.engine(EngineOptions::all_off());
    let reference = vanilla.select_top_k(&batch, k).unwrap();

    let cases: Vec<(&str, EngineOptions)> = vec![
        ("streaming", {
            let mut o = EngineOptions::all_off();
            o.streaming = true;
            o
        }),
        ("chunking", {
            let mut o = EngineOptions::all_off();
            o.chunking = true;
            o.chunk_candidates = Some(3);
            o
        }),
        ("embed_cache", {
            let mut o = EngineOptions::all_off();
            o.embed_cache = true;
            o.embed_cache_fraction = 0.10;
            o
        }),
        ("hidden_offload", {
            let mut o = EngineOptions::all_off();
            o.chunking = true;
            o.chunk_candidates = Some(2);
            o.hidden_offload = true;
            o
        }),
        ("everything", {
            EngineOptions {
                pruning: false,
                chunk_candidates: Some(2),
                hidden_offload: true,
                ..Default::default()
            }
        }),
    ];

    for (name, options) in cases {
        let engine = fx.engine(options);
        // `SpillPrecision::F32` opts out of the (default) lossy int8
        // spill encoding, so offloaded runs stay bit-exact too.
        let got = engine
            .select_with(
                &batch,
                RequestOptions::top_k(k).with_spill_precision(SpillPrecision::F32),
            )
            .unwrap();
        assert_eq!(
            got.top_ids(),
            reference.top_ids(),
            "{name}: top-K must match vanilla"
        );
        for (a, b) in got.last_scores.iter().zip(&reference.last_scores) {
            assert!((a - b).abs() < 1e-5, "{name}: scores diverged ({a} vs {b})");
        }
    }
}

#[test]
fn int8_spill_preserves_topk_within_tolerance() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "int8spill");
    let (batch, _) = fx.batch(0, 12);
    let k = 4;
    let mut options = EngineOptions::all_off();
    options.chunking = true;
    options.chunk_candidates = Some(2);
    options.hidden_offload = true;
    let engine = fx.engine(options);
    let f32_sel = engine
        .select_with(
            &batch,
            RequestOptions::top_k(k).with_spill_precision(SpillPrecision::F32),
        )
        .unwrap();
    let int8_sel = engine
        .select_with(
            &batch,
            RequestOptions::top_k(k).with_spill_precision(SpillPrecision::Int8),
        )
        .unwrap();
    // Membership (not rank order) is the contract here: this fixture has
    // a near-tied candidate pair whose order legitimately flips within
    // the row-quant drift.
    assert_eq!(
        sorted(int8_sel.top_ids()),
        sorted(f32_sel.top_ids()),
        "int8 spill must preserve top-K membership"
    );
    // Pruning off + full depth is the worst case for row-quant drift:
    // every spilled chunk is re-encoded after all six layers.
    for (a, b) in int8_sel.last_scores.iter().zip(&f32_sel.last_scores) {
        assert!((a - b).abs() < 2e-2, "scores drifted too far ({a} vs {b})");
    }
    // And int8 moves far fewer spill bytes for the same request. At the
    // test config's hidden_dim of 16 the 8-byte/row `(min, scale)`
    // overhead caps the ratio near (4*16)/(16+8) = 2.67x; at real model
    // widths it approaches the full 4x.
    assert!(
        int8_sel.trace.spill_bytes * 5 < f32_sel.trace.spill_bytes * 2,
        "int8 {} vs f32 {}",
        int8_sel.trace.spill_bytes,
        f32_sel.trace.spill_bytes
    );
}

/// Int8 compute vs f32 compute on the golden corpus: identical top-K
/// membership under both spill precisions at every batch size 1..=8.
///
/// Tolerance contract: each of the seven per-layer projections quantizes
/// activations to 255 levels and weights to 127, and the drift compounds
/// across the 6 layers; on this fixture the worst observed score delta is
/// ~1.0e-2, so 3e-2 documents the bound with ~3x headroom while still
/// catching a broken rescale (which is off by O(1)).
#[test]
fn int8_compute_preserves_topk_across_spill_precisions_and_batch_sizes() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "int8compute");
    // One-candidate chunks in the offload regime: batches of 4+ spill,
    // smaller ones stay resident, so both int8 code paths are covered.
    let mut o = EngineOptions::all_off();
    o.chunking = true;
    o.chunk_candidates = Some(1);
    o.hidden_offload = true;
    let engine = fx.engine(o);
    for spill in [SpillPrecision::F32, SpillPrecision::Int8] {
        for n in 1..=8 {
            let (batch, _) = fx.batch(n as u64, n);
            let k = n.min(3);
            let f32_sel = engine
                .select_with(
                    &batch,
                    RequestOptions::top_k(k)
                        .with_spill_precision(spill)
                        .with_compute_precision(ComputePrecision::F32),
                )
                .unwrap();
            let int8_sel = engine
                .select_with(
                    &batch,
                    RequestOptions::top_k(k)
                        .with_spill_precision(spill)
                        .with_compute_precision(ComputePrecision::Int8),
                )
                .unwrap();
            assert_eq!(
                sorted(int8_sel.top_ids()),
                sorted(f32_sel.top_ids()),
                "top-K membership diverged ({spill:?}, n={n})"
            );
            for (a, b) in int8_sel.last_scores.iter().zip(&f32_sel.last_scores) {
                assert!(
                    (a - b).abs() < 3e-2,
                    "score drift too large ({spill:?}, n={n}): int8 {a} vs f32 {b}"
                );
            }
        }
    }
}

/// Streamed engines quantize each layer at acquisition time while
/// resident engines hit the lazy per-layer cache; the quantization is
/// deterministic, so the two int8 paths must agree bit-for-bit.
#[test]
fn int8_compute_is_bit_identical_between_streamed_and_resident_weights() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "int8stream");
    let (batch, _) = fx.batch(0, 10);
    let opts = RequestOptions::top_k(4).with_compute_precision(ComputePrecision::Int8);
    let resident = fx.engine(EngineOptions::all_off());
    let mut o = EngineOptions::all_off();
    o.streaming = true;
    let streamed = fx.engine(o);
    let r = resident.select_with(&batch, opts.clone()).unwrap();
    let s = streamed.select_with(&batch, opts).unwrap();
    assert_eq!(r.top_ids(), s.top_ids());
    for (a, b) in r.last_scores.iter().zip(&s.last_scores) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "streamed int8 diverged: {a} vs {b}"
        );
    }
    // The second resident request replays the cached int8 weights and
    // must reproduce the first result exactly.
    let again = resident
        .select_with(
            &batch,
            RequestOptions::top_k(4).with_compute_precision(ComputePrecision::Int8),
        )
        .unwrap();
    assert_eq!(again.last_scores, r.last_scores);
}

#[test]
fn engine_matches_model_forward_full() {
    let fx = Fixture::new(ModelArch::EncoderOnly, 5, "refmatch");
    let (batch, _) = fx.batch(1, 10);
    let engine = fx.engine(EngineOptions::all_off());
    let sel = engine.select_top_k(&batch, 10).unwrap();
    let direct = fx.model.forward_full(&batch).unwrap();
    for (i, s) in direct.iter().enumerate() {
        assert!(
            (sel.last_scores[i] - s).abs() < 1e-5,
            "candidate {i}: engine {} vs model {s}",
            sel.last_scores[i]
        );
    }
}

#[test]
fn pruning_preserves_top_k_on_separable_workload() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 8, "precision");
    let full = fx.engine(EngineOptions::all_off());
    let pruned = fx.engine(EngineOptions::default());

    let mut matches = 0_usize;
    let mut total = 0_usize;
    let mut work_saved = 0.0_f64;
    let requests = 8;
    for r in 0..requests {
        let (batch, _) = fx.batch(r, 16);
        let k = 5;
        let truth = full.select_top_k(&batch, k).unwrap();
        let fast = pruned.select_top_k(&batch, k).unwrap();
        total += k;
        let truth_ids = sorted(truth.top_ids());
        for id in fast.top_ids() {
            if truth_ids.binary_search(&id).is_ok() {
                matches += 1;
            }
        }
        let layers = fx.model.config.num_layers;
        let full_work = (16 * layers) as f64;
        let done: usize = fast.trace.active_per_layer.iter().sum();
        work_saved += 1.0 - done as f64 / full_work;
    }
    let agreement = matches as f64 / total as f64;
    assert!(
        agreement >= 0.85,
        "pruned top-K agreement {agreement} too low"
    );
    let avg_saved = work_saved / requests as f64;
    assert!(
        avg_saved > 0.15,
        "pruning saved only {avg_saved:.2} of layer-candidate work"
    );
}

#[test]
fn early_termination_happens_on_easy_requests() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 10, "earlyterm");
    let engine = fx.engine(EngineOptions::low_threshold());
    let mut any_early = false;
    for r in 0..10 {
        let (batch, _) = fx.batch(r, 16);
        let sel = engine.select_top_k(&batch, 5).unwrap();
        assert_eq!(sel.ranked.len(), 5);
        if sel.trace.executed_layers < fx.model.config.num_layers {
            any_early = true;
        }
    }
    assert!(any_early, "low threshold should terminate early somewhere");
}

#[test]
fn trace_active_counts_are_monotone_and_consistent() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 8, "trace");
    let engine = fx.engine(EngineOptions::default());
    let (batch, _) = fx.batch(3, 20);
    let sel = engine.select_top_k(&batch, 5).unwrap();
    let t = &sel.trace;
    assert!(!t.active_per_layer.is_empty());
    for w in t.active_per_layer.windows(2) {
        assert!(
            w[1] <= w[0],
            "active counts must never grow: {:?}",
            t.active_per_layer
        );
    }
    assert_eq!(t.executed_layers, t.active_per_layer.len());
    // Every routed id must be a valid candidate and routed at most once.
    let mut seen = std::collections::HashSet::new();
    for route in &t.routes {
        for id in route.selected.iter().chain(&route.dropped) {
            assert!(*id < 20);
            assert!(seen.insert(*id), "candidate {id} routed twice");
        }
    }
    // Latency spans exist.
    assert!(t.latency.span("embed").is_some());
    assert!(t.latency.span("forward").is_some());
}

#[test]
fn streaming_stats_and_cache_stats_populate() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "stats");
    let o = EngineOptions {
        pruning: false,
        ..Default::default()
    };
    let engine = fx.engine(o);
    let (batch, _) = fx.batch(0, 8);
    let sel = engine.select_top_k(&batch, 2).unwrap();
    assert_eq!(sel.trace.stream_stats.sections, 6, "all layers streamed");
    assert!(sel.trace.stream_stats.bytes > 0);
    let cs = sel.trace.cache_stats;
    assert!(cs.hits + cs.misses > 0, "cache was exercised");
    // Re-issuing the same request hits the warm cache, so the cumulative
    // hit rate must rise. (A distinct second request is not guaranteed to:
    // its token draw may overlap the cached rows arbitrarily little.)
    let (batch2, _) = fx.batch(0, 8);
    let sel2 = engine.select_top_k(&batch2, 2).unwrap();
    assert!(sel2.trace.cache_stats.hit_rate() >= cs.hit_rate());
}

#[test]
fn exact_order_mode_matches_full_inference_order() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 8, "exactorder");
    let full = fx.engine(EngineOptions::all_off());
    let exact = fx.engine(EngineOptions {
        mode: PruneMode::ExactOrder,
        ..EngineOptions::default()
    });
    let mut agree = 0;
    let n_req = 6;
    for r in 0..n_req {
        let (batch, _) = fx.batch(r, 12);
        let truth = full.select_top_k(&batch, 3).unwrap();
        let got = exact.select_top_k(&batch, 3).unwrap();
        if got.top_ids() == truth.top_ids() {
            agree += 1;
        }
    }
    assert!(
        agree >= n_req - 1,
        "ExactOrder agreed on order only {agree}/{n_req} times"
    );
}

#[test]
fn precision_against_planted_ground_truth() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 8, "planted");
    let engine = fx.engine(EngineOptions::default());
    let full = fx.engine(EngineOptions::all_off());
    let mut p_pruned = 0.0;
    let mut p_full = 0.0;
    let n_req = 8;
    for r in 0..n_req {
        let (batch, relevant) = fx.batch(100 + r, 16);
        let k = 5;
        let sel = engine.select_top_k(&batch, k).unwrap();
        let reference = full.select_top_k(&batch, k).unwrap();
        p_pruned += precision_at_k(&sel.top_ids(), &relevant, k);
        p_full += precision_at_k(&reference.top_ids(), &relevant, k);
    }
    p_pruned /= n_req as f64;
    p_full /= n_req as f64;
    // Paper's claim: pruning does not compromise precision (loss within
    // noise). Allow a small delta.
    assert!(
        p_pruned >= p_full - 0.08,
        "pruned precision {p_pruned:.3} vs full {p_full:.3}"
    );
    assert!(p_full > 0.5, "full-inference precision implausibly low");
}

#[test]
fn memory_meter_shows_streaming_savings() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 12, "memmeter");
    let (batch, _) = fx.batch(0, 12);

    let resident = fx.engine(EngineOptions::all_off());
    resident.select_top_k(&batch, 4).unwrap();
    let resident_peak = resident
        .meter()
        .peak(prism_metrics::MemCategory::LayerWeights);

    let mut o = EngineOptions::all_off();
    o.streaming = true;
    let streamed = fx.engine(o);
    streamed.select_top_k(&batch, 4).unwrap();
    let streamed_peak = streamed
        .meter()
        .peak(prism_metrics::MemCategory::LayerWeights);

    assert!(
        streamed_peak * 3 < resident_peak,
        "streamed {streamed_peak} vs resident {resident_peak}"
    );
}

#[test]
fn embed_cache_reduces_embedding_footprint() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 4, "embmem");
    let (batch, _) = fx.batch(0, 8);
    let full = fx.engine(EngineOptions::all_off());
    full.select_top_k(&batch, 2).unwrap();
    let full_bytes = full.meter().peak(prism_metrics::MemCategory::Embedding);

    let mut o = EngineOptions::all_off();
    o.embed_cache = true;
    o.embed_cache_fraction = 0.10;
    let cached = fx.engine(o);
    cached.select_top_k(&batch, 2).unwrap();
    let cached_bytes = cached.meter().peak(prism_metrics::MemCategory::Embedding);
    assert!(
        cached_bytes * 4 < full_bytes,
        "cached {cached_bytes} vs full {full_bytes}"
    );
}

#[test]
fn hidden_offload_spills_and_restores() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 5, "spill");
    let mut o = EngineOptions::all_off();
    o.chunking = true;
    o.chunk_candidates = Some(2);
    o.hidden_offload = true;
    let engine = fx.engine(o);
    let (batch, _) = fx.batch(2, 12);
    let sel = engine.select_top_k(&batch, 3).unwrap();
    assert!(sel.trace.spill_bytes > 0, "spill file must be exercised");
    // And results still match vanilla (covered broadly by the bit-exact
    // test; sanity-check scores are finite here).
    assert!(sel.last_scores.iter().all(|s| s.is_finite()));
}

#[test]
fn invalid_requests_rejected() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 3, "invalid");
    let engine = fx.engine(EngineOptions::default());
    let (batch, _) = fx.batch(0, 4);
    assert!(engine.select_top_k(&batch, 0).is_err());
    // Over-long sequence rejected.
    let long = SequenceBatch::new(&[vec![1_u32; fx.model.config.max_seq + 1]]).unwrap();
    assert!(engine.select_top_k(&long, 1).is_err());
}

#[test]
fn k_larger_than_candidates_returns_all() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 4, "bigk");
    let engine = fx.engine(EngineOptions::default());
    let (batch, _) = fx.batch(0, 5);
    let sel = engine.select_top_k(&batch, 50).unwrap();
    assert_eq!(sel.ranked.len(), 5);
    assert_eq!(sorted(sel.top_ids()), vec![0, 1, 2, 3, 4]);
}

#[test]
fn works_across_all_dataset_profiles() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "alldatasets");
    let engine = fx.engine(EngineOptions::default());
    for profile in dataset_catalog() {
        let gen = WorkloadGenerator::new(
            profile,
            fx.model.config.vocab_size,
            fx.model.config.max_seq,
            3,
        );
        let req = gen.request(0, 10);
        let batch = SequenceBatch::new(&req.sequences()).unwrap();
        let sel = engine.select_top_k(&batch, 3).unwrap();
        assert_eq!(sel.ranked.len(), 3, "{}", gen.profile().name);
    }
}

#[test]
fn encoder_and_decoder_archs_both_run() {
    for arch in [ModelArch::EncoderOnly, ModelArch::DecoderOnly] {
        let fx = Fixture::new(arch, 5, "archs");
        let engine = fx.engine(EngineOptions::default());
        let (batch, _) = fx.batch(0, 10);
        let sel = engine.select_top_k(&batch, 3).unwrap();
        assert_eq!(sel.ranked.len(), 3, "{arch:?}");
        assert!(sel.trace.executed_layers >= 1);
    }
}

#[test]
fn quantized_container_runs_and_roughly_agrees() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "quant");
    // Write a quantized container alongside.
    let qmodel = fx.model.quantized().unwrap();
    let mut qpath = std::env::temp_dir();
    qpath.push(format!(
        "prism-engine-test-quant-{}.prsm",
        std::process::id()
    ));
    qmodel.write_container(&qpath).unwrap();

    let (batch, _) = fx.batch(0, 12);
    let dense = fx.engine(EngineOptions::all_off());
    let container = Container::open(&qpath).unwrap();
    let quant = PrismEngine::new(
        container,
        qmodel.config.clone(),
        EngineOptions::all_off(),
        MemoryMeter::new(),
    )
    .unwrap();

    let d = dense.select_top_k(&batch, 4).unwrap();
    let q = quant.select_top_k(&batch, 4).unwrap();
    // Quantization perturbs scores; the top-4 sets must still mostly
    // overlap (the paper reports small but nonzero precision deltas).
    let d_ids = sorted(d.top_ids());
    let overlap = q
        .top_ids()
        .iter()
        .filter(|i| d_ids.binary_search(i).is_ok())
        .count();
    assert!(overlap >= 2, "quant/dense top-4 overlap {overlap}");
    assert!(q.last_scores.iter().all(|s| s.is_finite()));
    std::fs::remove_file(&qpath).unwrap();
}

/// Checksum-corrupted spill slots are quarantined and transparently
/// recomputed from the weights: results stay bit-identical to a
/// fault-free run across spill precisions, compute precisions and
/// pruning modes, and the trace reports the quarantine events.
#[test]
fn corrupted_spill_slots_recompute_bit_identically() {
    let fx = Fixture::new(ModelArch::DecoderOnly, 6, "quarantine");
    let (batch, _) = fx.batch(0, 12);
    let k = 4;

    let spill_dir = {
        let mut d = std::env::temp_dir();
        d.push(format!("prism-quarantine-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    };

    let cases: Vec<(&str, SpillPrecision, ComputePrecision, bool)> = vec![
        (
            "f32-spill",
            SpillPrecision::F32,
            ComputePrecision::F32,
            false,
        ),
        (
            "int8-spill",
            SpillPrecision::Int8,
            ComputePrecision::F32,
            false,
        ),
        (
            "int8-spill-int8-compute",
            SpillPrecision::Int8,
            ComputePrecision::Int8,
            false,
        ),
        (
            "f32-spill-pruning",
            SpillPrecision::F32,
            ComputePrecision::F32,
            true,
        ),
    ];
    for (name, spill, compute, pruning) in cases {
        let mut o = EngineOptions::all_off();
        o.chunking = true;
        o.chunk_candidates = Some(1); // 12 chunks, 9 spilled
        o.hidden_offload = true;
        o.pruning = pruning;
        let req = RequestOptions::top_k(k)
            .with_spill_precision(spill)
            .with_compute_precision(compute);

        let clean_engine = fx.engine(o.clone()).with_spill_dir(spill_dir.clone());
        let clean = clean_engine.select_with(&batch, req.clone()).unwrap();
        assert_eq!(
            clean.trace.spill_stats.quarantined, 0,
            "{name}: fault-free run must not quarantine"
        );

        // Corrupt every 3rd spill fetch under this engine's spill dir.
        let faulty_engine = fx.engine(o).with_spill_dir(spill_dir.clone());
        prism_storage::fault::corrupt_fetches_under(spill_dir.to_string_lossy(), 3);
        let faulty = faulty_engine.select_with(&batch, req);
        prism_storage::fault::reset();
        let faulty = faulty.unwrap();

        assert!(
            faulty.trace.spill_stats.quarantined > 0,
            "{name}: fault injection must have fired"
        );
        assert_eq!(faulty.top_ids(), clean.top_ids(), "{name}: top-K diverged");
        let got: Vec<u32> = faulty.last_scores.iter().map(|s| s.to_bits()).collect();
        let want: Vec<u32> = clean.last_scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(got, want, "{name}: scores must be bit-identical");
        assert_eq!(
            faulty.coverage, 1.0,
            "{name}: recompute is not degraded mode"
        );
    }

    // No spill file may survive either run.
    let leftovers: Vec<_> = std::fs::read_dir(&spill_dir).unwrap().collect();
    assert!(leftovers.is_empty(), "leaked spill files: {leftovers:?}");
    std::fs::remove_dir_all(&spill_dir).unwrap();
}
