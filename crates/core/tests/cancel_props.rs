//! Cancellation safety: aborting a request at *any* phase must release
//! every resource it holds — no orphaned spill files in the spill
//! directory, no hidden-state or intermediate bytes left on the shared
//! meter, no scratch-pool growth beyond the worker bound.
//!
//! The proptest drives a spill-heavy engine (hidden offload on, small
//! chunks) and cancels at a random layer boundary through the progress
//! callback — exercising cancellation before the first layer, between
//! arbitrary layers, and after natural termination (where cancel loses
//! the race and the selection completes normally). Both outcomes are
//! legal; leaked resources never are.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use prism_core::{CancelToken, EngineOptions, PrismEngine, PrismError, RequestOptions};
use prism_metrics::{MemCategory, MemoryMeter};
use prism_model::{Model, ModelArch, ModelConfig, SequenceBatch};
use prism_storage::Container;
use prism_workload::{dataset_by_name, WorkloadGenerator};
use proptest::prelude::*;

struct Fixture {
    engine: PrismEngine,
    meter: MemoryMeter,
    spill_dir: std::path::PathBuf,
    container_path: std::path::PathBuf,
    config: ModelConfig,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        Fixture::with_spill_throttle(tag, None)
    }

    /// A fixture whose spill I/O is bandwidth-throttled, so the
    /// overlapped pipeline's background lanes are genuinely mid-transfer
    /// when a cancellation lands.
    fn with_spill_throttle(tag: &str, throttle: Option<u64>) -> Self {
        let config = ModelConfig::test_config(ModelArch::DecoderOnly, 6);
        let model = Model::generate(config.clone(), 0xCA9CE1).unwrap();
        let mut container_path = std::env::temp_dir();
        container_path.push(format!("prism-cancel-{tag}-{}.prsm", std::process::id()));
        model.write_container(&container_path).unwrap();
        let mut spill_dir = std::env::temp_dir();
        spill_dir.push(format!("prism-cancel-spill-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&spill_dir).unwrap();
        let meter = MemoryMeter::new();
        let options = EngineOptions {
            streaming: false,
            embed_cache: false,
            // Spill-heavy geometry: 2 candidates per chunk means any
            // batch over 6 candidates offloads chunks 3.. to disk.
            hidden_offload: true,
            chunk_candidates: Some(2),
            stream_throttle: throttle,
            ..Default::default()
        };
        let engine = PrismEngine::new(
            Container::open(&container_path).unwrap(),
            config.clone(),
            options,
            meter.clone(),
        )
        .unwrap()
        .with_spill_dir(spill_dir.clone());
        Fixture {
            engine,
            meter,
            spill_dir,
            container_path,
            config,
        }
    }

    fn batch(&self, corpus: u64, candidates: usize) -> SequenceBatch {
        let profile = dataset_by_name("wikipedia").unwrap();
        let generator =
            WorkloadGenerator::new(profile, self.config.vocab_size, self.config.max_seq, 0xF00D);
        SequenceBatch::new(&generator.request(corpus, candidates).sequences()).unwrap()
    }

    fn spill_files(&self) -> Vec<String> {
        std::fs::read_dir(&self.spill_dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect()
    }

    fn assert_clean(&self, context: &str) {
        assert_eq!(
            self.spill_files(),
            Vec::<String>::new(),
            "{context}: spill dir must be empty"
        );
        assert_eq!(
            self.meter.current(MemCategory::HiddenStates),
            0,
            "{context}: hidden-state bytes leaked on the meter"
        );
        assert_eq!(
            self.meter.current(MemCategory::Intermediate),
            0,
            "{context}: intermediate bytes leaked on the meter"
        );
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.spill_dir);
        let _ = std::fs::remove_file(&self.container_path);
    }
}

proptest! {
    // Each case runs a full (small) selection; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cancelling_at_any_phase_leaks_nothing(
        cancel_layer in 0_usize..8,
        candidates in 8_usize..16,
        corpus in 0_u64..1_000,
    ) {
        let fx = Fixture::new("prop");
        let batch = fx.batch(corpus, candidates);

        let token = CancelToken::new();
        let mut req = fx
            .engine
            .plan_request(&batch, RequestOptions::tagged(4, corpus + 1))
            .unwrap();
        req.attach_cancel(token.clone());
        // Fire the cancellation from the progress callback once the
        // request has forwarded `cancel_layer` layers: the engine must
        // observe it at the next phase boundary.
        let fired = Arc::new(AtomicUsize::new(0));
        {
            let fired = Arc::clone(&fired);
            req.attach_progress(Arc::new(move |u| {
                if u.layers_forwarded >= cancel_layer {
                    token.cancel();
                    fired.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let mut pool = Vec::new();
        fx.engine.run_planned(std::slice::from_mut(&mut req), &mut pool).unwrap();
        let pool_size = pool.len();
        match fx.engine.finalize_request(req) {
            Ok(selection) => {
                // Cancel fired too late (or never): a complete selection.
                prop_assert!(!selection.ranked.is_empty());
            }
            Err(PrismError::Cancelled) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
        fx.assert_clean("after finalize");
        prop_assert!(pool_size <= 8, "scratch pool grew past the worker bound");

        // The engine must stay fully usable: the same request completes
        // normally afterwards, with the same hygiene.
        let again = fx
            .engine
            .select_with(&batch, RequestOptions::tagged(4, corpus + 1))
            .unwrap();
        prop_assert!(!again.ranked.is_empty());
        fx.assert_clean("after post-cancel reuse");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The spill pipeline adds background reader/writer lanes; a
    // throttled spill file keeps them mid-transfer when the abort
    // fires, so this exercises "cancel with I/O in flight": the abort
    // must join the lanes, drop queued work, release metered bytes and
    // delete the spill file before returning.
    #[test]
    fn cancelling_with_inflight_background_spill_io_leaks_nothing(
        cancel_layer in 0_usize..4,
        candidates in 10_usize..16,
        corpus in 0_u64..500,
    ) {
        // 2 MB/s: each spilled-chunk transfer takes ~0.5 ms, so several
        // prefetches/write-backs are queued at any boundary.
        let fx = Fixture::with_spill_throttle("inflight", Some(2_000_000));
        let batch = fx.batch(corpus, candidates);
        let token = CancelToken::new();
        let mut req = fx
            .engine
            .plan_request(&batch, RequestOptions::tagged(4, corpus + 1))
            .unwrap();
        prop_assert!(!fx.spill_files().is_empty(), "fixture must spill");
        req.attach_cancel(token.clone());
        req.attach_progress(Arc::new(move |u| {
            if u.layers_forwarded >= cancel_layer {
                token.cancel();
            }
        }));
        let mut pool = Vec::new();
        fx.engine.run_planned(std::slice::from_mut(&mut req), &mut pool).unwrap();
        match fx.engine.finalize_request(req) {
            Ok(selection) => prop_assert!(!selection.ranked.is_empty()),
            Err(PrismError::Cancelled) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
        fx.assert_clean("after mid-pipeline cancel");
    }
}

#[test]
fn immediate_cancellation_releases_spill_before_any_layer() {
    let fx = Fixture::new("immediate");
    let batch = fx.batch(7, 12);
    let token = CancelToken::new();
    token.cancel(); // cancelled before the run even starts
    let mut req = fx
        .engine
        .plan_request(&batch, RequestOptions::top_k(3))
        .unwrap();
    assert!(
        !fx.spill_files().is_empty(),
        "fixture must actually spill (12 candidates / 2 per chunk)"
    );
    req.attach_cancel(token);
    let mut pool = Vec::new();
    fx.engine
        .run_planned(std::slice::from_mut(&mut req), &mut pool)
        .unwrap();
    // The abort at the first gate released the spill file already —
    // before finalize ran.
    fx.assert_clean("after run_planned with pre-cancelled token");
    assert!(matches!(
        fx.engine.finalize_request(req),
        Err(PrismError::Cancelled)
    ));
}

#[test]
fn dropping_a_planned_request_cleans_up() {
    let fx = Fixture::new("drop");
    let batch = fx.batch(3, 12);
    let req = fx
        .engine
        .plan_request(&batch, RequestOptions::top_k(3))
        .unwrap();
    assert!(!fx.spill_files().is_empty(), "plan must have spilled");
    drop(req);
    fx.assert_clean("after dropping the planned request");
}

#[test]
fn cancelled_request_does_not_disturb_batch_mates() {
    let fx = Fixture::new("mates");
    let batch_a = fx.batch(11, 10);
    let batch_b = fx.batch(12, 10);
    let direct_b = fx
        .engine
        .select_with(&batch_b, RequestOptions::tagged(3, 200))
        .unwrap();

    let token = CancelToken::new();
    token.cancel();
    let mut reqs = vec![
        fx.engine
            .plan_request(&batch_a, RequestOptions::tagged(3, 100))
            .unwrap(),
        fx.engine
            .plan_request(&batch_b, RequestOptions::tagged(3, 200))
            .unwrap(),
    ];
    reqs[0].attach_cancel(token);
    let mut pool = Vec::new();
    fx.engine.run_planned(&mut reqs, &mut pool).unwrap();
    let survivor = reqs.pop().unwrap();
    let cancelled = reqs.pop().unwrap();
    assert!(matches!(
        fx.engine.finalize_request(cancelled),
        Err(PrismError::Cancelled)
    ));
    let b = fx.engine.finalize_request(survivor).unwrap();
    assert_eq!(
        b.ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        direct_b
            .ranked
            .iter()
            .map(|r| (r.id, r.score.to_bits()))
            .collect::<Vec<_>>(),
        "a cancelled batch-mate must not perturb surviving results"
    );
    fx.assert_clean("after mixed batch");
}
