//! Property-based tests of the routing invariants (§4.1).

use prism_core::route_candidates;
use proptest::prelude::*;

fn scores_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.0_f32..1.0, 2..64)
}

proptest! {
    /// Routing always partitions the active set.
    #[test]
    fn routing_partitions(scores in scores_strategy(), k in 1_usize..20, t in 0.0_f32..0.8) {
        let d = route_candidates(&scores, k, t, true, 5, 7);
        let mut all: Vec<usize> = d.selected.iter()
            .chain(&d.dropped)
            .chain(&d.deferred)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), scores.len(), "partition lost or duplicated candidates");
    }

    /// The top-K remains fillable: selected + deferred >= k (when k <= n).
    #[test]
    fn top_k_remains_fillable(scores in scores_strategy(), k in 1_usize..20, t in 0.0_f32..0.8) {
        let k = k.min(scores.len());
        let d = route_candidates(&scores, k, t, true, 5, 3);
        prop_assert!(
            d.selected.len() + d.deferred.len() >= k,
            "selected {} + deferred {} < k {k}",
            d.selected.len(),
            d.deferred.len()
        );
    }

    /// Never select more than k, and termination implies exactly k.
    #[test]
    fn selection_bounded_by_k(scores in scores_strategy(), k in 1_usize..20, t in 0.0_f32..0.8) {
        let k = k.min(scores.len());
        let d = route_candidates(&scores, k, t, true, 5, 11);
        prop_assert!(d.selected.len() <= k);
        if d.terminate {
            prop_assert_eq!(d.selected.len(), k, "termination must fill the top-K exactly");
            prop_assert!(d.deferred.is_empty());
        }
    }

    /// Score ordering across groups: min(selected) >= max(deferred) and
    /// min(deferred) >= max(dropped) — clusters over scalars are intervals.
    #[test]
    fn groups_are_score_ordered(scores in scores_strategy(), k in 1_usize..20, t in 0.0_f32..0.5) {
        let k = k.min(scores.len());
        let d = route_candidates(&scores, k, t, true, 5, 5);
        let min = |ids: &[usize]| ids.iter().map(|&i| scores[i]).fold(f32::INFINITY, f32::min);
        let max = |ids: &[usize]| ids.iter().map(|&i| scores[i]).fold(f32::NEG_INFINITY, f32::max);
        if !d.selected.is_empty() && !d.deferred.is_empty() {
            prop_assert!(min(&d.selected) >= max(&d.deferred));
        }
        if !d.deferred.is_empty() && !d.dropped.is_empty() {
            prop_assert!(min(&d.deferred) >= max(&d.dropped));
        }
        if !d.selected.is_empty() && !d.dropped.is_empty() {
            prop_assert!(min(&d.selected) >= max(&d.dropped));
        }
    }

    /// Dropped candidates can never belong to the true top-k of the
    /// *current* scores (pruning is safe w.r.t. the scores it saw).
    #[test]
    fn dropped_are_outside_current_top_k(scores in scores_strategy(), k in 1_usize..20, t in 0.0_f32..0.5) {
        let k = k.min(scores.len());
        let d = route_candidates(&scores, k, t, true, 5, 13);
        let mut ranked: Vec<usize> = (0..scores.len()).collect();
        ranked.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let top: Vec<usize> = ranked[..k].to_vec();
        for dropped in &d.dropped {
            // Ties can straddle the boundary; only strict members count.
            let kth = scores[ranked[k - 1]];
            if scores[*dropped] > kth {
                prop_assert!(!top.contains(dropped), "dropped {dropped} strictly inside top-{k}");
            }
        }
    }

    /// Exact-order mode never terminates early and never selects.
    #[test]
    fn exact_order_never_terminates(scores in scores_strategy(), k in 1_usize..20, t in 0.0_f32..0.5) {
        let d = route_candidates(&scores, k.min(scores.len()), t, false, 5, 17);
        prop_assert!(d.selected.is_empty());
        prop_assert!(!d.terminate || scores.is_empty());
    }
}
