//! Automatic dispersion-threshold calibration (§4.1).
//!
//! Instead of hand-tuning the threshold, an application states a minimum
//! precision target. The calibrator samples live requests, re-scores them
//! with full (unpruned) inference "when the device is idle" to obtain
//! ground truth, measures the sampled precision, and walks the threshold:
//! below target → raise (more conservative); at/above target → lower
//! (faster), staying within bounds. The actuator is the per-request
//! threshold override,
//! [`crate::RequestOptions::with_dispersion_threshold`] — the engine is
//! `Sync` and shared behind an `Arc`, so calibration adjusts requests,
//! not engine state.

use prism_metrics::precision_at_k;

/// Feedback controller over the dispersion threshold.
#[derive(Debug, Clone)]
pub struct ThresholdCalibrator {
    target_precision: f64,
    threshold: f32,
    min_threshold: f32,
    max_threshold: f32,
    raise_factor: f32,
    lower_factor: f32,
    /// `(pruned top-K, ground-truth top-K, k)` samples since last update.
    samples: Vec<(Vec<usize>, Vec<usize>, usize)>,
    /// Minimum samples before an update fires.
    min_samples: usize,
}

impl ThresholdCalibrator {
    /// Creates a calibrator starting from `initial_threshold`.
    pub fn new(target_precision: f64, initial_threshold: f32) -> Self {
        ThresholdCalibrator {
            target_precision: target_precision.clamp(0.0, 1.0),
            threshold: initial_threshold,
            min_threshold: 0.02,
            max_threshold: 2.0,
            raise_factor: 1.3,
            lower_factor: 0.9,
            samples: Vec::new(),
            min_samples: 4,
        }
    }

    /// Current threshold to run the engine with.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The precision target.
    pub fn target(&self) -> f64 {
        self.target_precision
    }

    /// Number of samples pending.
    pub fn pending_samples(&self) -> usize {
        self.samples.len()
    }

    /// Records one sampled request: the pruned run's top-K and the
    /// idle-time ground-truth top-K.
    pub fn record_sample(
        &mut self,
        pruned_top_k: &[usize],
        ground_truth_top_k: &[usize],
        k: usize,
    ) {
        self.samples
            .push((pruned_top_k.to_vec(), ground_truth_top_k.to_vec(), k));
    }

    /// Measured precision of the pending samples (vs ground truth top-K).
    pub fn measured_precision(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|(pruned, truth, k)| precision_at_k(pruned, truth, *k))
            .sum();
        Some(sum / self.samples.len() as f64)
    }

    /// Applies one feedback step if enough samples accumulated; returns
    /// the (possibly updated) threshold.
    pub fn update(&mut self) -> f32 {
        if self.samples.len() < self.min_samples {
            return self.threshold;
        }
        let measured = self.measured_precision().expect("samples non-empty");
        if measured < self.target_precision {
            self.threshold = (self.threshold * self.raise_factor).min(self.max_threshold);
        } else {
            self.threshold = (self.threshold * self.lower_factor).max(self.min_threshold);
        }
        self.samples.clear();
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_samples(c: &mut ThresholdCalibrator, precision_hits: usize, total: usize) {
        // k=4; ground truth {0,1,2,3}; pruned gets `precision_hits` right.
        for _ in 0..total {
            let mut pruned: Vec<usize> = (0..precision_hits).collect();
            pruned.extend(100..100 + (4 - precision_hits));
            c.record_sample(&pruned, &[0, 1, 2, 3], 4);
        }
    }

    #[test]
    fn raises_threshold_when_below_target() {
        let mut c = ThresholdCalibrator::new(0.95, 0.2);
        fill_samples(&mut c, 2, 5); // 50% precision
        let t = c.update();
        assert!(t > 0.2);
        assert_eq!(c.pending_samples(), 0, "samples consumed");
    }

    #[test]
    fn lowers_threshold_when_target_met() {
        let mut c = ThresholdCalibrator::new(0.75, 0.4);
        fill_samples(&mut c, 4, 5); // 100% precision
        let t = c.update();
        assert!(t < 0.4);
    }

    #[test]
    fn no_update_before_min_samples() {
        let mut c = ThresholdCalibrator::new(0.9, 0.3);
        fill_samples(&mut c, 0, 2);
        assert_eq!(c.update(), 0.3);
        assert_eq!(c.pending_samples(), 2, "samples retained until quorum");
    }

    #[test]
    fn thresholds_stay_bounded() {
        let mut c = ThresholdCalibrator::new(1.0, 1.9);
        for _ in 0..20 {
            fill_samples(&mut c, 0, 5);
            c.update();
        }
        assert!(c.threshold() <= 2.0);

        let mut c = ThresholdCalibrator::new(0.0, 0.05);
        for _ in 0..20 {
            fill_samples(&mut c, 4, 5);
            c.update();
        }
        assert!(c.threshold() >= 0.02);
    }

    #[test]
    fn converges_against_synthetic_monotone_system() {
        // Simulated system: precision is a monotone function of threshold
        // crossing the target at 0.35.
        let precision_of = |t: f32| -> usize {
            if t >= 0.35 {
                4
            } else if t >= 0.25 {
                3
            } else {
                2
            }
        };
        let mut c = ThresholdCalibrator::new(0.9, 0.05);
        for _ in 0..30 {
            let hits = precision_of(c.threshold());
            fill_samples(&mut c, hits, 5);
            c.update();
        }
        // Must hover around the crossing: high enough to meet target,
        // pulled down whenever it overshoots.
        let t = c.threshold();
        assert!(
            (0.2..0.7).contains(&t),
            "threshold {t} should oscillate near the 0.35 crossing"
        );
    }

    #[test]
    fn measured_precision_math() {
        let mut c = ThresholdCalibrator::new(0.9, 0.3);
        assert!(c.measured_precision().is_none());
        c.record_sample(&[0, 1], &[0, 2], 2);
        assert!((c.measured_precision().unwrap() - 0.5).abs() < 1e-9);
    }
}
